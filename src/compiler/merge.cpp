#include "compiler/merge.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

/// Working state: live nodes with merged attributes and an edge multiset.
class Merger {
 public:
  Merger(const CodeGraph& graph, const CompileOptions& options)
      : options_(options) {
    nodes_.reserve(graph.nodes.size());
    for (const GraphNode& node : graph.nodes) {
      nodes_.push_back(Live{node.stmts, node.cost, node.min_line,
                            node.compute_ops, /*alive=*/true});
    }
    for (const DepEdge& edge : graph.edges) {
      const int u = graph.NodeOf(edge.producer);
      const int v = graph.NodeOf(edge.consumer);
      if (u != v) {
        ++edge_count_[{std::min(u, v), std::max(u, v)}];
        directed_[{u, v}] += 1;
      }
    }
  }

  std::vector<MergedPartition> Run() {
    if (options_.throughput_heuristic) {
      CollapseCycles();
    }
    while (AliveCount() > options_.num_cores) {
      const int merges_this_step =
          options_.multi_pair_merge ? std::max(1, AliveCount() / 8) : 1;
      if (!MergeStep(merges_this_step)) {
        break;  // no candidate pair (degenerate); stop
      }
      if (options_.throughput_heuristic) {
        CollapseCycles();
      }
    }
    return Finish();
  }

 private:
  struct Live {
    std::vector<ir::StmtId> stmts;
    double cost;
    int min_line;
    int compute_ops;
    bool alive;
  };

  int AliveCount() const {
    int count = 0;
    for (const Live& node : nodes_) {
      count += node.alive ? 1 : 0;
    }
    return count;
  }

  double Affinity(int u, int v) const {
    const auto it = edge_count_.find({std::min(u, v), std::max(u, v)});
    const double edges = it == edge_count_.end() ? 0.0 : it->second;
    const double combined_cost = nodes_[static_cast<std::size_t>(u)].cost +
                                 nodes_[static_cast<std::size_t>(v)].cost;
    const double line_dist =
        std::abs(nodes_[static_cast<std::size_t>(u)].min_line -
                 nodes_[static_cast<std::size_t>(v)].min_line);
    return options_.w_deps * edges +
           options_.w_cost * options_.cost_scale /
               (options_.cost_scale + combined_cost) +
           options_.w_prox * options_.line_scale /
               (options_.line_scale + line_dist);
  }

  /// Merges `v` into `u`.
  void Merge(int u, int v) {
    FGPAR_CHECK(u != v);
    Live& dst = nodes_[static_cast<std::size_t>(u)];
    Live& src = nodes_[static_cast<std::size_t>(v)];
    FGPAR_CHECK(dst.alive && src.alive);
    dst.stmts.insert(dst.stmts.end(), src.stmts.begin(), src.stmts.end());
    dst.cost += src.cost;
    dst.min_line = std::min(dst.min_line, src.min_line);
    dst.compute_ops += src.compute_ops;
    src.alive = false;

    // Re-point edges from v to u; edges between u and v vanish ("Any
    // dependence edges that may have existed between the two nodes being
    // merged no longer exist after the merge").
    std::map<std::pair<int, int>, int> new_undirected;
    for (const auto& [key, count] : edge_count_) {
      auto [a, b] = key;
      if (a == v) a = u;
      if (b == v) b = u;
      if (a == b) continue;
      new_undirected[{std::min(a, b), std::max(a, b)}] += count;
    }
    edge_count_ = std::move(new_undirected);
    std::map<std::pair<int, int>, int> new_directed;
    for (const auto& [key, count] : directed_) {
      auto [a, b] = key;
      if (a == v) a = u;
      if (b == v) b = u;
      if (a == b) continue;
      new_directed[{a, b}] += count;
    }
    directed_ = std::move(new_directed);
  }

  /// One merge step: merges up to `max_merges` disjoint best-affinity pairs.
  bool MergeStep(int max_merges) {
    struct Candidate {
      double affinity;
      int u, v;
    };
    std::vector<Candidate> candidates;
    std::vector<int> alive;
    double total_cost = 0.0;
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      if (nodes_[static_cast<std::size_t>(i)].alive) {
        alive.push_back(i);
        total_cost += nodes_[static_cast<std::size_t>(i)].cost;
      }
    }
    // Balance cap: a merged node should not exceed its fair share of the
    // total cost by more than the configured factor.
    const double cost_cap =
        options_.balance_cap * total_cost / std::max(1, options_.num_cores);
    auto gather = [&](bool capped) {
      for (std::size_t i = 0; i < alive.size(); ++i) {
        for (std::size_t j = i + 1; j < alive.size(); ++j) {
          const double combined = nodes_[static_cast<std::size_t>(alive[i])].cost +
                                  nodes_[static_cast<std::size_t>(alive[j])].cost;
          if (capped && combined > cost_cap) {
            continue;
          }
          candidates.push_back(
              Candidate{Affinity(alive[i], alive[j]), alive[i], alive[j]});
        }
      }
    };
    gather(/*capped=*/true);
    if (candidates.empty()) {
      gather(/*capped=*/false);  // must still converge to num_cores nodes
    }
    if (candidates.empty()) {
      return false;
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.affinity != b.affinity) {
                         return a.affinity > b.affinity;
                       }
                       return std::tie(a.u, a.v) < std::tie(b.u, b.v);
                     });
    std::set<int> used;
    int merges = 0;
    const int allowed = std::min(max_merges, AliveCount() - options_.num_cores);
    for (const Candidate& c : candidates) {
      if (merges >= allowed) {
        break;
      }
      if (used.contains(c.u) || used.contains(c.v)) {
        continue;
      }
      Merge(c.u, c.v);
      used.insert(c.u);
      used.insert(c.v);
      ++merges;
    }
    return merges > 0;
  }

  /// Collapses every dependence cycle among live nodes (Tarjan SCC over the
  /// directed dependence graph).
  void CollapseCycles() {
    for (;;) {
      const std::vector<std::vector<int>> sccs = FindSccs();
      bool merged_any = false;
      for (const std::vector<int>& scc : sccs) {
        if (scc.size() > 1) {
          for (std::size_t i = 1; i < scc.size(); ++i) {
            Merge(scc[0], scc[i]);
          }
          merged_any = true;
          break;  // edge maps changed; recompute SCCs
        }
      }
      if (!merged_any) {
        return;
      }
    }
  }

  std::vector<std::vector<int>> FindSccs() const {
    // Iterative Tarjan over alive nodes.
    std::map<int, std::vector<int>> adj;
    std::vector<int> alive;
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      if (nodes_[static_cast<std::size_t>(i)].alive) {
        alive.push_back(i);
      }
    }
    for (const auto& [key, count] : directed_) {
      if (count > 0 && nodes_[static_cast<std::size_t>(key.first)].alive &&
          nodes_[static_cast<std::size_t>(key.second)].alive) {
        adj[key.first].push_back(key.second);
      }
    }
    std::map<int, int> index_of, lowlink;
    std::set<int> on_stack;
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int counter = 0;

    struct Frame {
      int node;
      std::size_t child = 0;
    };
    for (int start : alive) {
      if (index_of.contains(start)) {
        continue;
      }
      std::vector<Frame> frames{{start}};
      index_of[start] = lowlink[start] = counter++;
      stack.push_back(start);
      on_stack.insert(start);
      while (!frames.empty()) {
        Frame& frame = frames.back();
        const auto& edges = adj[frame.node];
        if (frame.child < edges.size()) {
          const int next = edges[frame.child++];
          if (!index_of.contains(next)) {
            index_of[next] = lowlink[next] = counter++;
            stack.push_back(next);
            on_stack.insert(next);
            frames.push_back(Frame{next});
          } else if (on_stack.contains(next)) {
            lowlink[frame.node] = std::min(lowlink[frame.node], index_of[next]);
          }
        } else {
          if (lowlink[frame.node] == index_of[frame.node]) {
            std::vector<int> scc;
            for (;;) {
              const int w = stack.back();
              stack.pop_back();
              on_stack.erase(w);
              scc.push_back(w);
              if (w == frame.node) {
                break;
              }
            }
            sccs.push_back(std::move(scc));
          }
          const int done = frame.node;
          frames.pop_back();
          if (!frames.empty()) {
            lowlink[frames.back().node] =
                std::min(lowlink[frames.back().node], lowlink[done]);
          }
        }
      }
    }
    return sccs;
  }

  std::vector<MergedPartition> Finish() const {
    std::vector<MergedPartition> out;
    for (const Live& node : nodes_) {
      if (node.alive && !node.stmts.empty()) {
        out.push_back(MergedPartition{node.stmts, node.cost, node.compute_ops});
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const MergedPartition& a, const MergedPartition& b) {
                       return a.cost > b.cost;
                     });
    return out;
  }

  const CompileOptions& options_;
  std::vector<Live> nodes_;
  std::map<std::pair<int, int>, int> edge_count_;  // undirected, for affinity
  std::map<std::pair<int, int>, int> directed_;    // for the SCC collapse
};

}  // namespace

/// Partition-quality objective used for refinement and candidate selection:
/// an estimated per-iteration makespan.  A bidirectional dependence between
/// two partitions forces a round trip through the queues each iteration
/// that an in-order core cannot pipeline past, so it charges both sides
/// 2 * (assumed transfer latency + 1) cycles; one-way transfers pipeline
/// across iterations and are charged only a small per-transfer queue-op
/// cost.  Ties break on transfer count, then on raw max cost.
std::tuple<double, int, double> PartitionObjective(
    const CodeGraph& graph, const std::vector<MergedPartition>& parts,
    const CompileOptions& options) {
  const int num_parts = static_cast<int>(parts.size());
  std::map<ir::StmtId, int> part_of;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (ir::StmtId stmt : parts[p].stmts) {
      part_of[stmt] = static_cast<int>(p);
    }
  }
  // Cross-partition transfers at (producer node, consumer partition)
  // granularity — one queue transfer per iteration each.
  std::set<std::pair<int, int>> node_cross;
  std::vector<std::vector<bool>> reach(
      static_cast<std::size_t>(num_parts),
      std::vector<bool>(static_cast<std::size_t>(num_parts), false));
  for (const DepEdge& edge : graph.edges) {
    const int pu = part_of.at(edge.producer);
    const int pv = part_of.at(edge.consumer);
    if (pu != pv) {
      node_cross.insert({graph.NodeOf(edge.producer), pv});
      reach[static_cast<std::size_t>(pu)][static_cast<std::size_t>(pv)] = true;
    }
  }
  // Transitive closure -> SCCs of the partition digraph.  Every partition
  // on a dependence cycle pays one full round trip per iteration, because
  // the in-order core blocks in the dequeue that closes the cycle.
  for (int k = 0; k < num_parts; ++k) {
    for (int i = 0; i < num_parts; ++i) {
      for (int j = 0; j < num_parts; ++j) {
        reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] ||
            (reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] &&
             reach[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
      }
    }
  }
  std::vector<int> scc_size(static_cast<std::size_t>(num_parts), 1);
  for (int i = 0; i < num_parts; ++i) {
    int size = 1;
    for (int j = 0; j < num_parts; ++j) {
      if (i != j && reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] &&
          reach[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]) {
        ++size;
      }
    }
    scc_size[static_cast<std::size_t>(i)] = size;
  }
  const double hop = static_cast<double>(options.assumed_transfer_latency) + 1.0;

  double makespan = 0.0;
  double max_cost = 0.0;
  for (int p = 0; p < num_parts; ++p) {
    // Queue-op pipeline occupancy: one cycle per enqueue issued here plus
    // one per dequeue received here.
    double queue_ops = 0.0;
    for (const auto& cross : node_cross) {
      const int producer_part =
          part_of.at(graph.nodes[static_cast<std::size_t>(cross.first)]
                         .stmts.front());
      if (producer_part == p) {
        queue_ops += 1.0;
      }
      if (cross.second == p) {
        queue_ops += 1.0;
      }
    }
    const double cycle_penalty =
        scc_size[static_cast<std::size_t>(p)] > 1
            ? static_cast<double>(scc_size[static_cast<std::size_t>(p)]) * hop
            : 0.0;
    makespan = std::max(makespan, parts[static_cast<std::size_t>(p)].cost +
                                      cycle_penalty + queue_ops);
    max_cost = std::max(max_cost, parts[static_cast<std::size_t>(p)].cost);
  }
  return {makespan, static_cast<int>(node_cross.size()), max_cost};
}

namespace {

/// Alternative candidate: contiguous segments of a cost-balanced
/// topological order.  Edges between segments only ever point forward, so
/// the resulting pipeline is acyclic by construction (the DSWP-like shape).
std::vector<MergedPartition> TopoSegments(const CodeGraph& graph,
                                          const CompileOptions& options) {
  const int n = static_cast<int>(graph.nodes.size());
  std::map<int, std::set<int>> succs;
  std::map<int, int> indegree;
  for (int i = 0; i < n; ++i) {
    indegree[i] = 0;
  }
  for (const DepEdge& edge : graph.edges) {
    const int u = graph.NodeOf(edge.producer);
    const int v = graph.NodeOf(edge.consumer);
    if (u != v && succs[u].insert(v).second) {
      ++indegree[v];
    }
  }
  // Kahn's algorithm; ties broken by source order (min_line, index).
  std::vector<int> order;
  std::set<std::pair<int, int>> ready;  // (min_line, node)
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.insert({graph.nodes[static_cast<std::size_t>(i)].min_line, i});
    }
  }
  while (!ready.empty()) {
    const int node = ready.begin()->second;
    ready.erase(ready.begin());
    order.push_back(node);
    for (int next : succs[node]) {
      if (--indegree[next] == 0) {
        ready.insert({graph.nodes[static_cast<std::size_t>(next)].min_line, next});
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return {};  // unexpected cycle at node level; no topo candidate
  }
  double total = 0.0;
  for (const GraphNode& node : graph.nodes) {
    total += node.cost;
  }
  std::vector<MergedPartition> parts;
  MergedPartition current;
  double remaining = total;
  int segments_left = options.num_cores;
  for (int node : order) {
    const GraphNode& gn = graph.nodes[static_cast<std::size_t>(node)];
    const double target = remaining / segments_left;
    if (segments_left > 1 && !current.stmts.empty() &&
        current.cost + gn.cost / 2.0 > target) {
      remaining -= current.cost;
      parts.push_back(std::move(current));
      current = MergedPartition{};
      --segments_left;
    }
    current.stmts.insert(current.stmts.end(), gn.stmts.begin(), gn.stmts.end());
    current.cost += gn.cost;
    current.compute_ops += gn.compute_ops;
  }
  if (!current.stmts.empty()) {
    parts.push_back(std::move(current));
  }
  return parts;
}

}  // namespace

/// Directed sender->receiver channels a partitioning needs: loop transfers
/// (one per cross-partition dependence direction) plus, for every partition
/// other than the primary (the most expensive one after sorting), the
/// dispatch/argument channel from the primary and the live-out/completion
/// channel back — the Section III-G protocol traffic.
int ChannelsUsed(const CodeGraph& graph, const std::vector<MergedPartition>& parts) {
  std::map<ir::StmtId, int> part_of;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (ir::StmtId stmt : parts[p].stmts) {
      part_of[stmt] = static_cast<int>(p);
    }
  }
  std::set<std::pair<int, int>> channels;
  for (std::size_t p = 1; p < parts.size(); ++p) {
    channels.insert({0, static_cast<int>(p)});  // dispatch + args
    channels.insert({static_cast<int>(p), 0});  // completion + live-outs
  }
  for (const DepEdge& edge : graph.edges) {
    const int pu = part_of.at(edge.producer);
    const int pv = part_of.at(edge.consumer);
    if (pu != pv) {
      channels.insert({pu, pv});
    }
  }
  return static_cast<int>(channels.size());
}

std::vector<std::vector<MergedPartition>> EnumerateCandidates(
    const CodeGraph& graph, const CompileOptions& options) {
  FGPAR_CHECK_MSG(options.num_cores >= 1, "num_cores must be >= 1");
  std::vector<std::vector<MergedPartition>> candidates;
  std::set<std::vector<std::vector<ir::StmtId>>> seen;
  auto add = [&](std::vector<MergedPartition> parts) {
    if (parts.empty()) {
      return;
    }
    if (options.max_channels > 0 &&
        ChannelsUsed(graph, parts) > options.max_channels) {
      return;  // exceeds the hardware queue budget
    }
    std::stable_sort(parts.begin(), parts.end(),
                     [](const MergedPartition& a, const MergedPartition& b) {
                       return a.cost > b.cost;
                     });
    std::vector<std::vector<ir::StmtId>> key;
    for (MergedPartition& p : parts) {
      std::sort(p.stmts.begin(), p.stmts.end());
      key.push_back(p.stmts);
    }
    std::sort(key.begin(), key.end());
    if (seen.insert(std::move(key)).second) {
      candidates.push_back(std::move(parts));
    }
  };

  if (options.throughput_heuristic) {
    // The ablation keeps the paper's exact variant: affinity merge with
    // cycle collapsing, at the requested core count.
    add(RefinePartitions(graph, Merger(graph, options).Run(), options));
    return candidates;
  }
  for (int target = std::min(2, options.num_cores); target <= options.num_cores;
       ++target) {
    CompileOptions sub = options;
    sub.num_cores = target;
    add(RefinePartitions(graph, Merger(graph, sub).Run(), sub));
    std::vector<MergedPartition> topo = TopoSegments(graph, sub);
    if (!topo.empty()) {
      add(RefinePartitions(graph, std::move(topo), sub));
    }
  }
  if (candidates.empty()) {
    // The queue budget rejected every multi-partition shape: fall back to a
    // single partition (sequential on the primary core, zero queues).
    MergedPartition all;
    for (const GraphNode& node : graph.nodes) {
      all.stmts.insert(all.stmts.end(), node.stmts.begin(), node.stmts.end());
      all.cost += node.cost;
      all.compute_ops += node.compute_ops;
    }
    candidates.push_back({std::move(all)});
  }
  FGPAR_CHECK_MSG(!candidates.empty(), "no partitioning candidate produced");
  return candidates;
}

std::vector<MergedPartition> MergeGraph(const CodeGraph& graph,
                                        const CompileOptions& options) {
  std::vector<std::vector<MergedPartition>> candidates =
      EnumerateCandidates(graph, options);
  std::size_t best = 0;
  auto best_score = PartitionObjective(graph, candidates[0], options);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const auto score = PartitionObjective(graph, candidates[i], options);
    if (score < best_score) {
      best = i;
      best_score = score;
    }
  }
  return std::move(candidates[best]);
}

std::vector<MergedPartition> RefinePartitions(const CodeGraph& graph,
                                              std::vector<MergedPartition> parts,
                                              const CompileOptions& options) {
  if (parts.size() < 2) {
    return parts;
  }
  const int num_parts = static_cast<int>(parts.size());

  // Recover the original (pre-merge) node granularity: fused statements
  // must move together, so moves operate on graph nodes.
  std::map<int, int> part_of_node;
  std::map<int, double> node_cost;
  std::map<int, int> node_ops;
  for (int p = 0; p < num_parts; ++p) {
    for (ir::StmtId stmt : parts[static_cast<std::size_t>(p)].stmts) {
      part_of_node[graph.NodeOf(stmt)] = p;
    }
  }
  for (int n = 0; n < static_cast<int>(graph.nodes.size()); ++n) {
    node_cost[n] = graph.nodes[static_cast<std::size_t>(n)].cost;
    node_ops[n] = graph.nodes[static_cast<std::size_t>(n)].compute_ops;
  }
  // Node-level directed dependences.
  std::set<std::pair<int, int>> node_edges;
  for (const DepEdge& edge : graph.edges) {
    const int u = graph.NodeOf(edge.producer);
    const int v = graph.NodeOf(edge.consumer);
    if (u != v) {
      node_edges.insert({u, v});
    }
  }

  double total_cost = 0.0;
  std::vector<double> part_cost(static_cast<std::size_t>(num_parts), 0.0);
  for (const auto& [node, p] : part_of_node) {
    part_cost[static_cast<std::size_t>(p)] += node_cost[node];
    total_cost += node_cost[node];
  }
  const double cost_cap =
      options.balance_cap * total_cost / std::max(1, options.num_cores);

  // Objective: estimated per-iteration makespan (see PartitionObjective);
  // evaluated here on the working node assignment.
  auto evaluate = [&]() {
    std::vector<MergedPartition> snapshot(static_cast<std::size_t>(num_parts));
    for (const auto& [node, p] : part_of_node) {
      const GraphNode& gn = graph.nodes[static_cast<std::size_t>(node)];
      MergedPartition& part = snapshot[static_cast<std::size_t>(p)];
      part.stmts.insert(part.stmts.end(), gn.stmts.begin(), gn.stmts.end());
      part.cost += gn.cost;
      part.compute_ops += gn.compute_ops;
    }
    std::erase_if(snapshot,
                  [](const MergedPartition& p) { return p.stmts.empty(); });
    return PartitionObjective(graph, snapshot, options);
  };

  auto count_nodes_in = [&](int p) {
    int count = 0;
    for (const auto& [node, part] : part_of_node) {
      (void)node;
      count += part == p ? 1 : 0;
    }
    return count;
  };

  for (int round = 0; round < 40; ++round) {
    const auto baseline = evaluate();
    bool improved = false;
    // Candidate moves: any node with a cross-partition edge.
    for (const auto& [node, from] : std::map<int, int>(part_of_node)) {
      bool boundary = false;
      for (const auto& edge : node_edges) {
        if ((edge.first == node && part_of_node.at(edge.second) != from) ||
            (edge.second == node && part_of_node.at(edge.first) != from)) {
          boundary = true;
          break;
        }
      }
      if (!boundary || count_nodes_in(from) <= 1) {
        continue;
      }
      for (int to = 0; to < num_parts; ++to) {
        if (to == from ||
            part_cost[static_cast<std::size_t>(to)] + node_cost[node] > cost_cap) {
          continue;
        }
        part_of_node[node] = to;
        part_cost[static_cast<std::size_t>(from)] -= node_cost[node];
        part_cost[static_cast<std::size_t>(to)] += node_cost[node];
        if (evaluate() < baseline) {
          improved = true;
          break;  // keep the move
        }
        part_of_node[node] = from;  // revert
        part_cost[static_cast<std::size_t>(from)] += node_cost[node];
        part_cost[static_cast<std::size_t>(to)] -= node_cost[node];
      }
      if (improved) {
        break;
      }
    }
    if (!improved) {
      break;
    }
  }

  // Rebuild partitions from the refined assignment.
  std::vector<MergedPartition> out(static_cast<std::size_t>(num_parts));
  for (const auto& [node, p] : part_of_node) {
    MergedPartition& part = out[static_cast<std::size_t>(p)];
    const GraphNode& gn = graph.nodes[static_cast<std::size_t>(node)];
    part.stmts.insert(part.stmts.end(), gn.stmts.begin(), gn.stmts.end());
    part.cost += gn.cost;
    part.compute_ops += gn.compute_ops;
  }
  std::erase_if(out, [](const MergedPartition& p) { return p.stmts.empty(); });
  std::stable_sort(out.begin(), out.end(),
                   [](const MergedPartition& a, const MergedPartition& b) {
                     return a.cost > b.cost;
                   });
  return out;
}

}  // namespace fgpar::compiler
