#include "compiler/speculate.hpp"
#include "compiler/pass.hpp"

namespace fgpar::compiler {
namespace {

using ir::Stmt;

/// Hoists the direct kAssignTemp children of `arm` into `hoisted`,
/// preserving order; everything else stays in the arm.  Only plain
/// (non-carried) temps may be hoisted — a carried update is a side effect.
void HoistArm(const ir::Kernel& kernel, std::vector<Stmt>& arm,
              std::vector<Stmt>& hoisted) {
  std::vector<Stmt> kept;
  kept.reserve(arm.size());
  for (Stmt& stmt : arm) {
    if (stmt.kind == ir::StmtKind::kAssignTemp &&
        !kernel.temp(stmt.temp).carried) {
      hoisted.push_back(std::move(stmt));
    } else {
      kept.push_back(std::move(stmt));
    }
  }
  arm = std::move(kept);
}

int RewriteList(ir::Kernel& kernel, std::vector<Stmt>& stmts) {
  int hoist_count = 0;
  std::vector<Stmt> out;
  out.reserve(stmts.size());
  for (Stmt& stmt : stmts) {
    if (stmt.kind == ir::StmtKind::kIf) {
      // Inner conditionals first, so nested @speculate blocks bubble their
      // pure work upward level by level.
      hoist_count += RewriteList(kernel, stmt.then_body);
      hoist_count += RewriteList(kernel, stmt.else_body);
      if (stmt.speculation_safe) {
        std::vector<Stmt> hoisted;
        HoistArm(kernel, stmt.then_body, hoisted);
        HoistArm(kernel, stmt.else_body, hoisted);
        hoist_count += static_cast<int>(hoisted.size());
        for (Stmt& h : hoisted) {
          out.push_back(std::move(h));
        }
      }
    }
    out.push_back(std::move(stmt));
  }
  stmts = std::move(out);
  return hoist_count;
}

}  // namespace

int ApplySpeculation(ir::Kernel& kernel) {
  const int hoisted = RewriteList(kernel, kernel.mutable_loop().body);
  kernel.RenumberStmts();
  return hoisted;
}


namespace {

/// Pipeline registration (see pass.hpp / pipeline.cpp).
class SpeculatePass final : public Pass {
 public:
  const char* name() const override { return "speculate"; }
  const char* description() const override {
    return "hoist pure computations out of @speculate branches so they can "
           "run ahead-of-time on other cores (Section III-H)";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    state.partition.speculation_hoisted = ApplySpeculation(state.kernel());
    state.Note("hoisted", state.partition.speculation_hoisted);
  }
};

}  // namespace

std::unique_ptr<Pass> MakeSpeculatePass() {
  return std::make_unique<SpeculatePass>();
}

}  // namespace fgpar::compiler
