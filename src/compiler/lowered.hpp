// The target-independent lowered program form (ISSUE: two-backend seam).
//
// The pass pipeline's lower stage no longer commits to sim ISA: it produces
// a LoweredProgram — the rewritten kernel, its memory layout, and (for the
// parallel pipeline) the per-core placement + communication plan — and hands
// it to a Backend (backend.hpp) to materialize.  The sim backend turns it
// into an isa::Program; the native backend (src/native/) turns it into host
// closures running on std::thread workers connected by SPSC rings.
//
// The form is deliberately a non-owning view: during a pipeline run it views
// the CompileState, and after compilation it views a CompiledParallel (which
// owns the kernel inside its PartitionResult and owns the ProgramPlan, so
// the view stays valid for the compiled object's lifetime).
#pragma once

#include "compiler/plan.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace fgpar::compiler {

struct LoweredProgram {
  const ir::Kernel* kernel = nullptr;
  const ir::DataLayout* layout = nullptr;

  /// Core placement + communication plan.  nullptr means the scalar kernel
  /// lowers as a single-core sequential program (the baseline pipeline).
  const ProgramPlan* plan = nullptr;

  bool sequential() const { return plan == nullptr; }

  /// Cores the parallel form targets (1 for sequential).
  int cores() const {
    return plan == nullptr ? 1 : static_cast<int>(plan->cores.size());
  }
};

}  // namespace fgpar::compiler
