#include "compiler/forward.hpp"
#include "compiler/pass.hpp"

#include <map>
#include <optional>
#include <vector>

#include "analysis/affine.hpp"
#include "analysis/control.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using analysis::ControlPath;
using analysis::LinearIndex;
using analysis::PathStep;
using ir::ExprId;
using ir::Kernel;
using ir::Stmt;

/// An available stored value: symbol + exact subscript, the statement that
/// produced it, and the control path under which it is valid.
struct AvailableDef {
  ir::SymbolId sym;
  bool is_scalar;
  LinearIndex index;
  Stmt* store_stmt;
  ControlPath path;
};

class Forwarder {
 public:
  explicit Forwarder(Kernel& kernel) : k_(kernel) {}

  int Run() {
    Walk(k_.mutable_loop().body, {});
    // The epilogue is a different execution region (runs once, after every
    // iteration); loop-body defs never forward into it.
    MaterializeTemps();
    k_.RenumberStmts();
    return forwarded_;
  }

 private:
  void Walk(std::vector<Stmt>& stmts, const ControlPath& path) {
    for (Stmt& stmt : stmts) {
      switch (stmt.kind) {
        case ir::StmtKind::kAssignTemp:
          stmt.value = RewriteLoads(stmt.value, path);
          break;
        case ir::StmtKind::kStoreScalar:
          stmt.value = RewriteLoads(stmt.value, path);
          RecordStore(stmt, path, /*is_scalar=*/true, LinearIndex{});
          break;
        case ir::StmtKind::kStoreArray:
          stmt.index = RewriteLoads(stmt.index, path);
          stmt.value = RewriteLoads(stmt.value, path);
          RecordStore(stmt, path, /*is_scalar=*/false,
                      analysis::AnalyzeIndex(k_, stmt.index));
          break;
        case ir::StmtKind::kIf: {
          stmt.value = RewriteLoads(stmt.value, path);
          ControlPath then_path = path;
          then_path.push_back(PathStep{stmt.id, true});
          Walk(stmt.then_body, then_path);
          ControlPath else_path = path;
          else_path.push_back(PathStep{stmt.id, false});
          Walk(stmt.else_body, else_path);
          break;
        }
      }
    }
  }

  void RecordStore(Stmt& stmt, const ControlPath& path, bool is_scalar,
                   const LinearIndex& index) {
    // A new store kills every prior def of the same symbol except an exact
    // same-address def under a prefix path, which it replaces.
    std::vector<AvailableDef> kept;
    for (AvailableDef& def : avail_) {
      if (def.sym != stmt.sym) {
        kept.push_back(std::move(def));
      }
    }
    avail_ = std::move(kept);
    const bool forwardable_subscript = is_scalar || index.affine;
    if (forwardable_subscript) {
      avail_.push_back(AvailableDef{stmt.sym, is_scalar, index, &stmt, path});
    }
  }

  /// Rewrites forwardable array/scalar loads inside `expr` for a statement
  /// executing at `path`.
  ExprId RewriteLoads(ExprId expr, const ControlPath& path) {
    const ir::ExprNode node = k_.expr(expr);  // copy (arena may grow)
    switch (node.kind) {
      case ir::ExprKind::kScalarRef: {
        const AvailableDef* def = FindDef(node.sym, /*is_scalar=*/true, {}, path);
        if (def != nullptr) {
          return ForwardFrom(*def, node.type);
        }
        return expr;
      }
      case ir::ExprKind::kArrayRef: {
        // The index itself may contain forwardable loads.
        const ExprId new_index = RewriteLoads(node.child[0], path);
        const LinearIndex index = analysis::AnalyzeIndex(k_, new_index);
        const AvailableDef* def =
            FindDef(node.sym, /*is_scalar=*/false, index, path);
        if (def != nullptr) {
          ++forwarded_;
          return ForwardFrom(*def, node.type);
        }
        if (new_index == node.child[0]) {
          return expr;
        }
        ir::ExprNode clone = node;
        clone.child[0] = new_index;
        return k_.AddExpr(clone);
      }
      case ir::ExprKind::kUnary:
      case ir::ExprKind::kBinary:
      case ir::ExprKind::kSelect: {
        ir::ExprNode clone = node;
        bool changed = false;
        for (int c = 0; c < ir::ChildCount(node); ++c) {
          const ExprId child = node.child[static_cast<std::size_t>(c)];
          const ExprId rewritten = RewriteLoads(child, path);
          changed |= rewritten != child;
          clone.child[static_cast<std::size_t>(c)] = rewritten;
        }
        return changed ? k_.AddExpr(clone) : expr;
      }
      default:
        return expr;
    }
  }

  const AvailableDef* FindDef(ir::SymbolId sym, bool is_scalar,
                              const LinearIndex& index, const ControlPath& path) {
    for (auto it = avail_.rbegin(); it != avail_.rend(); ++it) {
      if (it->sym != sym || it->is_scalar != is_scalar) {
        continue;
      }
      if (!analysis::IsPrefix(it->path, path)) {
        return nullptr;  // most recent def doesn't dominate this load
      }
      if (is_scalar || analysis::SameAddressSameIteration(it->index, index)) {
        if (is_scalar) {
          ++forwarded_;
        }
        return &*it;
      }
      return nullptr;  // most recent dominating def is a different address
    }
    return nullptr;
  }

  /// Returns a TempRef to the value stored by `def`, scheduling the store
  /// statement for value-temp materialization if needed.
  ExprId ForwardFrom(const AvailableDef& def, ir::ScalarType type) {
    Stmt* store = def.store_stmt;
    const ir::ExprNode& value_node = k_.expr(store->value);
    ir::TempId temp;
    if (value_node.kind == ir::ExprKind::kTempRef) {
      temp = value_node.temp;
    } else {
      auto it = value_temp_for_.find(store->id);
      if (it != value_temp_for_.end()) {
        temp = it->second;
      } else {
        temp = static_cast<ir::TempId>(k_.temps().size());
        k_.mutable_temps().push_back(ir::Temp{
            temp, "@fwd" + std::to_string(temp), type, false, 0, 0.0});
        value_temp_for_[store->id] = temp;
      }
    }
    return k_.AddExpr(
        ir::ExprNode{.kind = ir::ExprKind::kTempRef, .type = type, .temp = temp});
  }

  /// Second phase: for every store whose value was forwarded, split it into
  /// `t = value; store t`.
  void MaterializeTemps() {
    if (value_temp_for_.empty()) {
      return;
    }
    Materialize(k_.mutable_loop().body);
  }

  void Materialize(std::vector<Stmt>& stmts) {
    std::vector<Stmt> out;
    out.reserve(stmts.size());
    for (Stmt& stmt : stmts) {
      const auto it = value_temp_for_.find(stmt.id);
      if (it != value_temp_for_.end()) {
        const ir::TempId temp = it->second;
        Stmt assign;
        assign.id = k_.AllocateStmtId();
        assign.kind = ir::StmtKind::kAssignTemp;
        assign.source_line = stmt.source_line;
        assign.temp = temp;
        assign.value = stmt.value;
        stmt.value = k_.AddExpr(ir::ExprNode{.kind = ir::ExprKind::kTempRef,
                                             .type = k_.temp(temp).type,
                                             .temp = temp});
        out.push_back(std::move(assign));
      }
      out.push_back(std::move(stmt));
      if (out.back().kind == ir::StmtKind::kIf) {
        Materialize(out.back().then_body);
        Materialize(out.back().else_body);
      }
    }
    stmts = std::move(out);
  }

  Kernel& k_;
  std::vector<AvailableDef> avail_;
  std::map<ir::StmtId, ir::TempId> value_temp_for_;
  int forwarded_ = 0;
};

}  // namespace

int ForwardStores(ir::Kernel& kernel) { return Forwarder(kernel).Run(); }


namespace {

/// Pipeline registration (see pass.hpp / pipeline.cpp).
class ForwardPass final : public Pass {
 public:
  const char* name() const override { return "forward"; }
  const char* description() const override {
    return "forward must-alias stores to later reloads, turning memory RAW "
           "dependences into queueable register dataflow (Section III-I.2)";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    state.partition.loads_forwarded = ForwardStores(state.kernel());
    state.Note("loads_forwarded", state.partition.loads_forwarded);
  }
};

}  // namespace

std::unique_ptr<Pass> MakeForwardPass() {
  return std::make_unique<ForwardPass>();
}

}  // namespace fgpar::compiler
