// The pluggable cost-model seam for the multi-version select stage.
//
// Historically the select stage (pass.cpp) hard-wired candidate scoring to
// full simulation: each built candidate was run on a training workload via
// the PartitionEvaluator and the lowest cycle count won.  CostModel
// abstracts "score one fully built candidate" so other evaluation tiers —
// notably the analytical latency-hiding predictor (src/model/analytic.*) —
// plug into the same selection loop:
//
//   * SimulateCostModel wraps the PartitionEvaluator.  Selection through it
//     is byte-identical to the historical loop: the score is the exact
//     measured cycle count (integers below 2^53 are exact in a double, and
//     the loop keeps the strict-less-than / first-wins tie semantics).
//   * model::AnalyticModel scores candidates from static features alone —
//     no simulation — which is what makes autotuning over large config
//     spaces feasible (predict everything, simulate only the frontier).
//
// A model returns a ScoredCandidate: the comparable cost plus the
// explanation record (`fgparc --explain-select`) — one human-readable
// line and the named feature values the score was computed from.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "compiler/pass.hpp"
#include "compiler/plan.hpp"

namespace fgpar::compiler {

/// One scored candidate: the comparable cost and its explanation.
struct ScoredCandidate {
  double cost = 0.0;   // lower wins; ties resolve first-wins
  std::string detail;  // one-line attribution for --explain-select
  /// Named features in the model's deterministic emission order.
  std::vector<std::pair<std::string, double>> features;
};

/// Scores fully built candidates for the select stage.  Implementations
/// must be deterministic: same state + candidate, same score and record.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Stable name recorded in CandidateReport::model.
  virtual std::string_view name() const = 0;

  /// Scores one candidate that survived building (cores assigned, comm
  /// planned, pairing/capacity proven, lowered).  `state` carries the
  /// shared analyses (graph, index, cost, options); the remaining
  /// arguments are the candidate's own artifacts.
  virtual ScoredCandidate Score(const CompileState& state,
                                const isa::Program& program,
                                const ProgramPlan& plan,
                                const CoreAssignment& assignment) const = 0;
};

/// The simulate-to-score tier: measures each candidate through the
/// evaluator (non-owning; must outlive the model).  Byte-identical
/// selection to the historical evaluator loop.
class SimulateCostModel final : public CostModel {
 public:
  explicit SimulateCostModel(const PartitionEvaluator& evaluator)
      : evaluator_(&evaluator) {}

  std::string_view name() const override { return "simulate"; }
  ScoredCandidate Score(const CompileState& state, const isa::Program& program,
                        const ProgramPlan& plan,
                        const CoreAssignment& assignment) const override;

 private:
  const PartitionEvaluator* evaluator_;
};

}  // namespace fgpar::compiler
