// Control-flow speculation (paper Section III-H).
//
// For if statements the author marked @speculate (the paper's source
// directive, Section III-I.1), the pure temporary computations in both arms
// are hoisted above the statement, so they lose their control dependence on
// the condition and can be partitioned onto other cores and executed
// ahead-of-time.  Only the side-effecting statements (stores and carried-
// temp updates) stay guarded, which is why this "very limited" form of
// speculation is guaranteed never to need rollback: a mispredicted arm's
// results are simply never committed.
#pragma once

#include "ir/kernel.hpp"

namespace fgpar::compiler {

/// Rewrites `kernel` in place; returns the number of hoisted statements.
int ApplySpeculation(ir::Kernel& kernel);

}  // namespace fgpar::compiler
