// Static communication checker.
//
// The paper (Section III-I): "the compiler has to statically ensure that
// senders and receivers are always paired at runtime."  This pass proves it
// for a ProgramPlan by symbolically executing one loop iteration of every
// core plan under every possible branch assignment (conditions are
// communicated values, so all cores see the same outcome for each if) and
// checking that, for every directed queue (source core, destination core,
// register class), the sequence of transfers enqueued equals the sequence
// dequeued.  A violated plan would deadlock or cross values at runtime;
// here it becomes a compile-time error.
#pragma once

#include "compiler/plan.hpp"

namespace fgpar::compiler {

/// Throws fgpar::Error with a diagnostic if the plan can unpair.
void CheckCommunicationPairing(const ir::Kernel& kernel, const ProgramPlan& plan);

}  // namespace fgpar::compiler
