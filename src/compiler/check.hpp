// Static communication checkers.
//
// The paper (Section III-I): "the compiler has to statically ensure that
// senders and receivers are always paired at runtime."  This pass proves it
// for a ProgramPlan by symbolically executing one loop iteration of every
// core plan under every possible branch assignment (conditions are
// communicated values, so all cores see the same outcome for each if) and
// checking that, for every directed queue (source core, destination core,
// register class), the sequence of transfers enqueued equals the sequence
// dequeued.  A violated plan would deadlock or cross values at runtime;
// here it becomes a compile-time error.
//
// Pairing alone is not enough once queues have bounded capacity: a paired
// plan can still wedge when a cycle of cores blocks on full queues (or on
// dequeues whose producers sit behind a full queue).  CheckQueueCapacity
// proves this cannot happen by greedily executing each branch assignment's
// per-core queue-operation sequences against capacity-bounded counters.
// The system is a Kahn network in which every queue has exactly one sender
// and one receiver, so enabled operations stay enabled until executed
// (persistence); greedy maximal progress is therefore a sound *and
// complete* deadlock decision procedure.  One iteration from empty queues
// suffices: a pairing-checked iteration returns every queue to empty, so
// by induction (and persistence) no deadlock is reachable at any iteration
// count or cross-iteration pipelining skew.  Timing (transfer latency,
// issue stalls) only delays operations and cannot create new deadlocks.
#pragma once

#include "compiler/plan.hpp"

namespace fgpar::compiler {

/// Throws fgpar::Error with a diagnostic if the plan can unpair.
void CheckCommunicationPairing(const ir::Kernel& kernel, const ProgramPlan& plan);

/// Throws fgpar::Error with a diagnostic if the plan can reach a cyclic
/// wait across full queues with the given per-queue capacity.  Requires a
/// plan that already passed CheckCommunicationPairing.  `capacity` <= 0
/// means unlimited (the check is skipped).
void CheckQueueCapacity(const ProgramPlan& plan, int capacity);

/// The smallest per-queue capacity under which the plan provably completes
/// an iteration (1 is the hardware minimum).  Returns -1 for plans that
/// deadlock at every capacity (a pure ordering deadlock).  Diagnostic
/// companion to CheckQueueCapacity.
int RequiredQueueCapacity(const ProgramPlan& plan);

}  // namespace fgpar::compiler
