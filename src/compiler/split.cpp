#include "compiler/split.hpp"
#include "compiler/pass.hpp"

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using ir::ExprId;
using ir::ExprNode;
using ir::Kernel;
using ir::Stmt;

/// Tree depth where array references (and all other partition leaves)
/// count as depth 1, matching the fiber partitioner's view of the tree.
int PartitionDepth(const Kernel& k, ExprId id) {
  const ExprNode& node = k.expr(id);
  if (ir::IsPartitionLeaf(node.kind)) {
    return 1;
  }
  int depth = 0;
  for (int c = 0; c < ir::ChildCount(node); ++c) {
    depth = std::max(depth, PartitionDepth(k, node.child[static_cast<std::size_t>(c)]));
  }
  return depth + 1;
}

class Splitter {
 public:
  Splitter(Kernel& kernel, int max_depth) : k_(kernel), max_depth_(max_depth) {
    FGPAR_CHECK_MSG(max_depth >= 2, "max_expr_depth must be >= 2");
  }

  int Run() {
    RewriteList(k_.mutable_loop().body);
    RewriteList(k_.mutable_epilogue());
    k_.RenumberStmts();
    return added_;
  }

 private:
  void RewriteList(std::vector<Stmt>& stmts) {
    std::vector<Stmt> out;
    out.reserve(stmts.size());
    for (Stmt& stmt : stmts) {
      pending_ = &out;
      line_ = stmt.source_line;
      switch (stmt.kind) {
        case ir::StmtKind::kAssignTemp:
        case ir::StmtKind::kStoreScalar:
        case ir::StmtKind::kStoreArray:
          stmt.value = Reduce(stmt.value, max_depth_);
          break;
        case ir::StmtKind::kIf:
          stmt.value = Reduce(stmt.value, max_depth_);
          break;
      }
      out.push_back(std::move(stmt));
      if (out.back().kind == ir::StmtKind::kIf) {
        RewriteList(out.back().then_body);
        RewriteList(out.back().else_body);
        pending_ = nullptr;
      }
    }
    stmts = std::move(out);
  }

  /// Returns an expression equivalent to `id` whose tree depth is at most
  /// `budget`, peeling deep subtrees into temporaries emitted via pending_.
  ExprId Reduce(ExprId id, int budget) {
    const ExprNode node = k_.expr(id);  // copy: arena may reallocate below
    if (ir::IsPartitionLeaf(node.kind)) {
      return id;
    }
    if (PartitionDepth(k_, id) <= budget) {
      return id;
    }
    if (budget <= 1) {
      return Outline(id);
    }
    ExprNode clone = node;
    for (int c = 0; c < ir::ChildCount(node); ++c) {
      clone.child[static_cast<std::size_t>(c)] =
          Reduce(node.child[static_cast<std::size_t>(c)], budget - 1);
    }
    return k_.AddExpr(clone);
  }

  /// Emits `t = <reduced id>` before the current statement; returns a
  /// TempRef to t.
  ExprId Outline(ExprId id) {
    const ExprId reduced = Reduce(id, max_depth_);
    const ir::ScalarType type = k_.expr(reduced).type;
    const ir::TempId temp = static_cast<ir::TempId>(k_.temps().size());
    k_.mutable_temps().push_back(ir::Temp{
        temp, "@split" + std::to_string(temp), type, false, 0, 0.0});
    Stmt stmt;
    stmt.id = k_.AllocateStmtId();
    stmt.kind = ir::StmtKind::kAssignTemp;
    stmt.source_line = line_;
    stmt.temp = temp;
    stmt.value = reduced;
    pending_->push_back(std::move(stmt));
    ++added_;
    return k_.AddExpr(
        ir::ExprNode{.kind = ir::ExprKind::kTempRef, .type = type, .temp = temp});
  }

  Kernel& k_;
  int max_depth_;
  std::vector<Stmt>* pending_ = nullptr;
  int line_ = 0;
  int added_ = 0;
};

}  // namespace

int SplitExpressions(ir::Kernel& kernel, int max_depth) {
  return Splitter(kernel, max_depth).Run();
}


namespace {

/// Pipeline registration (see pass.hpp / pipeline.cpp).
class SplitPass final : public Pass {
 public:
  const char* name() const override { return "split"; }
  const char* description() const override {
    return "bound expression-tree depth by peeling compound subtrees into "
           "fresh temporaries (Section III-A preprocessing)";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    state.partition.split_added =
        SplitExpressions(state.kernel(), state.options.max_expr_depth);
    state.Note("split_added", state.partition.split_added);
  }
};

}  // namespace

std::unique_ptr<Pass> MakeSplitPass() { return std::make_unique<SplitPass>(); }

}  // namespace fgpar::compiler
