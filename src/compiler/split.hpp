// Expression splitting — the Section III-A preprocessing step.
//
// "Before applying the partitioning algorithm, the expression trees are
// pre-processed to reduce the depth of the tree by splitting compound
// expressions into multiple statements.  This makes it possible to detect
// even more fine-grained parallelism."
//
// Any assignment/store whose value tree is deeper than `max_depth` has its
// deepest compound subtrees peeled into fresh temporaries until every
// statement's tree fits.  Array-reference subtrees count as leaves (their
// index computation travels with the load).
#pragma once

#include "ir/kernel.hpp"

namespace fgpar::compiler {

/// Rewrites `kernel` in place; returns the number of new statements added.
int SplitExpressions(ir::Kernel& kernel, int max_depth);

}  // namespace fgpar::compiler
