// The backend seam below the lowering stage.
//
// A Backend consumes the target-independent LoweredProgram (lowered.hpp)
// and materializes something executable.  Two implementations exist:
//
//  * the sim backend (here): emits the sim ISA image that the cycle-level
//    simulator runs — the historical single target, byte-identical to the
//    pre-seam lowering and guarded by the tests/golden/ captures;
//  * the native backend (src/native/backend.hpp): compiles each partition
//    into a callable host function run on a pinned std::thread worker, with
//    enq/deq mapped onto lock-free SPSC ring buffers.
//
// The compiler library only knows the interface and the sim implementation;
// the native backend lives in its own library (fgpar_native) so the sim
// pipeline carries no thread-runtime dependencies.
#pragma once

#include <memory>
#include <string_view>

#include "compiler/lowered.hpp"
#include "isa/program.hpp"

namespace fgpar::compiler {

/// Which execution backend a run targets.  Plumbed through RunConfig,
/// experiments, fgparc --backend, fig12 --backend, and service
/// config.backend (where, unlike the run tier, it IS part of the cache key:
/// native results are host measurements and must never be served for a sim
/// request or vice versa).
enum class BackendKind : std::uint8_t { kSim = 0, kNative };

/// Stable lowercase name ("sim", "native").
std::string_view BackendKindName(BackendKind kind);

/// Inverse of BackendKindName; throws fgpar::Error on an unknown name.
BackendKind ParseBackendKind(std::string_view name);

/// A materialized program.  Concrete type depends on the backend; callers
/// downcast via the kind() tag (SimProgram below, native::NativeProgram).
class BackendProgram {
 public:
  virtual ~BackendProgram() = default;
  virtual BackendKind kind() const = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendKind kind() const = 0;

  /// Materializes the lowered form.  The returned program may keep
  /// non-owning references into `lowered`'s kernel/layout/plan, which must
  /// therefore outlive it.
  virtual std::unique_ptr<BackendProgram> Compile(
      const LoweredProgram& lowered) const = 0;
};

/// The sim backend's product: a container around the sim ISA image.
class SimProgram final : public BackendProgram {
 public:
  explicit SimProgram(isa::Program program) : program_(std::move(program)) {}
  BackendKind kind() const override { return BackendKind::kSim; }
  const isa::Program& program() const { return program_; }
  isa::Program Take() && { return std::move(program_); }

 private:
  isa::Program program_;
};

class SimBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kSim; }
  std::unique_ptr<BackendProgram> Compile(
      const LoweredProgram& lowered) const override;
};

/// Process-wide sim backend instance (stateless).
const Backend& SimBackendInstance();

/// Lowers through the sim backend and unwraps the ISA image — the pipeline's
/// lower stage calls this so CompileState::program keeps its historical type.
isa::Program LowerToSim(const LoweredProgram& lowered);

}  // namespace fgpar::compiler
