// Partitioning pipeline driver: runs the full Section III transformation
// sequence and produces the per-core statement assignment plus the
// statistics the paper reports in Table III.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/profile.hpp"
#include "compiler/fiber.hpp"
#include "compiler/merge.hpp"
#include "compiler/options.hpp"
#include "ir/kernel.hpp"

namespace fgpar::compiler {

/// The statement→core mapping a chosen candidate partitioning induces.
/// Deliberately kernel-free: the multi-version candidate loop builds one of
/// these per candidate without ever copying the (much larger) kernel.
struct CoreAssignment {
  /// partitions[c] = loop-body statement ids owned by core c.  partitions[0]
  /// is the primary core's.  May have fewer entries than requested cores if
  /// the kernel has fewer fibers.
  std::vector<std::vector<ir::StmtId>> partitions;

  /// Core owning each statement.
  std::map<ir::StmtId, int> core_of;

  std::vector<int> compute_ops_per_core;
  double load_balance = 0.0;  // max/min compute ops across partitions
};

struct PartitionResult : CoreAssignment {
  explicit PartitionResult(ir::Kernel k) : kernel(std::move(k)) {}

  /// The rewritten kernel (split + speculation + forwarding + fiberized).
  ir::Kernel kernel;

  // ---- Table III statistics ----
  int initial_fibers = 0;
  int data_deps = 0;

  // ---- pass statistics ----
  int split_added = 0;
  int speculation_hoisted = 0;
  int loads_forwarded = 0;
};

/// Runs split -> (speculation) -> forwarding -> fiberize -> graph -> merge.
/// `profile` may be null (Section III-I.3 fallback: static latencies only).
PartitionResult PartitionKernel(const ir::Kernel& input,
                                const CompileOptions& options,
                                const analysis::ProfileData* profile);

// ---- building blocks for multi-version compilation (Section III-I.1) ----

/// Applies the rewrite pipeline (split, optional speculation, forwarding,
/// fiberize) to result.kernel in place, filling the pass statistics, and
/// validates the result.
void ApplyRewritePasses(PartitionResult& result, const CompileOptions& options);

/// Builds the statement→core mapping for a chosen candidate partitioning,
/// placing the partition that produces the most epilogue-consumed values on
/// the primary core.
CoreAssignment AssignCores(const analysis::KernelIndex& index,
                           std::vector<MergedPartition> chosen);

/// Fills result's CoreAssignment fields from a chosen candidate
/// partitioning (AssignCores + store).
void AssignPartitionsToCores(PartitionResult& result,
                             const analysis::KernelIndex& index,
                             std::vector<MergedPartition> chosen);

}  // namespace fgpar::compiler
