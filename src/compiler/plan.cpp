#include "compiler/plan.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using analysis::ControlPath;
using analysis::KernelIndex;

/// True if `item` (transitively) contains a consumer of `temp`: a statement
/// reading it or a replicated if conditioned on it.
bool ContainsConsumer(const ir::Kernel& kernel, const PlanItem& item,
                      ir::TempId temp) {
  switch (item.kind) {
    case PlanItem::Kind::kStmt: {
      bool reads = false;
      const ir::Stmt& stmt = *item.stmt;
      auto check_expr = [&](ir::ExprId e) {
        kernel.VisitExpr(e, [&](ir::ExprId id) {
          const ir::ExprNode& node = kernel.expr(id);
          reads |= node.kind == ir::ExprKind::kTempRef && node.temp == temp;
        });
      };
      if (stmt.kind == ir::StmtKind::kStoreArray) {
        check_expr(stmt.index);
      }
      check_expr(stmt.value);
      return reads;
    }
    case PlanItem::Kind::kIf: {
      const ir::ExprNode& cond = kernel.expr(item.stmt->value);
      if (cond.kind == ir::ExprKind::kTempRef && cond.temp == temp) {
        return true;
      }
      for (const PlanItem& sub : item.then_items) {
        if (ContainsConsumer(kernel, sub, temp)) {
          return true;
        }
      }
      for (const PlanItem& sub : item.else_items) {
        if (ContainsConsumer(kernel, sub, temp)) {
          return true;
        }
      }
      return false;
    }
    case PlanItem::Kind::kEnq: case PlanItem::Kind::kDeq:
      return false;
  }
  return false;
}

class PlanBuilder {
 public:
  PlanBuilder(const KernelIndex& index, const CoreAssignment& partition,
              const CommPlan& comm)
      : index_(index), partition_(partition), comm_(comm) {}

  CorePlan Build(int core) {
    core_ = core;
    replicated_.clear();
    const auto it = comm_.replicated_ifs.find(core);
    if (it != comm_.replicated_ifs.end()) {
      replicated_.insert(it->second.begin(), it->second.end());
    }
    CorePlan plan;
    plan.core = core;
    plan.body = BuildBlock(index_.kernel().loop().body);
    InsertEnqueues(plan.body, /*path=*/{});
    InsertDequeues(plan.body, /*path=*/{});
    return plan;
  }

 private:
  /// Structure pass: owned statements plus replicated ifs, program order.
  std::vector<PlanItem> BuildBlock(const std::vector<ir::Stmt>& stmts) {
    std::vector<PlanItem> items;
    for (const ir::Stmt& stmt : stmts) {
      if (stmt.kind == ir::StmtKind::kIf) {
        if (!replicated_.contains(stmt.id)) {
          continue;
        }
        PlanItem item;
        item.kind = PlanItem::Kind::kIf;
        item.stmt = &stmt;
        item.then_items = BuildBlock(stmt.then_body);
        item.else_items = BuildBlock(stmt.else_body);
        items.push_back(std::move(item));
      } else {
        const auto it = partition_.core_of.find(stmt.id);
        if (it != partition_.core_of.end() && it->second == core_) {
          PlanItem item;
          item.kind = PlanItem::Kind::kStmt;
          item.stmt = &stmt;
          items.push_back(std::move(item));
        }
      }
    }
    return items;
  }

  /// Inserts an enqueue right after each owned producer statement, multiple
  /// destinations in ascending core order.
  void InsertEnqueues(std::vector<PlanItem>& items, const ControlPath& path) {
    std::vector<PlanItem> out;
    for (PlanItem& item : items) {
      if (item.kind == PlanItem::Kind::kIf) {
        ControlPath then_path = path;
        then_path.push_back(analysis::PathStep{item.stmt->id, true});
        InsertEnqueues(item.then_items, then_path);
        ControlPath else_path = path;
        else_path.push_back(analysis::PathStep{item.stmt->id, false});
        InsertEnqueues(item.else_items, else_path);
        out.push_back(std::move(item));
        continue;
      }
      const ir::StmtId id =
          item.kind == PlanItem::Kind::kStmt ? item.stmt->id : -1;
      out.push_back(std::move(item));
      if (id < 0) {
        continue;
      }
      std::vector<int> outgoing;
      for (const Transfer& t : comm_.transfers) {
        if (t.src_core == core_ && t.producer_stmt == id) {
          outgoing.push_back(t.id);
        }
      }
      std::sort(outgoing.begin(), outgoing.end(), [&](int a, int b) {
        return comm_.transfers[static_cast<std::size_t>(a)].dst_core <
               comm_.transfers[static_cast<std::size_t>(b)].dst_core;
      });
      for (int t : outgoing) {
        PlanItem enq;
        enq.kind = PlanItem::Kind::kEnq;
        enq.transfer = t;
        out.push_back(std::move(enq));
      }
    }
    items = std::move(out);
  }

  /// Inserts dequeues in each block at the producer path, per source core
  /// and register class, in producer emission order at the suffix minimum
  /// of first-use positions.
  void InsertDequeues(std::vector<PlanItem>& items, const ControlPath& path) {
    // Recurse into replicated ifs first (deeper producer paths).
    for (PlanItem& item : items) {
      if (item.kind == PlanItem::Kind::kIf) {
        ControlPath then_path = path;
        then_path.push_back(analysis::PathStep{item.stmt->id, true});
        InsertDequeues(item.then_items, then_path);
        ControlPath else_path = path;
        else_path.push_back(analysis::PathStep{item.stmt->id, false});
        InsertDequeues(item.else_items, else_path);
      }
    }
    // Transfers into this core whose producer path is exactly `path`,
    // grouped by (source core, register class).
    struct Incoming {
      int transfer;
      ir::StmtId producer;
      std::size_t first_use;
    };
    std::map<std::pair<int, bool>, std::vector<Incoming>> groups;
    for (const Transfer& t : comm_.transfers) {
      if (t.dst_core != core_ || t.path != path) {
        continue;
      }
      std::size_t first_use = items.size();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (ContainsConsumer(index_.kernel(), items[i], t.temp)) {
          first_use = i;
          break;
        }
      }
      FGPAR_CHECK_MSG(first_use < items.size(),
                      "transfer without a consumer in its placement block");
      const bool is_fp = t.type == ir::ScalarType::kF64;
      groups[{t.src_core, is_fp}].push_back(
          Incoming{t.id, t.producer_stmt, first_use});
    }
    if (groups.empty()) {
      return;
    }
    // Compute insertion positions: producer order with suffix minima.
    std::vector<std::pair<std::size_t, int>> insertions;  // (before index, id)
    for (auto& [key, incoming] : groups) {
      std::sort(incoming.begin(), incoming.end(),
                [](const Incoming& a, const Incoming& b) {
                  return a.producer < b.producer;
                });
      for (std::size_t i = incoming.size(); i-- > 1;) {
        incoming[i - 1].first_use =
            std::min(incoming[i - 1].first_use, incoming[i].first_use);
      }
      for (const Incoming& in : incoming) {
        insertions.emplace_back(in.first_use, in.transfer);
      }
    }
    // Stable order: by position, then by (src, class, producer) — the group
    // iteration above already yields producer order within a group.
    std::stable_sort(insertions.begin(), insertions.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<PlanItem> out;
    std::size_t next = 0;
    for (std::size_t i = 0; i <= items.size(); ++i) {
      while (next < insertions.size() && insertions[next].first == i) {
        PlanItem deq;
        deq.kind = PlanItem::Kind::kDeq;
        deq.transfer = insertions[next].second;
        out.push_back(std::move(deq));
        ++next;
      }
      if (i < items.size()) {
        out.push_back(std::move(items[i]));
      }
    }
    items = std::move(out);
  }

  const KernelIndex& index_;
  const CoreAssignment& partition_;
  const CommPlan& comm_;
  int core_ = -1;
  std::set<ir::StmtId> replicated_;
};

}  // namespace

ProgramPlan BuildProgramPlan(const KernelIndex& index,
                             const CoreAssignment& partition, CommPlan comm) {
  ProgramPlan plan;
  plan.comm = std::move(comm);
  PlanBuilder builder(index, partition, plan.comm);
  for (int c = 0; c < static_cast<int>(partition.partitions.size()); ++c) {
    plan.cores.push_back(builder.Build(c));
  }
  return plan;
}

}  // namespace fgpar::compiler
