#include "compiler/fiber.hpp"
#include "compiler/pass.hpp"

#include <map>
#include <vector>

#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

using ir::ExprId;
using ir::ExprNode;
using ir::Kernel;
using ir::Stmt;

class Fiberizer {
 public:
  explicit Fiberizer(Kernel& kernel) : k_(kernel) {}

  FiberStats Run() {
    RewriteList(k_.mutable_loop().body, /*in_loop=*/true);
    // Epilogue statements run sequentially on the primary core; they are
    // not partitioned and need no fiberization.
    k_.RenumberStmts();
    return stats_;
  }

 private:
  // ---- the Section III-A partitioning algorithm ----

  /// Assigns fiber numbers to the internal nodes of `expr`; returns the
  /// number of fibers created.  fiber_of_ maps internal ExprIds.
  int FormFibers(ExprId expr) {
    fiber_of_.clear();
    next_fiber_ = 0;
    AssignPostOrder(expr);
    return next_fiber_;
  }

  void AssignPostOrder(ExprId id) {
    const ExprNode& node = k_.expr(id);
    if (ir::IsPartitionLeaf(node.kind)) {
      return;  // leaves remain unassigned
    }
    std::vector<int> child_fibers;
    for (int c = 0; c < ir::ChildCount(node); ++c) {
      const ExprId child = node.child[static_cast<std::size_t>(c)];
      AssignPostOrder(child);
      const auto it = fiber_of_.find(child);
      if (it != fiber_of_.end()) {
        child_fibers.push_back(it->second);
      }
    }
    if (child_fibers.empty()) {
      fiber_of_[id] = next_fiber_++;  // rule 1: new fiber
      return;
    }
    bool all_same = true;
    for (int f : child_fibers) {
      all_same &= f == child_fibers.front();
    }
    if (all_same) {
      fiber_of_[id] = child_fibers.front();  // rule 2: continue the fiber
    } else {
      fiber_of_[id] = next_fiber_++;  // rule 3: new fiber
    }
  }

  // ---- materialization ----

  ir::TempId NewTemp(const char* prefix, ir::ScalarType type) {
    const ir::TempId temp = static_cast<ir::TempId>(k_.temps().size());
    k_.mutable_temps().push_back(ir::Temp{
        temp, std::string(prefix) + std::to_string(temp), type, false, 0, 0.0});
    return temp;
  }

  ExprId TempRefOf(ir::TempId temp) {
    return k_.AddExpr(ExprNode{.kind = ir::ExprKind::kTempRef,
                               .type = k_.temp(temp).type,
                               .temp = temp});
  }

  void EmitAssign(std::vector<Stmt>& out, ir::TempId temp, ExprId value, int line) {
    Stmt stmt;
    stmt.id = k_.AllocateStmtId();
    stmt.kind = ir::StmtKind::kAssignTemp;
    stmt.source_line = line;
    stmt.temp = temp;
    stmt.value = value;
    out.push_back(std::move(stmt));
    ++stats_.fiber_statements;
  }

  /// Rebuilds the subtree of `id` that belongs to `fiber`, materializing
  /// any child belonging to a different fiber as a temp reference (emitting
  /// that fiber's statement first).
  ExprId BuildFiberExpr(ExprId id, int fiber, std::vector<Stmt>& out, int line) {
    const ExprNode node = k_.expr(id);  // copy; arena grows below
    if (ir::IsPartitionLeaf(node.kind)) {
      return id;  // leaves travel with the consuming fiber
    }
    const int node_fiber = fiber_of_.at(id);
    if (node_fiber != fiber) {
      return TempRefOf(MaterializeFiber(id, out, line));
    }
    ExprNode clone = node;
    bool changed = false;
    for (int c = 0; c < ir::ChildCount(node); ++c) {
      const ExprId child = node.child[static_cast<std::size_t>(c)];
      const ExprId rebuilt = BuildFiberExpr(child, fiber, out, line);
      changed |= rebuilt != child;
      clone.child[static_cast<std::size_t>(c)] = rebuilt;
    }
    return changed ? k_.AddExpr(clone) : id;
  }

  /// Emits the statement computing the fiber rooted at `id`; returns the
  /// temp holding its value.  Memoized per statement so a fiber is emitted
  /// once even if referenced from several boundary points.
  ir::TempId MaterializeFiber(ExprId root, std::vector<Stmt>& out, int line) {
    const int fiber = fiber_of_.at(root);
    const auto it = fiber_temp_.find(fiber);
    if (it != fiber_temp_.end()) {
      return it->second;
    }
    const ExprId body = BuildFiberExpr(root, fiber, out, line);
    const ir::TempId temp = NewTemp("@fiber", k_.expr(root).type);
    fiber_temp_[fiber] = temp;
    EmitAssign(out, temp, body, line);
    return temp;
  }

  /// Fiberizes one value expression in the context of statement `line`;
  /// emits non-root fiber statements into `out` and returns the rewritten
  /// root expression (which stays in the original statement).
  ExprId FiberizeValue(ExprId value, std::vector<Stmt>& out, int line) {
    const ExprNode& node = k_.expr(value);
    if (ir::IsPartitionLeaf(node.kind)) {
      return value;  // nothing to partition
    }
    const int fibers = FormFibers(value);
    stats_.initial_fibers += fibers;
    fiber_temp_.clear();
    const int root_fiber = fiber_of_.at(value);
    return BuildFiberExpr(value, root_fiber, out, line);
  }

  void RewriteList(std::vector<Stmt>& stmts, bool in_loop) {
    std::vector<Stmt> out;
    out.reserve(stmts.size());
    for (Stmt& stmt : stmts) {
      const int line = stmt.source_line;
      switch (stmt.kind) {
        case ir::StmtKind::kAssignTemp:
          stmt.value = FiberizeValue(stmt.value, out, line);
          out.push_back(std::move(stmt));
          ++stats_.fiber_statements;
          break;
        case ir::StmtKind::kStoreScalar:
        case ir::StmtKind::kStoreArray: {
          // The subscript stays with the store; the stored value becomes a
          // temp so it is forwardable/communicable (Section III-D).
          stmt.value = FiberizeValue(stmt.value, out, line);
          if (k_.expr(stmt.value).kind != ir::ExprKind::kTempRef) {
            const ir::TempId temp = NewTemp("@sv", k_.expr(stmt.value).type);
            EmitAssign(out, temp, stmt.value, line);
            stmt.value = TempRefOf(temp);
          }
          out.push_back(std::move(stmt));
          ++stats_.fiber_statements;
          break;
        }
        case ir::StmtKind::kIf: {
          // Reduce the condition to a bare temp reference so replicated
          // branch structure on every core tests the same communicated
          // value (Section III-E).
          stmt.value = FiberizeValue(stmt.value, out, line);
          if (k_.expr(stmt.value).kind != ir::ExprKind::kTempRef) {
            const ir::TempId temp = NewTemp("@cnd", ir::ScalarType::kI64);
            FGPAR_CHECK(k_.expr(stmt.value).type == ir::ScalarType::kI64);
            EmitAssign(out, temp, stmt.value, line);
            stmt.value = TempRefOf(temp);
          }
          RewriteList(stmt.then_body, in_loop);
          RewriteList(stmt.else_body, in_loop);
          out.push_back(std::move(stmt));
          break;
        }
      }
    }
    stmts = std::move(out);
  }

  Kernel& k_;
  std::map<ExprId, int> fiber_of_;
  std::map<int, ir::TempId> fiber_temp_;
  int next_fiber_ = 0;
  FiberStats stats_;
};

}  // namespace

FiberStats Fiberize(ir::Kernel& kernel) { return Fiberizer(kernel).Run(); }


namespace {

/// Pipeline registration (see pass.hpp / pipeline.cpp).
class FiberizePass final : public Pass {
 public:
  const char* name() const override { return "fiberize"; }
  const char* description() const override {
    return "materialize every fiber as its own statement so partitioning "
           "and communication operate at statement granularity "
           "(Section III-A)";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    const FiberStats stats = Fiberize(state.kernel());
    state.partition.initial_fibers = stats.initial_fibers;
    state.Note("initial_fibers", stats.initial_fibers);
    state.Note("fiber_statements", stats.fiber_statements);
  }
  void CheckInvariants(const CompileState& state) const override {
    // After fiberization every loop-body store value and if condition is a
    // bare temp reference, so all cross-fiber dataflow (including branch
    // conditions, Section III-E) is queue-transferable.
    const ir::Kernel& kernel = state.kernel();
    ir::Kernel::VisitStmts(kernel.loop().body, [&](const ir::Stmt& stmt) {
      if (stmt.kind == ir::StmtKind::kStoreScalar ||
          stmt.kind == ir::StmtKind::kStoreArray ||
          stmt.kind == ir::StmtKind::kIf) {
        FGPAR_CHECK_MSG(
            kernel.expr(stmt.value).kind == ir::ExprKind::kTempRef,
            "statement s" + std::to_string(stmt.id) +
                " kept a compound value/condition through fiberization");
      }
    });
  }
};

}  // namespace

std::unique_ptr<Pass> MakeFiberizePass() {
  return std::make_unique<FiberizePass>();
}

}  // namespace fgpar::compiler
