// The analytical latency-hiding speedup predictor (ROADMAP item 5).
//
// The paper evaluates every candidate partitioning by full simulation
// (Section III-I.1).  This model predicts per-iteration execution time
// from static features alone — the Table III catalog the compiler already
// computes (analysis::ExtractPartitionFeatures): per-partition compute
// cost, queue-op occupancy, cross-partition transfer counts, and cyclic
// inter-partition dependences.  In the spirit of the MLIR latency-hiding
// analysis (PAPERS.md), steady-state time is the max of two bounds:
//
//   * the throughput bound — the bottleneck partition's compute plus its
//     enqueue/dequeue pipeline occupancy (one-way transfers overlap with
//     compute: the consumer dequeues values the producer enqueued several
//     iterations ago, bounded by queue capacity);
//   * the serialization bound — partitions on a dependence cycle cannot
//     pipeline past each other: each iteration pays the cycle members'
//     compute plus a full transfer round trip per intra-cycle channel.
//
// Predicted speedup is the sequential per-iteration cost over that time;
// both sides carry the same per-iteration loop overhead so the ratio
// stays honest for small kernels.  The same math backs two consumers:
//
//   * AnalyticModel — a compiler::CostModel for the select stage
//     (`fgparc --cost-model analytic`), scoring candidates with zero
//     simulation;
//   * PredictKernel — the whole-kernel entry the autotuner and the
//     predictor-vs-simulated cross-validation bench use: run the rewrite
//     front half, merge statically, predict the chosen candidate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/cost.hpp"
#include "analysis/profile.hpp"
#include "compiler/compile.hpp"
#include "compiler/cost_model.hpp"
#include "compiler/graph.hpp"
#include "compiler/merge.hpp"
#include "compiler/options.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace fgpar::model {

/// Calibration constants.  Defaults mirror the simulator's hardware model
/// (sim/config.hpp): queue ops occupy one issue slot, transfers pay the
/// configured latency, and every iteration pays the loop bookkeeping
/// (induction bump + backedge).
struct AnalyticParams {
  double queue_op_cost = 1.0;
  double transfer_latency = 5.0;
  double loop_overhead = 2.0;

  /// Derives the parameters a compile's options imply.
  static AnalyticParams FromOptions(const compiler::CompileOptions& options);

  /// Parameters for execution-granularity costing (StmtOccupancy): the
  /// loop overhead grows to the full bookkeeping an iteration issues —
  /// induction bump, bound compare, taken backedge.
  static AnalyticParams ExecFromOptions(const compiler::CompileOptions& options);
};

struct Prediction {
  double sequential_cost = 0.0;  // per-iteration cycles on one core
  double parallel_cost = 0.0;    // predicted per-iteration cycles, partitioned
  double speedup = 1.0;          // sequential_cost / parallel_cost (overheads in)
  analysis::PartitionFeatures features;
};

/// The shared math: predicts from a feature vector.
Prediction PredictFromFeatures(const analysis::PartitionFeatures& features,
                               const AnalyticParams& params);

/// Builds the analysis-layer node/partition view of one candidate.
analysis::PartitionGraph BuildPartitionGraph(
    const compiler::CodeGraph& graph,
    const std::vector<compiler::MergedPartition>& partitions);

/// Predicts one candidate partitioning of an already-built code graph.
Prediction PredictCandidate(const compiler::CodeGraph& graph,
                            const std::vector<compiler::MergedPartition>& parts,
                            const AnalyticParams& params);

/// Whole-kernel prediction: applies the rewrite front half (split,
/// optional speculation, forwarding, fiberize), builds the code graph with
/// `profile` feedback (null = static L1 latencies), merges statically —
/// exactly the candidate a default (non-tuning) compile selects — and
/// predicts its speedup.  No lowering, no simulation.
Prediction PredictKernel(const ir::Kernel& kernel,
                         const compiler::CompileOptions& options,
                         const analysis::ProfileData* profile);

/// Workload-grounded whole-kernel prediction — the accurate variant the
/// autotuner and the cross-validation bench use.  Picks the identical
/// candidate PredictKernel picks (same rewrite + static merge trained on
/// `merge_profile`, the original-kernel per-symbol profile a compile
/// feeds its heuristics), but costs it at execution granularity:
///
///   * node costs come from analysis::CostModel::StmtOccupancy — issue
///     cycles included — with loads resolved against a fresh per-statement
///     profile of the REWRITTEN kernel, so dead code the pipeline removed
///     does not inflate (or warm the cache for) the parallel side;
///   * the sequential baseline is the original kernel's per-iteration
///     occupancy under its own per-statement profile — dead statements
///     still execute sequentially and must be paid for there.
///
/// `layout`/`params`/`image` describe the prepared workload (the same
/// inputs KernelRunner interprets); layout and params are keyed by symbol
/// id, which every rewrite pass preserves.
Prediction PredictKernelOnWorkload(const ir::Kernel& kernel,
                                   const compiler::CompileOptions& options,
                                   const analysis::ProfileData* merge_profile,
                                   const ir::DataLayout& layout,
                                   const ir::ParamEnv& params,
                                   const std::vector<std::uint64_t>& image,
                                   const sim::CacheConfig& cache);

/// The select-stage cost model: scores each built candidate at its
/// predicted per-iteration parallel cost (lower wins), so multi-version
/// selection runs with zero training simulations.
class AnalyticModel final : public compiler::CostModel {
 public:
  std::string_view name() const override { return "analytic"; }
  compiler::ScoredCandidate Score(
      const compiler::CompileState& state, const isa::Program& program,
      const compiler::ProgramPlan& plan,
      const compiler::CoreAssignment& assignment) const override;
};

}  // namespace fgpar::model
