#include "model/analytic.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "analysis/index.hpp"
#include "compiler/partition.hpp"
#include "support/error.hpp"

namespace fgpar::model {

namespace {

/// Deterministic two-decimal rendering for explanation lines.
std::string Fixed2(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2f", value);
  return buffer;
}

}  // namespace

AnalyticParams AnalyticParams::FromOptions(
    const compiler::CompileOptions& options) {
  AnalyticParams params;
  params.transfer_latency =
      static_cast<double>(options.assumed_transfer_latency);
  const sim::CoreTiming timing{};
  params.queue_op_cost = static_cast<double>(timing.queue_op);
  params.loop_overhead =
      static_cast<double>(timing.int_alu + timing.branch);
  return params;
}

AnalyticParams AnalyticParams::ExecFromOptions(
    const compiler::CompileOptions& options) {
  AnalyticParams params = FromOptions(options);
  const sim::CoreTiming timing{};
  // Induction bump + bound compare + taken backedge, every iteration.
  params.loop_overhead = static_cast<double>(
      2 * timing.int_alu + timing.branch + timing.taken_branch_penalty);
  return params;
}

Prediction PredictFromFeatures(const analysis::PartitionFeatures& features,
                               const AnalyticParams& params) {
  Prediction prediction;
  prediction.features = features;
  prediction.sequential_cost = features.total_cost + params.loop_overhead;
  if (features.partitions <= 1 || features.total_cost <= 0.0) {
    prediction.parallel_cost = prediction.sequential_cost;
    prediction.speedup = 1.0;
    return prediction;
  }
  // Steady-state per-iteration time: the throughput bound (bottleneck
  // partition's compute + queue-op occupancy; one-way transfers overlap
  // across pipelined iterations) or the serialization bound (partitions on
  // a dependence cycle pay their compute plus a round trip every
  // iteration), whichever binds.
  const double steady =
      std::max(features.bottleneck_cost, features.cycle_penalty);
  prediction.parallel_cost = steady + params.loop_overhead;
  prediction.speedup = prediction.sequential_cost / prediction.parallel_cost;
  return prediction;
}

analysis::PartitionGraph BuildPartitionGraph(
    const compiler::CodeGraph& graph,
    const std::vector<compiler::MergedPartition>& partitions) {
  std::map<ir::StmtId, int> part_of;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (ir::StmtId stmt : partitions[p].stmts) {
      part_of[stmt] = static_cast<int>(p);
    }
  }
  analysis::PartitionGraph out;
  out.node_cost.reserve(graph.nodes.size());
  out.node_part.reserve(graph.nodes.size());
  for (const compiler::GraphNode& node : graph.nodes) {
    out.node_cost.push_back(node.cost);
    FGPAR_CHECK_MSG(!node.stmts.empty(), "code-graph node with no statements");
    const auto it = part_of.find(node.stmts.front());
    FGPAR_CHECK_MSG(it != part_of.end(),
                    "code-graph node not covered by the candidate partitioning");
    out.node_part.push_back(it->second);
  }
  for (const compiler::DepEdge& edge : graph.edges) {
    const int u = graph.NodeOf(edge.producer);
    const int v = graph.NodeOf(edge.consumer);
    if (u != v) {
      out.edges.push_back({u, v});
    }
  }
  return out;
}

Prediction PredictCandidate(const compiler::CodeGraph& graph,
                            const std::vector<compiler::MergedPartition>& parts,
                            const AnalyticParams& params) {
  const analysis::PartitionGraph view = BuildPartitionGraph(graph, parts);
  const analysis::PartitionFeatures features = analysis::ExtractPartitionFeatures(
      view, params.transfer_latency, params.queue_op_cost);
  return PredictFromFeatures(features, params);
}

Prediction PredictKernel(const ir::Kernel& kernel,
                         const compiler::CompileOptions& options,
                         const analysis::ProfileData* profile) {
  compiler::PartitionResult rewritten(kernel);
  compiler::ApplyRewritePasses(rewritten, options);
  const analysis::KernelIndex index(rewritten.kernel);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{},
                                 options.use_profile ? profile : nullptr);
  const compiler::CodeGraph graph = compiler::BuildCodeGraph(index, cost);
  const std::vector<compiler::MergedPartition> chosen =
      compiler::MergeGraph(graph, options);
  return PredictCandidate(graph, chosen, AnalyticParams::FromOptions(options));
}

Prediction PredictKernelOnWorkload(const ir::Kernel& kernel,
                                   const compiler::CompileOptions& options,
                                   const analysis::ProfileData* merge_profile,
                                   const ir::DataLayout& layout,
                                   const ir::ParamEnv& params,
                                   const std::vector<std::uint64_t>& image,
                                   const sim::CacheConfig& cache) {
  // The candidate the compile will pick: same rewrite front half, same
  // static merge, trained on the same profile the compiler trains on.
  compiler::PartitionResult rewritten(kernel);
  compiler::ApplyRewritePasses(rewritten, options);
  const analysis::KernelIndex index(rewritten.kernel);
  const sim::CoreTiming timing{};
  const analysis::CostModel merge_cost(
      timing, cache, options.use_profile ? merge_profile : nullptr);
  const compiler::CodeGraph graph = compiler::BuildCodeGraph(index, merge_cost);
  const std::vector<compiler::MergedPartition> chosen =
      compiler::MergeGraph(graph, options);

  // Execution profile at per-statement granularity of the code that
  // actually runs (the rewritten kernel: dead statements are gone on both
  // sides — the sequential pipeline applies the same scalar rewrites).
  const analysis::ProfileData par_profile = analysis::ProfileData::Collect(
      rewritten.kernel, layout, params, image, cache);
  const analysis::CostModel par_cost(timing, cache, &par_profile);

  // Re-cost the graph nodes at execution granularity — frequency-weighted,
  // so rarely-taken conditional arms charge their taken fraction — before
  // extracting the feature vector the steady-state bounds come from.
  analysis::PartitionGraph view = BuildPartitionGraph(graph, chosen);
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    double occupancy = 0.0;
    for (ir::StmtId id : graph.nodes[n].stmts) {
      const ir::Stmt& stmt = *index.ByStmtId(id).stmt;
      occupancy += par_profile.StmtFrequency(id) *
                   par_cost.StmtOccupancy(rewritten.kernel, stmt);
    }
    view.node_cost[n] = occupancy;
  }

  const AnalyticParams exec = AnalyticParams::ExecFromOptions(options);
  const analysis::PartitionFeatures features =
      analysis::ExtractPartitionFeatures(view, exec.transfer_latency,
                                         exec.queue_op_cost);
  Prediction prediction = PredictFromFeatures(features, exec);

  // Sequential baseline: the same live statements on one core, under a
  // speculation-free rewrite (sequential code never executes both arms)
  // with its own execution profile — one cache serving every access.
  compiler::CompileOptions seq_options = options;
  seq_options.speculation = false;
  compiler::PartitionResult seq_rewritten(kernel);
  compiler::ApplyRewritePasses(seq_rewritten, seq_options);
  const analysis::ProfileData seq_profile = analysis::ProfileData::Collect(
      seq_rewritten.kernel, layout, params, image, cache);
  const analysis::CostModel seq_cost(timing, cache, &seq_profile);
  const std::function<double(const std::vector<ir::Stmt>&)> body_occupancy =
      [&](const std::vector<ir::Stmt>& body) {
        double total = 0.0;
        for (const ir::Stmt& stmt : body) {
          total += seq_profile.StmtFrequency(stmt.id) *
                   seq_cost.StmtOccupancy(seq_rewritten.kernel, stmt);
          if (stmt.kind == ir::StmtKind::kIf) {
            total += body_occupancy(stmt.then_body);
            total += body_occupancy(stmt.else_body);
          }
        }
        return total;
      };
  prediction.sequential_cost =
      body_occupancy(seq_rewritten.kernel.loop().body) + exec.loop_overhead;
  if (features.partitions > 1 && prediction.parallel_cost > 0.0) {
    prediction.speedup =
        prediction.sequential_cost / prediction.parallel_cost;
  }
  return prediction;
}

compiler::ScoredCandidate AnalyticModel::Score(
    const compiler::CompileState& state, const isa::Program& program,
    const compiler::ProgramPlan& plan,
    const compiler::CoreAssignment& assignment) const {
  (void)program;
  (void)plan;
  FGPAR_CHECK_MSG(state.graph.has_value(),
                  "analytic cost model requires the graph stage");
  // Rebuild the candidate's partition view from the core assignment (the
  // select stage hands us the assignment, not the MergedPartition list;
  // the mapping is the same statement -> partition function).
  std::vector<compiler::MergedPartition> parts(assignment.partitions.size());
  for (std::size_t p = 0; p < assignment.partitions.size(); ++p) {
    parts[p].stmts = assignment.partitions[p];
  }
  const AnalyticParams params = AnalyticParams::FromOptions(state.options);
  const Prediction prediction =
      PredictCandidate(*state.graph, parts, params);
  compiler::ScoredCandidate scored;
  scored.cost = prediction.parallel_cost;
  scored.detail = "predicted " + Fixed2(prediction.parallel_cost) +
                  " cycles/iter (seq " + Fixed2(prediction.sequential_cost) +
                  ", speedup " + Fixed2(prediction.speedup) + ")";
  const analysis::PartitionFeatures& f = prediction.features;
  scored.features = {
      {"partitions", static_cast<double>(f.partitions)},
      {"total_cost", f.total_cost},
      {"max_part_cost", f.max_part_cost},
      {"balance_ratio", f.balance_ratio},
      {"transfers", static_cast<double>(f.transfers)},
      {"queue_cost_max", f.queue_cost_max},
      {"bottleneck_cost", f.bottleneck_cost},
      {"critical_path", f.critical_path},
      {"scc_partitions", static_cast<double>(f.scc_partitions)},
      {"cycle_penalty", f.cycle_penalty},
      {"predicted_speedup", prediction.speedup},
  };
  return scored;
}

}  // namespace fgpar::model
