#include "sim/hw_queue.hpp"

#include "support/error.hpp"

namespace fgpar::sim {

HardwareQueue::HardwareQueue(int capacity, int transfer_latency)
    : capacity_(capacity), transfer_latency_(transfer_latency) {
  FGPAR_CHECK(capacity > 0);
  FGPAR_CHECK(transfer_latency >= 0);
}

bool HardwareQueue::CanEnqueue() const {
  return static_cast<int>(slots_.size()) < capacity_;
}

void HardwareQueue::Enqueue(std::uint64_t payload, std::uint64_t now) {
  FGPAR_CHECK_MSG(CanEnqueue(), "enqueue into full hardware queue");
  slots_.push_back(Slot{payload, now + static_cast<std::uint64_t>(transfer_latency_)});
  max_occupancy_ = std::max(max_occupancy_, static_cast<int>(slots_.size()));
}

bool HardwareQueue::CanDequeue(std::uint64_t now) const {
  return !slots_.empty() && slots_.front().arrival_cycle <= now;
}

std::uint64_t HardwareQueue::Dequeue(std::uint64_t now) {
  FGPAR_CHECK_MSG(CanDequeue(now), "dequeue from empty/not-yet-arrived queue");
  const std::uint64_t payload = slots_.front().payload;
  slots_.pop_front();
  ++total_transfers_;
  return payload;
}

}  // namespace fgpar::sim
