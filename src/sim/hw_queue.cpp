#include "sim/hw_queue.hpp"

#include <string>

#include "support/error.hpp"

namespace fgpar::sim {

HardwareQueue::HardwareQueue(int capacity, int transfer_latency)
    : capacity_(capacity), transfer_latency_(transfer_latency) {
  FGPAR_CHECK(capacity > 0);
  FGPAR_CHECK(transfer_latency >= 0);
}

bool HardwareQueue::CanEnqueue() const {
  return static_cast<int>(slots_.size()) < capacity_;
}

int HardwareQueue::InFlight(std::uint64_t now) const {
  int in_flight = 0;
  for (const Slot& slot : slots_) {
    if (slot.arrival_cycle > now) {
      ++in_flight;
    }
  }
  return in_flight;
}

void HardwareQueue::Enqueue(std::uint64_t payload, std::uint64_t now) {
  FGPAR_CHECK_MSG(CanEnqueue(),
                  "enqueue into full hardware queue at cycle " +
                      std::to_string(now) + " (capacity " +
                      std::to_string(capacity_) + ", occupancy " +
                      std::to_string(slots_.size()) + ", " +
                      std::to_string(InFlight(now)) + " in flight)");
  int latency = transfer_latency_;
  if (faults_ != nullptr && faults_->enabled()) {
    payload = faults_->PerturbPayload(payload);
    latency = faults_->PerturbTransferLatency(latency);
  }
  slots_.push_back(Slot{payload, now + static_cast<std::uint64_t>(latency)});
  max_occupancy_ = std::max(max_occupancy_, static_cast<int>(slots_.size()));
}

bool HardwareQueue::CanDequeue(std::uint64_t now) const {
  return !slots_.empty() && slots_.front().arrival_cycle <= now;
}

std::uint64_t HardwareQueue::Dequeue(std::uint64_t now) {
  if (slots_.empty()) {
    FGPAR_CHECK_MSG(false, "dequeue from empty hardware queue at cycle " +
                               std::to_string(now));
  }
  FGPAR_CHECK_MSG(slots_.front().arrival_cycle <= now,
                  "dequeue before arrival: head value arrives at cycle " +
                      std::to_string(slots_.front().arrival_cycle) +
                      ", now " + std::to_string(now));
  const std::uint64_t payload = slots_.front().payload;
  slots_.pop_front();
  ++total_transfers_;
  return payload;
}

}  // namespace fgpar::sim
