#include "sim/core.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "isa/disasm.hpp"
#include "support/error.hpp"

namespace fgpar::sim {

using isa::Instruction;
using isa::Opcode;

QueueMatrix::QueueMatrix(int num_cores, const QueueConfig& config)
    : num_cores_(num_cores) {
  FGPAR_CHECK(num_cores >= 1);
  FGPAR_CHECK_MSG(config.transfer_latency >= 1,
                  "transfer latency must be >= 1 cycle for deterministic "
                  "intra-cycle ordering");
  const int n = num_cores * num_cores;
  int_queues_.reserve(static_cast<std::size_t>(n));
  fp_queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    int_queues_.emplace_back(config.capacity, config.transfer_latency);
    fp_queues_.emplace_back(config.capacity, config.transfer_latency);
  }
}

int QueueMatrix::Index(int src, int dst) const {
  FGPAR_CHECK_MSG(src >= 0 && src < num_cores_ && dst >= 0 && dst < num_cores_,
                  "queue core index out of range");
  FGPAR_CHECK_MSG(src != dst, "no self-queue exists");
  return src * num_cores_ + dst;
}

HardwareQueue& QueueMatrix::IntQueue(int src, int dst) {
  return int_queues_[static_cast<std::size_t>(Index(src, dst))];
}

HardwareQueue& QueueMatrix::FpQueue(int src, int dst) {
  return fp_queues_[static_cast<std::size_t>(Index(src, dst))];
}

const HardwareQueue& QueueMatrix::IntQueue(int src, int dst) const {
  return int_queues_[static_cast<std::size_t>(const_cast<QueueMatrix*>(this)->Index(src, dst))];
}

const HardwareQueue& QueueMatrix::FpQueue(int src, int dst) const {
  return fp_queues_[static_cast<std::size_t>(const_cast<QueueMatrix*>(this)->Index(src, dst))];
}

int QueueMatrix::UsedChannelCount() const {
  int used = 0;
  for (int src = 0; src < num_cores_; ++src) {
    for (int dst = 0; dst < num_cores_; ++dst) {
      if (src == dst) {
        continue;
      }
      const std::size_t i = static_cast<std::size_t>(src * num_cores_ + dst);
      if (int_queues_[i].total_transfers() + fp_queues_[i].total_transfers() > 0) {
        ++used;
      }
    }
  }
  return used;
}

int QueueMatrix::MaxOccupancy() const {
  int max_occupancy = 0;
  for (const HardwareQueue& q : int_queues_) {
    max_occupancy = std::max(max_occupancy, q.max_occupancy());
  }
  for (const HardwareQueue& q : fp_queues_) {
    max_occupancy = std::max(max_occupancy, q.max_occupancy());
  }
  return max_occupancy;
}

void QueueMatrix::SetFaultInjector(FaultInjector* faults) {
  for (HardwareQueue& q : int_queues_) {
    q.SetFaultInjector(faults);
  }
  for (HardwareQueue& q : fp_queues_) {
    q.SetFaultInjector(faults);
  }
}

std::uint64_t QueueMatrix::TotalTransfers() const {
  std::uint64_t total = 0;
  for (const HardwareQueue& q : int_queues_) {
    total += q.total_transfers();
  }
  for (const HardwareQueue& q : fp_queues_) {
    total += q.total_transfers();
  }
  return total;
}

Core::Core(int id, const MachineConfig& config, int physical_core)
    : id_(id),
      physical_core_(physical_core < 0 ? id : physical_core),
      config_(config) {}

void Core::Start(std::int64_t pc) {
  started_ = true;
  halted_ = false;
  pc_ = pc;
  stalled_deq_remote_ = -1;
  stalled_enq_remote_ = -1;
  stalled_enq_injected_ = false;
}

bool Core::stalled_on_deq(int& remote, bool& is_fp) const {
  if (stalled_deq_remote_ < 0) {
    return false;
  }
  remote = stalled_deq_remote_;
  is_fp = stalled_deq_fp_;
  return true;
}

bool Core::stalled_on_enq(int& remote, bool& is_fp) const {
  if (stalled_enq_remote_ < 0) {
    return false;
  }
  remote = stalled_enq_remote_;
  is_fp = stalled_enq_fp_;
  return true;
}

std::int64_t Core::gpr(int index) const {
  FGPAR_CHECK(index >= 0 && index < isa::kNumGpr);
  return gpr_[static_cast<std::size_t>(index)];
}

double Core::fpr(int index) const {
  FGPAR_CHECK(index >= 0 && index < isa::kNumFpr);
  return fpr_[static_cast<std::size_t>(index)];
}

void Core::set_gpr(int index, std::int64_t value) {
  FGPAR_CHECK(index >= 0 && index < isa::kNumGpr);
  gpr_[static_cast<std::size_t>(index)] = value;
}

void Core::set_fpr(int index, double value) {
  FGPAR_CHECK(index >= 0 && index < isa::kNumFpr);
  fpr_[static_cast<std::size_t>(index)] = value;
}

std::uint64_t Core::SourcesReadyAt(const Instruction& instr) const {
  std::uint64_t ready = 0;
  auto gready = [&](std::uint8_t r) { ready = std::max(ready, gpr_ready_[r]); };
  auto fready = [&](std::uint8_t r) { ready = std::max(ready, fpr_ready_[r]); };
  switch (instr.op) {
    // int dst, gpr sources a and b
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI: case Opcode::kDivI:
    case Opcode::kRemI: case Opcode::kAndI: case Opcode::kOrI: case Opcode::kXorI:
    case Opcode::kShlI: case Opcode::kShrI: case Opcode::kMinI: case Opcode::kMaxI:
    case Opcode::kCeqI: case Opcode::kCneI: case Opcode::kCltI: case Opcode::kCleI:
      gready(instr.src1);
      gready(instr.src2);
      break;
    case Opcode::kMovI:
      gready(instr.src1);
      break;
    case Opcode::kLiI: case Opcode::kLiF: case Opcode::kJmp: case Opcode::kCall:
    case Opcode::kRet: case Opcode::kHalt: case Opcode::kNop:
      break;
    case Opcode::kAddF: case Opcode::kSubF: case Opcode::kMulF: case Opcode::kDivF:
    case Opcode::kMinF: case Opcode::kMaxF: case Opcode::kCeqF: case Opcode::kCltF:
    case Opcode::kCleF:
      fready(instr.src1);
      fready(instr.src2);
      break;
    case Opcode::kFmaF:
      fready(instr.src1);
      fready(instr.src2);
      fready(instr.dst);  // accumulator is read-modify-write
      break;
    case Opcode::kNegF: case Opcode::kAbsF: case Opcode::kSqrtF: case Opcode::kMovF:
      fready(instr.src1);
      break;
    case Opcode::kItoF:
      gready(instr.src1);
      break;
    case Opcode::kFtoI:
      fready(instr.src1);
      break;
    case Opcode::kLdI: case Opcode::kLdF:
      gready(instr.src1);
      break;
    case Opcode::kLdIX: case Opcode::kLdFX:
      gready(instr.src1);
      gready(instr.src2);
      break;
    case Opcode::kStI:
      gready(instr.src1);
      gready(instr.dst);  // value register
      break;
    case Opcode::kStIX:
      gready(instr.src1);
      gready(instr.src2);
      gready(instr.dst);
      break;
    case Opcode::kStF:
      gready(instr.src1);
      fready(instr.dst);
      break;
    case Opcode::kStFX:
      gready(instr.src1);
      gready(instr.src2);
      fready(instr.dst);
      break;
    case Opcode::kBz: case Opcode::kBnz: case Opcode::kCallR:
      gready(instr.src1);
      break;
    case Opcode::kEnqI:
      gready(instr.src1);
      break;
    case Opcode::kEnqF:
      fready(instr.src1);
      break;
    case Opcode::kDeqI: case Opcode::kDeqF:
      break;
  }
  return ready;
}

StepOutcome Core::Step(std::uint64_t now, const isa::Program& program,
                       MemorySystem& memory, QueueMatrix& queues,
                       FaultInjector* faults) {
  stalled_deq_remote_ = -1;
  stalled_enq_remote_ = -1;
  stalled_enq_injected_ = false;
  if (!started_) {
    return StepOutcome::kIdle;
  }
  if (halted_) {
    return StepOutcome::kHalted;
  }
  if (next_issue_ > now) {
    return StepOutcome::kPipelineBusy;
  }
  const Instruction& instr = program.at(pc_);

  // Register scoreboard: wait for source operands.  The wait depends only
  // on this core's own state, so it is safe to fast-forward the issue stage
  // to the ready cycle.
  const std::uint64_t ready = SourcesReadyAt(instr);
  if (ready > now) {
    stats_.stall_raw += ready - now;
    next_issue_ = ready;
    return StepOutcome::kPipelineBusy;
  }

  // Queue readiness must be evaluated cycle-by-cycle, because it depends on
  // other cores.
  if (isa::IsEnqueue(instr.op)) {
    HardwareQueue& q = isa::IsFpQueueOp(instr.op)
                           ? queues.FpQueue(id_, instr.queue)
                           : queues.IntQueue(id_, instr.queue);
    if (!q.CanEnqueue()) {
      stalled_enq_remote_ = instr.queue;
      stalled_enq_fp_ = isa::IsFpQueueOp(instr.op);
      return StepOutcome::kStallEnqFull;
    }
    if (faults != nullptr && faults->enabled() && faults->RejectEnqueue()) {
      // Transient flow-control fault: stall exactly like a full queue, but
      // flag it so the machine schedules a retry next cycle (the queue has
      // space; no peer needs to make progress first).
      stalled_enq_remote_ = instr.queue;
      stalled_enq_fp_ = isa::IsFpQueueOp(instr.op);
      stalled_enq_injected_ = true;
      return StepOutcome::kStallEnqFull;
    }
  } else if (isa::IsDequeue(instr.op)) {
    HardwareQueue& q = isa::IsFpQueueOp(instr.op)
                           ? queues.FpQueue(instr.queue, id_)
                           : queues.IntQueue(instr.queue, id_);
    if (!q.CanDequeue(now)) {
      stalled_deq_remote_ = instr.queue;
      stalled_deq_fp_ = isa::IsFpQueueOp(instr.op);
      return StepOutcome::kStallDeqEmpty;
    }
  }

  Execute(now, instr, memory, queues);
  ++stats_.instructions;
  return StepOutcome::kIssued;
}

void Core::Execute(std::uint64_t now, const Instruction& instr, MemorySystem& memory,
                   QueueMatrix& queues) {
  const CoreTiming& t = config_.timing;
  const int lat = isa::IsLoad(instr.op) || isa::IsStore(instr.op)
                      ? 0  // determined inside ExecuteImpl
                      : ResultLatency(t, instr.op);
  const std::uint64_t unpipelined_busy =
      IsUnpipelined(instr.op)
          ? static_cast<std::uint64_t>(ResultLatency(t, instr.op))
          : 0;
  ExecuteImpl(now, instr, lat, unpipelined_busy,
              1 + static_cast<std::uint64_t>(t.taken_branch_penalty), memory,
              queues);
}

template <typename InstrT>
void Core::ExecuteImpl(std::uint64_t now, const InstrT& instr,
                       int result_latency, std::uint64_t unpipelined_busy,
                       std::uint64_t taken_branch_busy, MemorySystem& memory,
                       QueueMatrix& queues) {
  const CoreTiming& t = config_.timing;
  std::int64_t next_pc = pc_ + 1;
  std::uint64_t issue_busy = 1;  // default: fully pipelined, 1 instr/cycle
  bool taken_branch = false;

  auto set_g = [&](std::uint8_t r, std::int64_t v, int latency) {
    gpr_[r] = v;
    gpr_ready_[r] = now + static_cast<std::uint64_t>(latency);
  };
  auto set_f = [&](std::uint8_t r, double v, int latency) {
    fpr_[r] = v;
    fpr_ready_[r] = now + static_cast<std::uint64_t>(latency);
  };
  auto g = [&](std::uint8_t r) { return gpr_[r]; };
  auto f = [&](std::uint8_t r) { return fpr_[r]; };
  const int lat = result_latency;

  // Integer add/sub/mul wrap (two's complement), like the modeled hardware;
  // computing through uint64 keeps the wrap defined in C++.
  auto wrap = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  auto u = [&g](std::uint8_t r) { return static_cast<std::uint64_t>(g(r)); };

  switch (instr.op) {
    case Opcode::kAddI:
      set_g(instr.dst, wrap(u(instr.src1) + u(instr.src2)), lat);
      break;
    case Opcode::kSubI:
      set_g(instr.dst, wrap(u(instr.src1) - u(instr.src2)), lat);
      break;
    case Opcode::kMulI:
      set_g(instr.dst, wrap(u(instr.src1) * u(instr.src2)), lat);
      break;
    case Opcode::kDivI:
      FGPAR_CHECK_MSG(g(instr.src2) != 0, "integer divide by zero");
      FGPAR_CHECK_MSG(g(instr.src1) != INT64_MIN || g(instr.src2) != -1,
                      "integer divide overflow");
      set_g(instr.dst, g(instr.src1) / g(instr.src2), lat);
      break;
    case Opcode::kRemI:
      FGPAR_CHECK_MSG(g(instr.src2) != 0, "integer remainder by zero");
      FGPAR_CHECK_MSG(g(instr.src1) != INT64_MIN || g(instr.src2) != -1,
                      "integer remainder overflow");
      set_g(instr.dst, g(instr.src1) % g(instr.src2), lat);
      break;
    case Opcode::kAndI: set_g(instr.dst, g(instr.src1) & g(instr.src2), lat); break;
    case Opcode::kOrI: set_g(instr.dst, g(instr.src1) | g(instr.src2), lat); break;
    case Opcode::kXorI: set_g(instr.dst, g(instr.src1) ^ g(instr.src2), lat); break;
    case Opcode::kShlI:
      set_g(instr.dst,
            static_cast<std::int64_t>(static_cast<std::uint64_t>(g(instr.src1))
                                      << (g(instr.src2) & 63)),
            lat);
      break;
    case Opcode::kShrI: set_g(instr.dst, g(instr.src1) >> (g(instr.src2) & 63), lat); break;
    case Opcode::kMinI: set_g(instr.dst, std::min(g(instr.src1), g(instr.src2)), lat); break;
    case Opcode::kMaxI: set_g(instr.dst, std::max(g(instr.src1), g(instr.src2)), lat); break;
    case Opcode::kLiI: set_g(instr.dst, instr.imm, lat); break;
    case Opcode::kMovI: set_g(instr.dst, g(instr.src1), lat); break;
    case Opcode::kCeqI: set_g(instr.dst, g(instr.src1) == g(instr.src2) ? 1 : 0, lat); break;
    case Opcode::kCneI: set_g(instr.dst, g(instr.src1) != g(instr.src2) ? 1 : 0, lat); break;
    case Opcode::kCltI: set_g(instr.dst, g(instr.src1) < g(instr.src2) ? 1 : 0, lat); break;
    case Opcode::kCleI: set_g(instr.dst, g(instr.src1) <= g(instr.src2) ? 1 : 0, lat); break;

    case Opcode::kAddF: set_f(instr.dst, f(instr.src1) + f(instr.src2), lat); break;
    case Opcode::kSubF: set_f(instr.dst, f(instr.src1) - f(instr.src2), lat); break;
    case Opcode::kMulF: set_f(instr.dst, f(instr.src1) * f(instr.src2), lat); break;
    case Opcode::kDivF: set_f(instr.dst, f(instr.src1) / f(instr.src2), lat); break;
    case Opcode::kNegF: set_f(instr.dst, -f(instr.src1), lat); break;
    case Opcode::kAbsF: set_f(instr.dst, std::fabs(f(instr.src1)), lat); break;
    case Opcode::kSqrtF: set_f(instr.dst, std::sqrt(f(instr.src1)), lat); break;
    case Opcode::kMinF: set_f(instr.dst, std::fmin(f(instr.src1), f(instr.src2)), lat); break;
    case Opcode::kMaxF: set_f(instr.dst, std::fmax(f(instr.src1), f(instr.src2)), lat); break;
    case Opcode::kFmaF:
      set_f(instr.dst, f(instr.src1) * f(instr.src2) + f(instr.dst), lat);
      break;
    case Opcode::kLiF: set_f(instr.dst, instr.fimm, lat); break;
    case Opcode::kMovF: set_f(instr.dst, f(instr.src1), lat); break;
    case Opcode::kItoF: set_f(instr.dst, static_cast<double>(g(instr.src1)), lat); break;
    case Opcode::kFtoI: set_g(instr.dst, static_cast<std::int64_t>(f(instr.src1)), lat); break;
    case Opcode::kCeqF: set_g(instr.dst, f(instr.src1) == f(instr.src2) ? 1 : 0, lat); break;
    case Opcode::kCltF: set_g(instr.dst, f(instr.src1) < f(instr.src2) ? 1 : 0, lat); break;
    case Opcode::kCleF: set_g(instr.dst, f(instr.src1) <= f(instr.src2) ? 1 : 0, lat); break;

    case Opcode::kLdI: case Opcode::kLdIX: case Opcode::kLdF: case Opcode::kLdFX: {
      const std::int64_t offset =
          (instr.op == Opcode::kLdIX || instr.op == Opcode::kLdFX) ? g(instr.src2)
                                                                   : instr.imm;
      const std::uint64_t addr = static_cast<std::uint64_t>(g(instr.src1) + offset);
      const int mem_lat = memory.AccessTimed(physical_core_, addr, /*is_write=*/false);
      if (instr.op == Opcode::kLdI || instr.op == Opcode::kLdIX) {
        set_g(instr.dst, memory.ReadI64(addr), mem_lat);
      } else {
        set_f(instr.dst, memory.ReadF64(addr), mem_lat);
      }
      ++stats_.loads;
      break;
    }
    case Opcode::kStI: case Opcode::kStIX: case Opcode::kStF: case Opcode::kStFX: {
      const std::int64_t offset =
          (instr.op == Opcode::kStIX || instr.op == Opcode::kStFX) ? g(instr.src2)
                                                                   : instr.imm;
      const std::uint64_t addr = static_cast<std::uint64_t>(g(instr.src1) + offset);
      // Stores retire through a store buffer: they update cache state but do
      // not stall the pipeline beyond their issue cycle.
      memory.AccessTimed(physical_core_, addr, /*is_write=*/true);
      if (instr.op == Opcode::kStI || instr.op == Opcode::kStIX) {
        memory.WriteI64(addr, g(instr.dst));
      } else {
        memory.WriteF64(addr, f(instr.dst));
      }
      ++stats_.stores;
      break;
    }

    case Opcode::kJmp:
      next_pc = instr.imm;
      taken_branch = true;
      break;
    case Opcode::kBz:
      if (g(instr.src1) == 0) {
        next_pc = instr.imm;
        taken_branch = true;
      }
      break;
    case Opcode::kBnz:
      if (g(instr.src1) != 0) {
        next_pc = instr.imm;
        taken_branch = true;
      }
      break;
    case Opcode::kCall:
      FGPAR_CHECK_MSG(static_cast<int>(call_stack_.size()) < config_.call_stack_limit,
                      "call stack overflow");
      call_stack_.push_back(pc_ + 1);
      next_pc = instr.imm;
      taken_branch = true;
      break;
    case Opcode::kCallR:
      FGPAR_CHECK_MSG(static_cast<int>(call_stack_.size()) < config_.call_stack_limit,
                      "call stack overflow");
      call_stack_.push_back(pc_ + 1);
      next_pc = g(instr.src1);
      taken_branch = true;
      break;
    case Opcode::kRet:
      FGPAR_CHECK_MSG(!call_stack_.empty(), "return with empty call stack");
      next_pc = call_stack_.back();
      call_stack_.pop_back();
      taken_branch = true;
      break;
    case Opcode::kHalt:
      halted_ = true;
      break;
    case Opcode::kNop:
      break;

    case Opcode::kEnqI: {
      queues.IntQueue(id_, instr.queue)
          .Enqueue(static_cast<std::uint64_t>(g(instr.src1)), now);
      ++stats_.enqueues;
      break;
    }
    case Opcode::kEnqF: {
      queues.FpQueue(id_, instr.queue)
          .Enqueue(std::bit_cast<std::uint64_t>(f(instr.src1)), now);
      ++stats_.enqueues;
      break;
    }
    case Opcode::kDeqI: {
      const std::uint64_t payload = queues.IntQueue(instr.queue, id_).Dequeue(now);
      set_g(instr.dst, static_cast<std::int64_t>(payload), t.queue_op);
      ++stats_.dequeues;
      break;
    }
    case Opcode::kDeqF: {
      const std::uint64_t payload = queues.FpQueue(instr.queue, id_).Dequeue(now);
      set_f(instr.dst, std::bit_cast<double>(payload), t.queue_op);
      ++stats_.dequeues;
      break;
    }
  }

  if (unpipelined_busy != 0) {
    issue_busy = unpipelined_busy;
  } else if (taken_branch) {
    issue_busy = taken_branch_busy;
  }
  next_issue_ = now + issue_busy;
  pc_ = next_pc;
}

StepOutcome Core::StepFast(std::uint64_t now, const DecodedProgram& program,
                           MemorySystem& memory, QueueMatrix& queues) {
  stalled_deq_remote_ = -1;
  stalled_enq_remote_ = -1;
  stalled_enq_injected_ = false;
  const DecodedInstruction& di = program.at(pc_);

  // Register scoreboard over the predecoded source lists.
  std::uint64_t ready = 0;
  for (int i = 0; i < di.num_gpr_srcs; ++i) {
    ready = std::max(ready, gpr_ready_[di.gpr_srcs[i]]);
  }
  for (int i = 0; i < di.num_fpr_srcs; ++i) {
    ready = std::max(ready, fpr_ready_[di.fpr_srcs[i]]);
  }
  if (ready > now) {
    stats_.stall_raw += ready - now;
    next_issue_ = ready;
    return StepOutcome::kPipelineBusy;
  }

  if (di.is_enqueue) {
    HardwareQueue& q = di.is_fp_queue ? queues.FpQueue(id_, di.queue)
                                      : queues.IntQueue(id_, di.queue);
    if (!q.CanEnqueue()) {
      stalled_enq_remote_ = di.queue;
      stalled_enq_fp_ = di.is_fp_queue;
      return StepOutcome::kStallEnqFull;
    }
  } else if (di.is_dequeue) {
    HardwareQueue& q = di.is_fp_queue ? queues.FpQueue(di.queue, id_)
                                      : queues.IntQueue(di.queue, id_);
    if (!q.CanDequeue(now)) {
      stalled_deq_remote_ = di.queue;
      stalled_deq_fp_ = di.is_fp_queue;
      return StepOutcome::kStallDeqEmpty;
    }
  }

  ExecuteImpl(now, di, di.result_latency,
              static_cast<std::uint64_t>(di.unpipelined_busy),
              program.taken_branch_busy(), memory, queues);
  ++stats_.instructions;
  return StepOutcome::kIssued;
}

std::string Core::Describe(const isa::Program& program) const {
  std::ostringstream os;
  os << "core " << id_ << ": ";
  if (!started_) {
    os << "idle";
  } else if (halted_) {
    os << "halted";
  } else {
    os << "pc=" << pc_ << " [" << isa::Disassemble(program.at(pc_)) << "]";
    if (!program.CommentAt(pc_).empty()) {
      os << " ; " << program.CommentAt(pc_);
    }
  }
  return os.str();
}

}  // namespace fgpar::sim
