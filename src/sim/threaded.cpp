// Direct-threaded trace executor and block translator.
//
// The executor is one function containing a label per TraceOpKind; each
// handler ends by jumping straight to the next slot's pre-resolved label
// address (GNU computed goto), so dispatch is a single indirect branch per
// simulated instruction.  On toolchains without the labels-as-values
// extension the same handler bodies are reached through a dense switch —
// semantics are identical, only dispatch cost differs.
//
// Per-op timing replicates Core::StepFast exactly, folded into locals:
//
//   t = max(now, next_issue)                  // issue-stage fast-forward
//   ready = max(scoreboard[sources])          // RAW wait
//   if (max(t, ready) >= limit) exit          // conservative boundary guard
//   if (ready > t) { stall_raw += ready - t; t = ready; }
//   ... execute at t; dst_ready = t + latency ...
//   next_issue = t + busy; now = t + 1
//
// The boundary guard is what keeps every edge case bit-identical: `limit`
// is min(stop_at, max_cycles), and an op that *might* cross it is not
// executed in the trace at all — the trace exits with the pre-op machine
// state, which by construction equals a RunFastSingle loop boundary, and
// the interpreter re-runs the op with the reference ordering of pause
// checks, max_cycles checks, and divide traps.  Divide ops reuse the same
// exit for their trap conditions, so the interpreter's FGPAR_CHECK raises
// the identical error from the identical state.

#include "sim/threaded.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "isa/opcode.hpp"
#include "sim/core.hpp"
#include "support/error.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FGPAR_THREADED_CGOTO 1
#else
#define FGPAR_THREADED_CGOTO 0
#endif

namespace fgpar::sim {

using isa::Opcode;

ThreadedStats& ThreadedStats::operator+=(const ThreadedStats& o) {
  blocks_translated += o.blocks_translated;
  traces += o.traces;
  trace_enters += o.trace_enters;
  trace_exits += o.trace_exits;
  threaded_instructions += o.threaded_instructions;
  deopt_memory += o.deopt_memory;
  deopt_queue += o.deopt_queue;
  deopt_call_ret += o.deopt_call_ret;
  deopt_cap += o.deopt_cap;
  deopt_end += o.deopt_end;
  deopt_boundary += o.deopt_boundary;
  deopt_multi_core += o.deopt_multi_core;
  return *this;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

#if FGPAR_THREADED_CGOTO
#define FGPAR_T_DISPATCH() goto* op->handler
#else
#define FGPAR_T_DISPATCH() goto dispatch_loop
#endif

// Issue-stage + scoreboard prologue shared by every executing handler.
// READY is the max ready-cycle over the op's sources (resolved statically
// per handler, so no source-list loop survives into the trace).
#define FGPAR_T_ISSUE(READY)                            \
  t = t_now > nxt ? t_now : nxt;                        \
  {                                                     \
    const std::uint64_t ready_ = (READY);               \
    const std::uint64_t eff_ = ready_ > t ? ready_ : t; \
    if (eff_ >= limit) goto exit_boundary;              \
    if (ready_ > t) {                                   \
      stall += ready_ - t;                              \
      t = ready_;                                       \
    }                                                   \
  }

#define FGPAR_T_RETIRE(BUSY)                  \
  nxt = t + static_cast<std::uint64_t>(BUSY); \
  t_now = t + 1;                              \
  ++executed;                                 \
  ++op;                                       \
  FGPAR_T_DISPATCH()

#define FGPAR_T_SET_G(EXPR)    \
  gpr[op->dst] = (EXPR);       \
  gready[op->dst] = t + static_cast<std::uint64_t>(op->latency)

#define FGPAR_T_SET_F(EXPR)    \
  fpr[op->dst] = (EXPR);       \
  fready[op->dst] = t + static_cast<std::uint64_t>(op->latency)

// Source-ready expressions by operand shape.
#define FGPAR_T_R0 (std::uint64_t{0})
#define FGPAR_T_RG1 (gready[op->src1])
#define FGPAR_T_RG2 (std::max(gready[op->src1], gready[op->src2]))
#define FGPAR_T_RF1 (fready[op->src1])
#define FGPAR_T_RF2 (std::max(fready[op->src1], fready[op->src2]))
#define FGPAR_T_RF3 \
  (std::max(fready[op->dst], std::max(fready[op->src1], fready[op->src2])))

TraceRun ThreadedExec::Run(Core& core, ThreadedTrace& trace, std::uint64_t& now,
                           std::uint64_t limit, std::uint64_t& last_issue,
                           ThreadedStats& stats) {
#if FGPAR_THREADED_CGOTO
  // One label address per TraceOpKind, in enum order.
  static const void* const kHandlers[kNumTraceOpKinds] = {
      &&t_AddI, &&t_SubI, &&t_MulI, &&t_DivI, &&t_RemI, &&t_AndI, &&t_OrI,
      &&t_XorI, &&t_ShlI, &&t_ShrI, &&t_MinI, &&t_MaxI, &&t_LiI,  &&t_MovI,
      &&t_CeqI, &&t_CneI, &&t_CltI, &&t_CleI, &&t_AddF, &&t_SubF, &&t_MulF,
      &&t_DivF, &&t_NegF, &&t_AbsF, &&t_SqrtF, &&t_MinF, &&t_MaxF, &&t_FmaF,
      &&t_LiF,  &&t_MovF, &&t_ItoF, &&t_FtoI, &&t_CeqF, &&t_CltF, &&t_CleF,
      &&t_Nop,  &&t_Jmp,  &&t_Bz,   &&t_Bnz,  &&t_Halt, &&t_Exit,
  };
  if (!trace.resolved) {
    for (TraceOp& o : trace.ops) {
      o.handler = kHandlers[static_cast<int>(o.kind)];
    }
    trace.resolved = true;
  }
#endif

  std::int64_t* const gpr = core.gpr_.data();
  double* const fpr = core.fpr_.data();
  std::uint64_t* const gready = core.gpr_ready_.data();
  std::uint64_t* const fready = core.fpr_ready_.data();
  const TraceOp* const base = trace.ops.data();
  const std::int64_t head_pc = trace.head_pc;
  const TraceOp* op = base;
  std::uint64_t nxt = core.next_issue_;
  std::uint64_t t_now = now;
  std::uint64_t t = 0;
  std::uint64_t stall = 0;
  std::uint64_t executed = 0;
  TraceRun result;

  FGPAR_T_DISPATCH();

#if !FGPAR_THREADED_CGOTO
dispatch_loop:
  switch (op->kind) {
    case TraceOpKind::kAddI: goto t_AddI;
    case TraceOpKind::kSubI: goto t_SubI;
    case TraceOpKind::kMulI: goto t_MulI;
    case TraceOpKind::kDivI: goto t_DivI;
    case TraceOpKind::kRemI: goto t_RemI;
    case TraceOpKind::kAndI: goto t_AndI;
    case TraceOpKind::kOrI: goto t_OrI;
    case TraceOpKind::kXorI: goto t_XorI;
    case TraceOpKind::kShlI: goto t_ShlI;
    case TraceOpKind::kShrI: goto t_ShrI;
    case TraceOpKind::kMinI: goto t_MinI;
    case TraceOpKind::kMaxI: goto t_MaxI;
    case TraceOpKind::kLiI: goto t_LiI;
    case TraceOpKind::kMovI: goto t_MovI;
    case TraceOpKind::kCeqI: goto t_CeqI;
    case TraceOpKind::kCneI: goto t_CneI;
    case TraceOpKind::kCltI: goto t_CltI;
    case TraceOpKind::kCleI: goto t_CleI;
    case TraceOpKind::kAddF: goto t_AddF;
    case TraceOpKind::kSubF: goto t_SubF;
    case TraceOpKind::kMulF: goto t_MulF;
    case TraceOpKind::kDivF: goto t_DivF;
    case TraceOpKind::kNegF: goto t_NegF;
    case TraceOpKind::kAbsF: goto t_AbsF;
    case TraceOpKind::kSqrtF: goto t_SqrtF;
    case TraceOpKind::kMinF: goto t_MinF;
    case TraceOpKind::kMaxF: goto t_MaxF;
    case TraceOpKind::kFmaF: goto t_FmaF;
    case TraceOpKind::kLiF: goto t_LiF;
    case TraceOpKind::kMovF: goto t_MovF;
    case TraceOpKind::kItoF: goto t_ItoF;
    case TraceOpKind::kFtoI: goto t_FtoI;
    case TraceOpKind::kCeqF: goto t_CeqF;
    case TraceOpKind::kCltF: goto t_CltF;
    case TraceOpKind::kCleF: goto t_CleF;
    case TraceOpKind::kNop: goto t_Nop;
    case TraceOpKind::kJmp: goto t_Jmp;
    case TraceOpKind::kBz: goto t_Bz;
    case TraceOpKind::kBnz: goto t_Bnz;
    case TraceOpKind::kHalt: goto t_Halt;
    case TraceOpKind::kExit: goto t_Exit;
  }
  FGPAR_UNREACHABLE("bad TraceOpKind");
#endif

  // ---- integer ALU (wrap semantics via uint64, like Core::ExecuteImpl) ----
t_AddI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(static_cast<std::int64_t>(static_cast<std::uint64_t>(gpr[op->src1]) +
                                          static_cast<std::uint64_t>(gpr[op->src2])));
  FGPAR_T_RETIRE(1);
t_SubI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(static_cast<std::int64_t>(static_cast<std::uint64_t>(gpr[op->src1]) -
                                          static_cast<std::uint64_t>(gpr[op->src2])));
  FGPAR_T_RETIRE(1);
t_MulI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(static_cast<std::int64_t>(static_cast<std::uint64_t>(gpr[op->src1]) *
                                          static_cast<std::uint64_t>(gpr[op->src2])));
  FGPAR_T_RETIRE(1);
t_DivI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  // Trap conditions deopt pre-op: the interpreter re-executes and raises
  // the reference FGPAR_CHECK error from the identical machine state.
  if (gpr[op->src2] == 0 ||
      (gpr[op->src1] == INT64_MIN && gpr[op->src2] == -1)) {
    goto exit_boundary;
  }
  FGPAR_T_SET_G(gpr[op->src1] / gpr[op->src2]);
  FGPAR_T_RETIRE(op->busy);
t_RemI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  if (gpr[op->src2] == 0 ||
      (gpr[op->src1] == INT64_MIN && gpr[op->src2] == -1)) {
    goto exit_boundary;
  }
  FGPAR_T_SET_G(gpr[op->src1] % gpr[op->src2]);
  FGPAR_T_RETIRE(op->busy);
t_AndI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] & gpr[op->src2]);
  FGPAR_T_RETIRE(1);
t_OrI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] | gpr[op->src2]);
  FGPAR_T_RETIRE(1);
t_XorI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] ^ gpr[op->src2]);
  FGPAR_T_RETIRE(1);
t_ShlI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(gpr[op->src1]) << (gpr[op->src2] & 63)));
  FGPAR_T_RETIRE(1);
t_ShrI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] >> (gpr[op->src2] & 63));
  FGPAR_T_RETIRE(1);
t_MinI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(std::min(gpr[op->src1], gpr[op->src2]));
  FGPAR_T_RETIRE(1);
t_MaxI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(std::max(gpr[op->src1], gpr[op->src2]));
  FGPAR_T_RETIRE(1);
t_LiI:
  FGPAR_T_ISSUE(FGPAR_T_R0);
  FGPAR_T_SET_G(op->imm);
  FGPAR_T_RETIRE(1);
t_MovI:
  FGPAR_T_ISSUE(FGPAR_T_RG1);
  FGPAR_T_SET_G(gpr[op->src1]);
  FGPAR_T_RETIRE(1);
t_CeqI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] == gpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);
t_CneI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] != gpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);
t_CltI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] < gpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);
t_CleI:
  FGPAR_T_ISSUE(FGPAR_T_RG2);
  FGPAR_T_SET_G(gpr[op->src1] <= gpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);

  // ---- floating point ----
t_AddF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_F(fpr[op->src1] + fpr[op->src2]);
  FGPAR_T_RETIRE(1);
t_SubF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_F(fpr[op->src1] - fpr[op->src2]);
  FGPAR_T_RETIRE(1);
t_MulF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_F(fpr[op->src1] * fpr[op->src2]);
  FGPAR_T_RETIRE(1);
t_DivF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_F(fpr[op->src1] / fpr[op->src2]);
  FGPAR_T_RETIRE(op->busy);
t_NegF:
  FGPAR_T_ISSUE(FGPAR_T_RF1);
  FGPAR_T_SET_F(-fpr[op->src1]);
  FGPAR_T_RETIRE(1);
t_AbsF:
  FGPAR_T_ISSUE(FGPAR_T_RF1);
  FGPAR_T_SET_F(std::fabs(fpr[op->src1]));
  FGPAR_T_RETIRE(1);
t_SqrtF:
  FGPAR_T_ISSUE(FGPAR_T_RF1);
  FGPAR_T_SET_F(std::sqrt(fpr[op->src1]));
  FGPAR_T_RETIRE(op->busy);
t_MinF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_F(std::fmin(fpr[op->src1], fpr[op->src2]));
  FGPAR_T_RETIRE(1);
t_MaxF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_F(std::fmax(fpr[op->src1], fpr[op->src2]));
  FGPAR_T_RETIRE(1);
t_FmaF:
  FGPAR_T_ISSUE(FGPAR_T_RF3);  // accumulator is read-modify-write
  FGPAR_T_SET_F(fpr[op->src1] * fpr[op->src2] + fpr[op->dst]);
  FGPAR_T_RETIRE(1);
t_LiF:
  FGPAR_T_ISSUE(FGPAR_T_R0);
  FGPAR_T_SET_F(op->fimm);
  FGPAR_T_RETIRE(1);
t_MovF:
  FGPAR_T_ISSUE(FGPAR_T_RF1);
  FGPAR_T_SET_F(fpr[op->src1]);
  FGPAR_T_RETIRE(1);
t_ItoF:
  FGPAR_T_ISSUE(FGPAR_T_RG1);
  FGPAR_T_SET_F(static_cast<double>(gpr[op->src1]));
  FGPAR_T_RETIRE(1);
t_FtoI:
  FGPAR_T_ISSUE(FGPAR_T_RF1);
  FGPAR_T_SET_G(static_cast<std::int64_t>(fpr[op->src1]));
  FGPAR_T_RETIRE(1);
t_CeqF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_G(fpr[op->src1] == fpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);
t_CltF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_G(fpr[op->src1] < fpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);
t_CleF:
  FGPAR_T_ISSUE(FGPAR_T_RF2);
  FGPAR_T_SET_G(fpr[op->src1] <= fpr[op->src2] ? 1 : 0);
  FGPAR_T_RETIRE(1);

  // ---- control ----
t_Nop:
  FGPAR_T_ISSUE(FGPAR_T_R0);
  FGPAR_T_RETIRE(1);
t_Jmp:
  FGPAR_T_ISSUE(FGPAR_T_R0);
  goto branch_taken;
t_Bz:
  FGPAR_T_ISSUE(FGPAR_T_RG1);
  if (gpr[op->src1] == 0) {
    goto branch_taken;
  }
  FGPAR_T_RETIRE(1);  // not taken: superblock falls through in-trace
t_Bnz:
  FGPAR_T_ISSUE(FGPAR_T_RG1);
  if (gpr[op->src1] != 0) {
    goto branch_taken;
  }
  FGPAR_T_RETIRE(1);
t_Halt:
  FGPAR_T_ISSUE(FGPAR_T_R0);
  core.halted_ = true;
  nxt = t + 1;
  t_now = t + 1;
  ++executed;
  core.pc_ = op->pc + 1;
  result.exit = TraceRun::Exit::kHalt;
  goto writeback;

branch_taken:
  // op->busy carries the taken occupancy (1 + taken_branch_penalty).
  nxt = t + static_cast<std::uint64_t>(op->busy);
  t_now = t + 1;
  ++executed;
  if (op->imm == head_pc) {
    op = base;  // hot loop: stay in the trace
    FGPAR_T_DISPATCH();
  }
  core.pc_ = op->imm;
  result.exit = TraceRun::Exit::kBranch;
  goto writeback;

t_Exit:
  // Planned deopt: the next op is untranslatable.  pc moves to it; all
  // timing state is exactly the interpreted loop's boundary state.
  core.pc_ = op->pc;
  result.exit = TraceRun::Exit::kDeopt;
  result.deopt_cause = op->exit_cause;
  switch (op->exit_cause) {
    case TraceExitCause::kMemory: ++stats.deopt_memory; break;
    case TraceExitCause::kQueue: ++stats.deopt_queue; break;
    case TraceExitCause::kCallRet: ++stats.deopt_call_ret; break;
    case TraceExitCause::kCap: ++stats.deopt_cap; break;
    case TraceExitCause::kEnd: ++stats.deopt_end; break;
    case TraceExitCause::kBoundary: break;  // never baked into kExit ops
  }
  goto writeback;

exit_boundary:
  // Conservative guard: this op's issue could reach min(stop_at,
  // max_cycles), or a divide would trap.  Exit with the pre-op state; the
  // caller takes one interpreted step, which re-derives the precise
  // pause/throw/stall ordering.
  core.pc_ = op->pc;
  result.exit = TraceRun::Exit::kBoundary;
  result.deopt_cause = TraceExitCause::kBoundary;
  ++stats.deopt_boundary;
  goto writeback;

writeback:
  core.next_issue_ = nxt;
  core.stats_.instructions += executed;
  core.stats_.stall_raw += stall;
  now = t_now;
  if (executed > 0) {
    last_issue = t_now - 1;  // every issue sets t_now = issue cycle + 1
  }
  ++stats.trace_exits;
  stats.threaded_instructions += executed;
  result.executed = executed;
  return result;
}

#undef FGPAR_T_DISPATCH
#undef FGPAR_T_ISSUE
#undef FGPAR_T_RETIRE
#undef FGPAR_T_SET_G
#undef FGPAR_T_SET_F
#undef FGPAR_T_R0
#undef FGPAR_T_RG1
#undef FGPAR_T_RG2
#undef FGPAR_T_RF1
#undef FGPAR_T_RF2
#undef FGPAR_T_RF3

// ---------------------------------------------------------------------------
// Translator
// ---------------------------------------------------------------------------

namespace {

TraceOpKind KindOf(Opcode op) {
  switch (op) {
    case Opcode::kAddI: return TraceOpKind::kAddI;
    case Opcode::kSubI: return TraceOpKind::kSubI;
    case Opcode::kMulI: return TraceOpKind::kMulI;
    case Opcode::kDivI: return TraceOpKind::kDivI;
    case Opcode::kRemI: return TraceOpKind::kRemI;
    case Opcode::kAndI: return TraceOpKind::kAndI;
    case Opcode::kOrI: return TraceOpKind::kOrI;
    case Opcode::kXorI: return TraceOpKind::kXorI;
    case Opcode::kShlI: return TraceOpKind::kShlI;
    case Opcode::kShrI: return TraceOpKind::kShrI;
    case Opcode::kMinI: return TraceOpKind::kMinI;
    case Opcode::kMaxI: return TraceOpKind::kMaxI;
    case Opcode::kLiI: return TraceOpKind::kLiI;
    case Opcode::kMovI: return TraceOpKind::kMovI;
    case Opcode::kCeqI: return TraceOpKind::kCeqI;
    case Opcode::kCneI: return TraceOpKind::kCneI;
    case Opcode::kCltI: return TraceOpKind::kCltI;
    case Opcode::kCleI: return TraceOpKind::kCleI;
    case Opcode::kAddF: return TraceOpKind::kAddF;
    case Opcode::kSubF: return TraceOpKind::kSubF;
    case Opcode::kMulF: return TraceOpKind::kMulF;
    case Opcode::kDivF: return TraceOpKind::kDivF;
    case Opcode::kNegF: return TraceOpKind::kNegF;
    case Opcode::kAbsF: return TraceOpKind::kAbsF;
    case Opcode::kSqrtF: return TraceOpKind::kSqrtF;
    case Opcode::kMinF: return TraceOpKind::kMinF;
    case Opcode::kMaxF: return TraceOpKind::kMaxF;
    case Opcode::kFmaF: return TraceOpKind::kFmaF;
    case Opcode::kLiF: return TraceOpKind::kLiF;
    case Opcode::kMovF: return TraceOpKind::kMovF;
    case Opcode::kItoF: return TraceOpKind::kItoF;
    case Opcode::kFtoI: return TraceOpKind::kFtoI;
    case Opcode::kCeqF: return TraceOpKind::kCeqF;
    case Opcode::kCltF: return TraceOpKind::kCltF;
    case Opcode::kCleF: return TraceOpKind::kCleF;
    case Opcode::kNop: return TraceOpKind::kNop;
    case Opcode::kJmp: return TraceOpKind::kJmp;
    case Opcode::kBz: return TraceOpKind::kBz;
    case Opcode::kBnz: return TraceOpKind::kBnz;
    case Opcode::kHalt: return TraceOpKind::kHalt;
    default:
      FGPAR_UNREACHABLE("opcode is not threaded-traceable");
  }
}

TraceOp MakeOp(const DecodedInstruction& di, std::int64_t pc,
               std::uint64_t taken_branch_busy) {
  TraceOp op;
  op.kind = KindOf(di.op);
  op.dst = di.dst;
  op.src1 = di.src1;
  op.src2 = di.src2;
  op.latency = di.result_latency;
  op.pc = pc;
  op.imm = di.imm;
  op.fimm = di.fimm;
  if (isa::IsBranch(di.op)) {
    op.busy = static_cast<std::int64_t>(taken_branch_busy);
  } else if (di.unpipelined_busy > 0) {
    op.busy = di.unpipelined_busy;
  }
  return op;
}

TraceOp MakeExitOp(TraceExitCause cause, std::int64_t pc) {
  TraceOp op;
  op.kind = TraceOpKind::kExit;
  op.exit_cause = cause;
  op.pc = pc;
  return op;
}

}  // namespace

ThreadedCache::ThreadedCache(const DecodedProgram& decoded,
                             ThreadedStats* stats,
                             telemetry::TelemetrySink* span_sink)
    : decoded_(decoded),
      stats_(stats),
      span_sink_(span_sink),
      trace_at_(decoded.size(), kColdPc),
      heat_(decoded.size(), 0) {}

void ThreadedCache::NoteControlTransfer(std::int64_t target) {
  if (target < 0 || static_cast<std::size_t>(target) >= trace_at_.size()) {
    return;  // wild target: the interpreter raises the pc-range error
  }
  if (trace_at_[static_cast<std::size_t>(target)] != kColdPc) {
    return;  // already translated (or known untranslatable)
  }
  if (++heat_[static_cast<std::size_t>(target)] < kHotThreshold) {
    return;
  }
  TranslateBlockAt(target);
  if (trace_at_[static_cast<std::size_t>(target)] == kColdPc) {
    trace_at_[static_cast<std::size_t>(target)] = kNoTrace;
  }
}

void ThreadedCache::TranslateBlockAt(std::int64_t head) {
  telemetry::ScopedSpan span(span_sink_, "sim", "translate");
  ++stats_->blocks_translated;
  const std::int64_t size = static_cast<std::int64_t>(decoded_.size());
  const std::uint64_t taken_busy = decoded_.taken_branch_busy();

  std::vector<TraceOp> ops;
  std::int64_t seg_start = -1;
  int walked = 0;
  int new_traces = 0;
  int trace_ops = 0;

  // Registers the pending segment (if long enough to pay for its enter/exit
  // cost) as a trace anchored at seg_start.  `terminated` marks segments
  // whose last op (jmp/halt) never falls through, so no kExit op is needed.
  auto flush = [&](TraceExitCause cause, std::int64_t exit_pc,
                   bool terminated) {
    if (seg_start >= 0 && ops.size() >= kMinTraceOps &&
        trace_at_[static_cast<std::size_t>(seg_start)] == kColdPc) {
      if (!terminated) {
        ops.push_back(MakeExitOp(cause, exit_pc));
      }
      auto trace = std::make_unique<ThreadedTrace>();
      trace->head_pc = seg_start;
      trace->ops = std::move(ops);
      trace_ops += static_cast<int>(trace->ops.size());
      trace_at_[static_cast<std::size_t>(seg_start)] =
          static_cast<std::int32_t>(traces_.size());
      traces_.push_back(std::move(trace));
      ++stats_->traces;
      ++new_traces;
    }
    ops.clear();
    seg_start = -1;
  };

  // Superblock walk: extend through not-taken conditional branches, end
  // segments at untranslatable ops, end the block at an unconditional
  // control transfer.
  std::int64_t pc = head;
  while (pc < size && walked < kMaxBlockOps) {
    const DecodedInstruction& di = decoded_.at(pc);
    ++walked;
    if (!isa::IsThreadedTraceable(di.op)) {
      const TraceExitCause cause = isa::IsQueueOp(di.op)
                                       ? TraceExitCause::kQueue
                                   : isa::IsCallOrRet(di.op)
                                       ? TraceExitCause::kCallRet
                                       : TraceExitCause::kMemory;
      flush(cause, pc, /*terminated=*/false);
      if (cause == TraceExitCause::kCallRet) {
        break;  // continuation depends on the call stack
      }
      ++pc;  // straight-line memory op: the next segment starts after it
      continue;
    }
    if (seg_start < 0) {
      seg_start = pc;
    }
    ops.push_back(MakeOp(di, pc, taken_busy));
    if (di.op == Opcode::kJmp || di.op == Opcode::kHalt) {
      flush(TraceExitCause::kEnd, pc, /*terminated=*/true);
      break;
    }
    ++pc;
  }
  if (seg_start >= 0) {
    flush(walked >= kMaxBlockOps ? TraceExitCause::kCap : TraceExitCause::kEnd,
          pc, /*terminated=*/false);
  }

  span.Note("pc", head);
  span.Note("ops_walked", walked);
  span.Note("traces", new_traces);
  span.Note("trace_ops", trace_ops);
}

}  // namespace fgpar::sim
