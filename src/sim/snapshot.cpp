// Machine state serialization ("fgpar-snap-v1").
//
// Everything mutable travels in the snapshot: the cycle clock, each core's
// architectural and timing state, queue contents (payloads and arrival
// cycles), functional memory, cache tag/LRU state, hit counters, the fault
// injector's RNG position and counters, and the run-loop bookkeeping that
// makes pause/resume bit-identical to an uninterrupted run.  Everything
// *immutable* — the program and the MachineConfig — is instead folded into
// an identity hash embedded in the stream: Restore refuses to load a
// snapshot into a machine built from a different program or configuration,
// because the state would be silently meaningless there.
//
// The decoded instruction cache is deliberately absent: it is a pure
// function of (program, timing), both covered by the identity, and is
// rebuilt lazily on the first fast-path Run after Restore.
#include <cstring>

#include "sim/machine.hpp"
#include "support/serial.hpp"

namespace fgpar::sim {

namespace {
constexpr const char kSnapshotMagic[] = "fgpar-snap";
constexpr std::uint32_t kSnapshotVersion = 1;

void SaveStats(ByteWriter& w, const CoreStats& s) {
  w.U64(s.instructions);
  w.U64(s.enqueues);
  w.U64(s.dequeues);
  w.U64(s.loads);
  w.U64(s.stores);
  w.U64(s.stall_raw);
  w.U64(s.stall_queue_empty);
  w.U64(s.stall_queue_full);
}

void LoadStats(ByteReader& r, CoreStats& s) {
  s.instructions = r.U64();
  s.enqueues = r.U64();
  s.dequeues = r.U64();
  s.loads = r.U64();
  s.stores = r.U64();
  s.stall_raw = r.U64();
  s.stall_queue_empty = r.U64();
  s.stall_queue_full = r.U64();
}

void HashConfig(ByteWriter& w, const MachineConfig& c) {
  w.U32(static_cast<std::uint32_t>(c.num_cores));
  w.U32(static_cast<std::uint32_t>(c.threads_per_core));
  w.U64(c.memory_words);
  w.U32(static_cast<std::uint32_t>(c.timing.int_alu));
  w.U32(static_cast<std::uint32_t>(c.timing.int_mul));
  w.U32(static_cast<std::uint32_t>(c.timing.int_div));
  w.U32(static_cast<std::uint32_t>(c.timing.fp_alu));
  w.U32(static_cast<std::uint32_t>(c.timing.fp_mul));
  w.U32(static_cast<std::uint32_t>(c.timing.fp_fma));
  w.U32(static_cast<std::uint32_t>(c.timing.fp_div));
  w.U32(static_cast<std::uint32_t>(c.timing.fp_sqrt));
  w.U32(static_cast<std::uint32_t>(c.timing.branch));
  w.U32(static_cast<std::uint32_t>(c.timing.taken_branch_penalty));
  w.U32(static_cast<std::uint32_t>(c.timing.queue_op));
  w.U32(static_cast<std::uint32_t>(c.cache.line_words));
  w.U32(static_cast<std::uint32_t>(c.cache.l1_sets));
  w.U32(static_cast<std::uint32_t>(c.cache.l1_ways));
  w.U32(static_cast<std::uint32_t>(c.cache.l2_sets));
  w.U32(static_cast<std::uint32_t>(c.cache.l2_ways));
  w.U32(static_cast<std::uint32_t>(c.cache.l1_latency));
  w.U32(static_cast<std::uint32_t>(c.cache.l2_latency));
  w.U32(static_cast<std::uint32_t>(c.cache.mem_latency));
  w.U32(static_cast<std::uint32_t>(c.queue.capacity));
  w.U32(static_cast<std::uint32_t>(c.queue.transfer_latency));
  w.U64(c.no_progress_limit);
  w.U64(c.max_cycles);
  w.U32(static_cast<std::uint32_t>(c.call_stack_limit));
  w.U64(c.stall_watchdog_cycles);
  w.U64(c.faults.seed);
  w.F64(c.faults.queue_jitter_prob);
  w.U32(static_cast<std::uint32_t>(c.faults.queue_jitter_max_cycles));
  w.F64(c.faults.queue_reject_prob);
  w.F64(c.faults.payload_flip_prob);
  w.F64(c.faults.mem_fault_prob);
  w.U32(static_cast<std::uint32_t>(c.faults.mem_fault_extra_cycles));
  w.F64(c.faults.core_freeze_prob);
  w.U32(static_cast<std::uint32_t>(c.faults.core_freeze_cycles));
  w.Bool(c.force_slow_path);
  // force_tier is deliberately NOT hashed: results are bit-identical
  // across run tiers, so a snapshot taken under one tier must restore
  // into a machine pinned to another (tests/sim_threaded_test.cpp).
}

void HashProgram(ByteWriter& w, const isa::Program& program) {
  w.U64(program.code().size());
  for (const isa::Instruction& i : program.code()) {
    w.U8(static_cast<std::uint8_t>(i.op));
    w.U8(i.dst);
    w.U8(i.src1);
    w.U8(i.src2);
    w.I64(i.queue);
    w.I64(i.imm);
    w.F64(i.fimm);
  }
  w.U64(program.symbols().size());
  for (const auto& [name, pc] : program.symbols()) {
    w.Str(name);
    w.I64(pc);
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Components

void Core::SaveState(ByteWriter& w) const {
  w.Bool(started_);
  w.Bool(halted_);
  w.I64(pc_);
  w.U64(next_issue_);
  for (const std::int64_t v : gpr_) {
    w.I64(v);
  }
  for (const double v : fpr_) {
    w.F64(v);
  }
  for (const std::uint64_t v : gpr_ready_) {
    w.U64(v);
  }
  for (const std::uint64_t v : fpr_ready_) {
    w.U64(v);
  }
  w.U64(call_stack_.size());
  for (const std::int64_t v : call_stack_) {
    w.I64(v);
  }
  w.I64(stalled_deq_remote_);
  w.Bool(stalled_deq_fp_);
  w.I64(stalled_enq_remote_);
  w.Bool(stalled_enq_fp_);
  w.Bool(stalled_enq_injected_);
  SaveStats(w, stats_);
}

void Core::LoadState(ByteReader& r) {
  started_ = r.Bool();
  halted_ = r.Bool();
  pc_ = r.I64();
  next_issue_ = r.U64();
  for (std::int64_t& v : gpr_) {
    v = r.I64();
  }
  for (double& v : fpr_) {
    v = r.F64();
  }
  for (std::uint64_t& v : gpr_ready_) {
    v = r.U64();
  }
  for (std::uint64_t& v : fpr_ready_) {
    v = r.U64();
  }
  const std::uint64_t depth = r.U64();
  FGPAR_CHECK_MSG(depth <= static_cast<std::uint64_t>(config_.call_stack_limit),
                  "corrupt snapshot: call stack depth " + std::to_string(depth) +
                      " exceeds limit");
  call_stack_.clear();
  call_stack_.reserve(static_cast<std::size_t>(depth));
  for (std::uint64_t i = 0; i < depth; ++i) {
    call_stack_.push_back(r.I64());
  }
  stalled_deq_remote_ = static_cast<int>(r.I64());
  stalled_deq_fp_ = r.Bool();
  stalled_enq_remote_ = static_cast<int>(r.I64());
  stalled_enq_fp_ = r.Bool();
  stalled_enq_injected_ = r.Bool();
  LoadStats(r, stats_);
}

void HardwareQueue::SaveState(ByteWriter& w) const {
  w.U64(slots_.size());
  for (const Slot& s : slots_) {
    w.U64(s.payload);
    w.U64(s.arrival_cycle);
  }
  w.U64(total_transfers_);
  w.I64(max_occupancy_);
}

void HardwareQueue::LoadState(ByteReader& r) {
  const std::uint64_t count = r.U64();
  FGPAR_CHECK_MSG(count <= static_cast<std::uint64_t>(capacity_),
                  "corrupt snapshot: queue holds " + std::to_string(count) +
                      " slots, capacity " + std::to_string(capacity_));
  slots_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t payload = r.U64();
    const std::uint64_t arrival = r.U64();
    slots_.push_back(Slot{payload, arrival});
  }
  total_transfers_ = r.U64();
  max_occupancy_ = static_cast<int>(r.I64());
}

void QueueMatrix::SaveState(ByteWriter& w) const {
  w.U64(int_queues_.size());
  for (const HardwareQueue& q : int_queues_) {
    q.SaveState(w);
  }
  for (const HardwareQueue& q : fp_queues_) {
    q.SaveState(w);
  }
}

void QueueMatrix::LoadState(ByteReader& r) {
  const std::uint64_t count = r.U64();
  FGPAR_CHECK_MSG(count == int_queues_.size(),
                  "corrupt snapshot: queue matrix has " + std::to_string(count) +
                      " queues, machine has " +
                      std::to_string(int_queues_.size()));
  for (HardwareQueue& q : int_queues_) {
    q.LoadState(r);
  }
  for (HardwareQueue& q : fp_queues_) {
    q.LoadState(r);
  }
}

void CacheTagArray::SaveState(ByteWriter& w) const {
  w.U64(tick_);
  w.U64(ways_storage_.size());
  for (const Way& way : ways_storage_) {
    w.U64(way.tag);
    w.Bool(way.valid);
    w.U64(way.lru);
  }
}

void CacheTagArray::LoadState(ByteReader& r) {
  tick_ = r.U64();
  const std::uint64_t count = r.U64();
  FGPAR_CHECK_MSG(count == ways_storage_.size(),
                  "corrupt snapshot: tag array has " + std::to_string(count) +
                      " ways, machine has " +
                      std::to_string(ways_storage_.size()));
  for (Way& way : ways_storage_) {
    way.tag = r.U64();
    way.valid = r.Bool();
    way.lru = r.U64();
  }
}

void MemorySystem::SaveState(ByteWriter& w) const {
  w.U64Vec(words_);
  w.U64(l1_.size());
  for (const CacheTagArray& l1 : l1_) {
    l1.SaveState(w);
  }
  l2_.SaveState(w);
  w.U64(l1_hits_);
  w.U64(l2_hits_);
  w.U64(misses_);
}

void MemorySystem::LoadState(ByteReader& r) {
  std::vector<std::uint64_t> words = r.U64Vec();
  FGPAR_CHECK_MSG(words.size() == words_.size(),
                  "corrupt snapshot: memory has " + std::to_string(words.size()) +
                      " words, machine has " + std::to_string(words_.size()));
  words_ = std::move(words);
  const std::uint64_t l1_count = r.U64();
  FGPAR_CHECK_MSG(l1_count == l1_.size(),
                  "corrupt snapshot: " + std::to_string(l1_count) +
                      " L1 arrays, machine has " + std::to_string(l1_.size()));
  for (CacheTagArray& l1 : l1_) {
    l1.LoadState(r);
  }
  l2_.LoadState(r);
  l1_hits_ = r.U64();
  l2_hits_ = r.U64();
  misses_ = r.U64();
}

void FaultInjector::SaveState(ByteWriter& w) const {
  for (const std::uint64_t word : rng_.state()) {
    w.U64(word);
  }
  w.U64(stats_.latency_jitters);
  w.U64(stats_.jitter_cycles_added);
  w.U64(stats_.enqueue_rejects);
  w.U64(stats_.payload_flips);
  w.U64(stats_.mem_inflations);
  w.U64(stats_.core_freezes);
}

void FaultInjector::LoadState(ByteReader& r) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) {
    word = r.U64();
  }
  rng_.set_state(state);
  stats_.latency_jitters = r.U64();
  stats_.jitter_cycles_added = r.U64();
  stats_.enqueue_rejects = r.U64();
  stats_.payload_flips = r.U64();
  stats_.mem_inflations = r.U64();
  stats_.core_freezes = r.U64();
}

// ---------------------------------------------------------------------------
// Machine

std::uint64_t Machine::IdentityHash() const {
  ByteWriter w;
  HashProgram(w, program_);
  HashConfig(w, config_);
  return Fnv1a64(w.bytes().data(), w.bytes().size());
}

std::vector<std::uint8_t> Machine::Snapshot() const {
  ByteWriter w;
  w.Str(kSnapshotMagic);
  w.U32(kSnapshotVersion);
  w.U64(IdentityHash());
  w.U64(now_);
  w.Bool(paused_);
  w.U64(last_issue_cycle_);
  w.Bool(core0_halt_recorded_);
  w.U64(core0_halt_cycle_);
  w.U64Vec(frozen_until_);
  w.U64(cores_.size());
  for (const Core& c : cores_) {
    c.SaveState(w);
  }
  memory_.SaveState(w);
  queues_.SaveState(w);
  injector_.SaveState(w);
  return w.Take();
}

void Machine::Restore(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::string magic = r.Str();
  FGPAR_CHECK_MSG(magic == kSnapshotMagic,
                  "not a machine snapshot (bad magic '" + magic + "')");
  const std::uint32_t version = r.U32();
  FGPAR_CHECK_MSG(version == kSnapshotVersion,
                  "unsupported snapshot version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kSnapshotVersion) + ")");
  const std::uint64_t identity = r.U64();
  const std::uint64_t expected = IdentityHash();
  FGPAR_CHECK_MSG(identity == expected,
                  "snapshot identity mismatch: snapshot was taken from a "
                  "different program or machine configuration (snapshot " +
                      std::to_string(identity) + ", machine " +
                      std::to_string(expected) + ")");
  now_ = r.U64();
  paused_ = r.Bool();
  last_issue_cycle_ = r.U64();
  core0_halt_recorded_ = r.Bool();
  core0_halt_cycle_ = r.U64();
  std::vector<std::uint64_t> frozen = r.U64Vec();
  FGPAR_CHECK_MSG(frozen.size() == frozen_until_.size(),
                  "corrupt snapshot: frozen-core table size mismatch");
  frozen_until_ = std::move(frozen);
  const std::uint64_t core_count = r.U64();
  FGPAR_CHECK_MSG(core_count == cores_.size(),
                  "corrupt snapshot: " + std::to_string(core_count) +
                      " cores, machine has " + std::to_string(cores_.size()));
  for (Core& c : cores_) {
    c.LoadState(r);
  }
  memory_.LoadState(r);
  queues_.LoadState(r);
  injector_.LoadState(r);
  r.CheckFullyConsumed();
  // The threaded-tier trace cache is derived state keyed by heat observed
  // during *this* machine's execution history, which the restore just
  // replaced: drop it (and its diagnostics) wholesale and let the restored
  // run re-profile.  Keeping stale traces would still be functionally
  // correct — translation inputs are covered by the identity hash — but
  // conservative invalidation keeps the contract simple and testable.
  threaded_.reset();
  threaded_stats_ = ThreadedStats{};
}

}  // namespace fgpar::sim
