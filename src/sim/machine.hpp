// The whole simulated machine: N cores, shared memory, queue matrix.
//
// The machine steps all cores in lockstep cycles.  When no core can issue
// in a cycle, time fast-forwards to the next event (pipeline free, queue
// arrival, or core unfreeze); if no future event exists the machine is
// provably deadlocked and a DeadlockError describing every core is thrown —
// this catches compiler bugs that break the paper's "senders and receivers
// are always paired at runtime" requirement immediately instead of hanging.
//
// Two softer failure-containment mechanisms layer on top (both off by
// default, with zero effect on the fast path):
//
//  * a stall watchdog (MachineConfig::stall_watchdog_cycles): if no core
//    issues for that many cycles — even though future events still exist,
//    e.g. under injected faults — a StallError carrying a structured
//    StallReport fires long before max_cycles;
//  * deterministic fault injection (MachineConfig::faults): the machine
//    owns a FaultInjector shared by the queues, the memory system, and its
//    own core-stepping loop (core freezes), so degraded-hardware behaviour
//    is reproducible from one seed.
#pragma once

#include <cstdint>
#include <vector>

#include <memory>

#include "isa/program.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/decoded.hpp"
#include "sim/fault.hpp"
#include "sim/memory.hpp"
#include "sim/threaded.hpp"
#include "support/error.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::sim {

/// Structured snapshot of a wedged (or suspiciously quiet) machine: which
/// core is blocked where, on which queue, and what is in flight.  Produced
/// for both provable deadlocks and watchdog trips.
struct StallReport {
  std::uint64_t cycle = 0;           // when the report was taken
  std::uint64_t stalled_cycles = 0;  // cycles since the last issue
  bool provable_deadlock = false;    // true: no future event exists

  struct CoreState {
    int core = -1;
    bool started = false;
    bool halted = false;
    std::int64_t pc = 0;
    std::string detail;  // "core N: pc=.. [disasm] ; comment"
    enum class Wait { kNone, kDeqEmpty, kEnqFull, kFrozen } wait = Wait::kNone;
    // For kDeqEmpty/kEnqFull: the other end of the blocking queue.
    int remote_core = -1;
    bool queue_is_fp = false;
    int queue_occupancy = 0;
    int queue_in_flight = 0;  // enqueued but not yet arrived
    std::uint64_t frozen_until = 0;  // for kFrozen
  };
  std::vector<CoreState> cores;

  struct QueueState {
    int src = -1;
    int dst = -1;
    int int_occupancy = 0;
    int fp_occupancy = 0;
    int int_in_flight = 0;
    int fp_in_flight = 0;
  };
  std::vector<QueueState> queues;  // non-empty queues only

  /// Human-readable rendering (the text of DeadlockError/StallError).
  std::string Describe() const;
};

/// Thrown when all active cores are permanently blocked on queues.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(StallReport report)
      : Error(report.Describe()), report_(std::move(report)) {}
  const StallReport& report() const { return report_; }

 private:
  StallReport report_;
};

/// Thrown when the stall watchdog fires: no core has issued for
/// stall_watchdog_cycles, but future events may still exist (the stall may
/// be fault-induced or livelock-like rather than provable deadlock).
class StallError : public Error {
 public:
  explicit StallError(StallReport report)
      : Error(report.Describe()), report_(std::move(report)) {}
  const StallReport& report() const { return report_; }

 private:
  StallReport report_;
};

struct RunResult {
  std::uint64_t cycles = 0;            // cycle at which the last core halted
  std::uint64_t core0_halt_cycle = 0;  // cycle at which core 0 halted
  std::uint64_t instructions = 0;      // total across cores
};

/// Outcome of RunUntil: either the program ran to completion (`finished`,
/// with `result` valid) or the machine paused at a natural loop boundary
/// at or after the requested cycle and can be snapshotted or continued.
struct PauseResult {
  bool finished = false;
  RunResult result;  // valid only when finished
};

class Machine {
 public:
  Machine(MachineConfig config, isa::Program program);

  /// Arms `core` to begin at program symbol `entry` when Run is called.
  void StartCoreAt(int core, const std::string& entry);
  void StartCoreAtPc(int core, std::int64_t pc);

  /// Runs until every started core halts.  Throws DeadlockError on queue
  /// deadlock, StallError on a watchdog trip, and Error if config limits
  /// are exceeded.
  ///
  /// Three run tiers exist behind this call (docs/INTERNALS.md §13).  The
  /// *threaded tier* (the default when no instrumentation is attached)
  /// runs the fast loop plus the direct-threaded block translator
  /// (sim/threaded.hpp), which compiles hot basic blocks into computed-
  /// goto traces.  The *fast tier* steps against the predecoded
  /// instruction cache (built lazily, once per Machine) and skips cores
  /// that provably cannot issue this cycle.  The *slow tier* is the
  /// reference implementation: it polls every core every cycle and
  /// carries the fault injector, the stall watchdog, and the telemetry
  /// sink; it is used iff fault injection is enabled,
  /// stall_watchdog_cycles > 0, a telemetry sink is installed, or
  /// MachineConfig::force_slow_path requests it.
  /// MachineConfig::force_tier pins the choice for equivalence tests and
  /// benchmarks (instrumentation still wins).  Simulated cycle counts,
  /// final memory, and per-core statistics are bit-identical across all
  /// tiers (tests/sim_golden_test.cpp, tests/sim_threaded_test.cpp).
  RunResult Run();

  /// Like Run, but pauses once now() reaches `stop_cycle`.  The pause
  /// happens only at a natural run-loop boundary (just before a cycle is
  /// evaluated), so the machine may stop strictly after `stop_cycle` when
  /// a fast-forward jump lands past it; this is what makes pause/resume
  /// bit-identical to an uninterrupted run — mid-jump state never exists
  /// and is never approximated.  Calling Run or RunUntil again continues
  /// exactly where the machine paused, as does Restore on a Snapshot taken
  /// while paused.
  PauseResult RunUntil(std::uint64_t stop_cycle);

  /// Serializes the complete mutable machine state — cycle clock, cores
  /// (registers, scoreboards, call stacks, stall latches, statistics),
  /// queue contents, functional memory, cache timing state, fault-injector
  /// RNG position, and run-loop bookkeeping — as a versioned, host-
  /// independent byte stream ("fgpar-snap-v1").  The stream embeds an
  /// identity hash of the program and MachineConfig; Restore into a
  /// machine built from anything else is rejected.  The decoded
  /// instruction cache is intentionally not serialized: it is a pure
  /// function of (program, timing), both covered by the identity hash, and
  /// is rebuilt lazily after Restore.
  std::vector<std::uint8_t> Snapshot() const;

  /// Restores state from a Snapshot byte stream.  Throws fgpar::Error on a
  /// version mismatch, an identity mismatch (different program or config),
  /// or a truncated/corrupt stream.  Defined in sim/snapshot.cpp.
  void Restore(const std::vector<std::uint8_t>& bytes);

  /// Stable fingerprint of this machine's program and configuration (the
  /// snapshot compatibility identity).
  std::uint64_t IdentityHash() const;

  /// Installs a telemetry sink (non-owning; pass nullptr to disable).  The
  /// sink sees, in deterministic (cycle, core-evaluation) order: every
  /// instruction issue, queue enqueue/dequeue with post-op occupancy, and
  /// stall begin/end intervals with their cause (telemetry::SimEvent).
  /// Installing a sink routes runs through the reference loop; simulated
  /// cycles, memory, and statistics stay bit-identical to the fast path
  /// (tests/telemetry_test.cpp).  The open-stall tracking behind the
  /// interval events is telemetry-only bookkeeping: it is reset at every
  /// fresh Run and excluded from Snapshot/Restore.
  void SetTelemetry(telemetry::TelemetrySink* sink) {
    telemetry_ = sink;
    tier_dirty_ = true;  // the sink choice changes tier eligibility
  }
  telemetry::TelemetrySink* telemetry() const { return telemetry_; }

  /// Installs a host-span-only sink for the threaded tier's `translate`
  /// SpanEvents (nullptr to disable).  Unlike SetTelemetry this does NOT
  /// affect tier eligibility: sim-event sinks force the reference loop,
  /// under which traces never exist, so translation observability needs
  /// its own channel.
  void SetHostTelemetry(telemetry::TelemetrySink* sink);

  /// The tier RunUntil would use right now (resolves and caches it).
  RunTier resolved_tier();
  /// How many times tier eligibility has been derived (regression hook:
  /// repeated Run calls must not re-derive it; see tests).
  int tier_resolve_count() const { return tier_resolve_count_; }

  /// Translator/executor observability for the threaded tier.  Derived
  /// diagnostic state: excluded from Snapshot and reset by Restore.
  const ThreadedStats& threaded_stats() const { return threaded_stats_; }

  std::uint64_t now() const { return now_; }
  int num_cores() const { return config_.num_cores; }
  Core& core(int index);
  const Core& core(int index) const;
  MemorySystem& memory() { return memory_; }
  const MemorySystem& memory() const { return memory_; }
  QueueMatrix& queues() { return queues_; }
  const QueueMatrix& queues() const { return queues_; }
  const isa::Program& program() const { return program_; }
  const MachineConfig& config() const { return config_; }
  const FaultInjector& fault_injector() const { return injector_; }

 private:
  /// Snapshot of every core's blocking state plus queue occupancy, shared
  /// by the deadlock describer and the stall watchdog.
  StallReport BuildStallReport(std::uint64_t stalled_cycles,
                               bool provable_deadlock) const;

  /// Fast run loop: predecoded dispatch, issue-skip for blocked cores, no
  /// instrumentation hooks.  Bit-identical timing/state to RunSlow.
  PauseResult RunFast();
  /// Single-core specialization of RunFast: no SMT arbitration, no queue
  /// stalls (a 1-core machine has no queues), so the loop is just
  /// issue / jump-to-next-issue-cycle.  Bit-identical to RunSlow.
  PauseResult RunFastSingle();
  /// Threaded tier: RunFastSingle plus hot-block translation into
  /// direct-threaded traces (sim/threaded.hpp).  Multi-core machines
  /// delegate wholesale to RunFast (a counted machine-level deopt):
  /// lockstep SMT arbitration and shared cache/queue timing make
  /// cross-core trace execution unsound for bit-identity.
  PauseResult RunThreaded();
  PauseResult RunThreadedSingle();
  /// Derives the tier from hooks + force knobs (no caching).
  RunTier ResolveTierUncached() const;
  /// Reference run loop: polls every core every cycle; carries fault
  /// injection, the stall watchdog, and the telemetry sink.
  PauseResult RunSlow();
  /// Telemetry stall-interval tracking (no-ops unless a sink is
  /// installed): records per-core open stalls and emits
  /// kStallBegin/kStallEnd transitions.
  void TelemetryStall(std::size_t core, telemetry::StallCause cause);
  /// Closes `core`'s open stall (the core issued, or the run is ending).
  void TelemetryStallEnd(std::size_t core);
  /// Closes every open stall at now_ (called before throwing a
  /// deadlock/watchdog error so terminal stalls appear in traces).
  void TelemetryCloseStalls();
  /// Emits the issue event (plus the queue event for enq/deq ops) for the
  /// instruction at `pc` that core `core` just issued.
  void TelemetryIssue(std::size_t core, std::int64_t pc);
  /// Count of started-and-not-halted cores (loop-termination bookkeeping).
  int RunningCores() const;
  /// Completes a finished run's RunResult from the bookkeeping members.
  RunResult FinishResult() const;
  /// Marks the machine paused at `now_` (run-loop pause bookkeeping).
  PauseResult PauseHere();

  MachineConfig config_;
  isa::Program program_;
  MemorySystem memory_;
  QueueMatrix queues_;
  std::vector<Core> cores_;
  FaultInjector injector_;
  std::vector<std::uint64_t> frozen_until_;  // per core; 0 = not frozen
  std::uint64_t now_ = 0;
  // Run-loop bookkeeping, promoted to members (and into snapshots) so a
  // paused machine resumes with the same watchdog phase and core-0 halt
  // record as an uninterrupted run.  Reset at Run entry unless resuming
  // from a pause.
  std::uint64_t last_issue_cycle_ = 0;
  bool core0_halt_recorded_ = false;
  std::uint64_t core0_halt_cycle_ = 0;
  bool paused_ = false;
  /// Cycle at which the active RunUntil pauses (kNoStop for plain Run).
  std::uint64_t stop_at_ = 0;
  /// Telemetry sink (non-owning; null = off) and the per-core open-stall
  /// latches behind its interval events.  Not serialized: stall latches
  /// are derived observability state, reset at every fresh Run.
  telemetry::TelemetrySink* telemetry_ = nullptr;
  std::vector<telemetry::StallCause> open_stall_cause_;
  std::vector<std::uint64_t> open_stall_begin_;
  /// Predecoded instruction cache; built on the first fast-path Run.
  std::unique_ptr<DecodedProgram> decoded_;
  /// Threaded-tier trace cache; built on the first threaded Run of a
  /// single-core machine.  Derived state: dropped wholesale by Restore
  /// (traces are rebuilt lazily, like decoded_) and never serialized.
  std::unique_ptr<ThreadedCache> threaded_;
  ThreadedStats threaded_stats_;
  /// Host-span sink for translate spans (does not affect tier choice).
  telemetry::TelemetrySink* host_telemetry_ = nullptr;
  /// Cached tier resolution.  Eligibility depends only on construction-
  /// time config (faults, watchdog, force knobs) and the telemetry sink,
  /// so it is derived once and invalidated only by SetTelemetry instead
  /// of being re-scanned on every Run call.
  RunTier resolved_tier_ = RunTier::kAuto;
  bool tier_dirty_ = true;
  int tier_resolve_count_ = 0;
  /// Per-core outcome of the current cycle, reused across Run calls to
  /// avoid per-cycle clears (only slots of cores evaluated this cycle are
  /// written; stale slots are never read — see the run-loop comments).
  std::vector<StepOutcome> outcomes_;
};

}  // namespace fgpar::sim
