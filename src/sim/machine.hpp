// The whole simulated machine: N cores, shared memory, queue matrix.
//
// The machine steps all cores in lockstep cycles.  When no core can issue
// in a cycle, time fast-forwards to the next event (pipeline free or queue
// arrival); if no future event exists the machine is provably deadlocked
// and a DeadlockError describing every core is thrown — this catches
// compiler bugs that break the paper's "senders and receivers are always
// paired at runtime" requirement immediately instead of hanging.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/program.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/memory.hpp"
#include "support/error.hpp"

namespace fgpar::sim {

/// Thrown when all active cores are permanently blocked on queues.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(std::string message) : Error(std::move(message)) {}
};

struct RunResult {
  std::uint64_t cycles = 0;            // cycle at which the last core halted
  std::uint64_t core0_halt_cycle = 0;  // cycle at which core 0 halted
  std::uint64_t instructions = 0;      // total across cores
};

/// One instruction-issue event for tracing (see Machine::SetTrace).
struct TraceEvent {
  std::uint64_t cycle = 0;
  int core = -1;
  std::int64_t pc = 0;
  isa::Opcode op = isa::Opcode::kNop;
};

using TraceSink = std::function<void(const TraceEvent&)>;

class Machine {
 public:
  Machine(MachineConfig config, isa::Program program);

  /// Arms `core` to begin at program symbol `entry` when Run is called.
  void StartCoreAt(int core, const std::string& entry);
  void StartCoreAtPc(int core, std::int64_t pc);

  /// Runs until every started core halts.  Throws DeadlockError on queue
  /// deadlock and Error if config limits are exceeded.
  RunResult Run();

  /// Installs a per-issue trace callback (pass nullptr to disable).  The
  /// sink sees every instruction issue in deterministic (cycle, core)
  /// order; it may stop the trace cheaply by ignoring events.
  void SetTrace(TraceSink sink) { trace_ = std::move(sink); }

  std::uint64_t now() const { return now_; }
  int num_cores() const { return config_.num_cores; }
  Core& core(int index);
  const Core& core(int index) const;
  MemorySystem& memory() { return memory_; }
  const MemorySystem& memory() const { return memory_; }
  QueueMatrix& queues() { return queues_; }
  const QueueMatrix& queues() const { return queues_; }
  const isa::Program& program() const { return program_; }
  const MachineConfig& config() const { return config_; }

 private:
  std::string DescribeDeadlock() const;

  MachineConfig config_;
  isa::Program program_;
  MemorySystem memory_;
  QueueMatrix queues_;
  std::vector<Core> cores_;
  std::uint64_t now_ = 0;
  TraceSink trace_;
};

}  // namespace fgpar::sim
