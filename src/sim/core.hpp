// In-order scoreboarded core model.
//
// The core approximates a Blue Gene/Q A2 hardware thread: single-issue,
// in-order, pipelined.  Each cycle it tries to issue the instruction at pc;
// issue waits until all source registers are ready (a register scoreboard),
// until the divide/sqrt unit is free (those are unpipelined), and — for the
// paper's queue instructions — until the hardware queue can accept or
// supply a value.  Results become ready `ResultLatency` cycles after issue;
// loads get their latency from the MemorySystem.
//
// Functional and timing state are updated together at issue, which is safe
// for a single-issue in-order core because any consumer is held back by the
// scoreboard until the producer's latency has elapsed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/config.hpp"
#include "sim/decoded.hpp"
#include "sim/hw_queue.hpp"
#include "sim/memory.hpp"

namespace fgpar {
class ByteReader;
class ByteWriter;
}  // namespace fgpar

namespace fgpar::sim {

/// All point-to-point queues of the machine: for every ordered core pair
/// there is one int queue and one fp queue (Section II: "for every pair of
/// cores A and B, there is a queue dedicated to transfers from A to B, and
/// another queue dedicated to transfers from B to A").
class QueueMatrix {
 public:
  QueueMatrix(int num_cores, const QueueConfig& config);

  HardwareQueue& IntQueue(int src, int dst);
  HardwareQueue& FpQueue(int src, int dst);
  const HardwareQueue& IntQueue(int src, int dst) const;
  const HardwareQueue& FpQueue(int src, int dst) const;
  int num_cores() const { return num_cores_; }

  /// Number of distinct directional queues with at least one transfer —
  /// the "Queues" column of Table III (int and fp queues between the same
  /// ordered pair count as one sender-receiver channel).
  int UsedChannelCount() const;

  /// Total values moved through all queues.
  std::uint64_t TotalTransfers() const;

  /// Highest simultaneous occupancy reached by any single queue — shows
  /// how much of the paper's 20-slot capacity the pipelining actually
  /// uses.
  int MaxOccupancy() const;

  /// Installs the fault injector on every queue (nullptr to clear).
  void SetFaultInjector(FaultInjector* faults);

  /// Serializes/restores every queue's state.  Defined in sim/snapshot.cpp.
  void SaveState(ByteWriter& w) const;
  void LoadState(ByteReader& r);

 private:
  int Index(int src, int dst) const;

  int num_cores_;
  std::vector<HardwareQueue> int_queues_;
  std::vector<HardwareQueue> fp_queues_;
};

/// Why a core could not issue this cycle.
enum class StepOutcome {
  kIssued,        // an instruction issued
  kPipelineBusy,  // issue stage busy (multi-cycle op or RAW fast-forward)
  kStallDeqEmpty, // dequeue waiting for a value to arrive
  kStallEnqFull,  // enqueue waiting for a free slot
  kHalted,        // core has executed halt
  kIdle,          // core was never started
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t stall_raw = 0;         // cycles lost to operand waits
  std::uint64_t stall_queue_empty = 0; // cycles blocked in deq
  std::uint64_t stall_queue_full = 0;  // cycles blocked in enq
};

class Core {
 public:
  /// The direct-threaded trace executor (sim/threaded.hpp) updates
  /// registers, scoreboards, pc, and stats in bulk without per-op calls.
  friend class ThreadedExec;
  /// `id` is the hardware-thread index; `physical_core` selects which L1
  /// this thread's memory accesses hit (SMT threads share their core's L1).
  Core(int id, const MachineConfig& config, int physical_core = -1);

  /// Begins execution at `pc`.  May be called again after a halt.
  void Start(std::int64_t pc);

  bool started() const { return started_; }
  bool halted() const { return halted_; }
  std::int64_t pc() const { return pc_; }
  int id() const { return id_; }

  /// Attempts to issue one instruction at cycle `now`.  `faults`, when
  /// non-null and enabled, may transiently reject an enqueue (the core
  /// stalls as if the queue were full and retries next cycle).
  StepOutcome Step(std::uint64_t now, const isa::Program& program,
                   MemorySystem& memory, QueueMatrix& queues,
                   FaultInjector* faults = nullptr);

  /// Fast-path issue attempt against a predecoded program: no fault hooks,
  /// no per-issue opcode re-classification.  The caller (Machine's fast
  /// run loop) must guarantee the core is started, not halted, and its
  /// issue stage is free (next_issue_cycle() <= now); Step's corresponding
  /// early-outs are deliberately absent here.  Timing and functional
  /// behaviour are bit-identical to Step without faults — the golden cycle
  /// tests lock this equivalence.
  StepOutcome StepFast(std::uint64_t now, const DecodedProgram& program,
                       MemorySystem& memory, QueueMatrix& queues);

  /// Earliest cycle at which the issue stage is free again.
  std::uint64_t next_issue_cycle() const { return next_issue_; }

  /// When the core is stalled on a dequeue, identifies the source core and
  /// register class so the machine can compute the next arrival event.
  bool stalled_on_deq(int& remote, bool& is_fp) const;

  /// When the core is stalled on an enqueue, identifies the destination
  /// core and register class (for stall/deadlock reports).
  bool stalled_on_enq(int& remote, bool& is_fp) const;

  /// True if the last enqueue stall was injected by the fault injector
  /// rather than a genuinely full queue; the machine must then schedule a
  /// retry event instead of treating the core as dependent on its peer.
  bool last_enq_stall_injected() const { return stalled_enq_injected_; }

  // ---- architectural state (tests / harness) ----
  std::int64_t gpr(int index) const;
  double fpr(int index) const;
  void set_gpr(int index, std::int64_t value);
  void set_fpr(int index, double value);

  const CoreStats& stats() const { return stats_; }
  CoreStats& mutable_stats() { return stats_; }

  /// One-line state description for deadlock diagnostics.
  std::string Describe(const isa::Program& program) const;

  /// Serializes/restores the full architectural and timing state (id and
  /// config travel with the machine identity, not the snapshot).  Defined
  /// in sim/snapshot.cpp.
  void SaveState(ByteWriter& w) const;
  void LoadState(ByteReader& r);

 private:
  /// Latest ready-cycle among the instruction's source registers.
  std::uint64_t SourcesReadyAt(const isa::Instruction& instr) const;
  void Execute(std::uint64_t now, const isa::Instruction& instr,
               MemorySystem& memory, QueueMatrix& queues);

  /// The single functional+timing execute switch, shared by Step (which
  /// derives latencies per issue) and StepFast (which reads them from the
  /// DecodedInstruction).  `result_latency` is the non-memory result
  /// latency, `unpipelined_busy` is the issue-stage occupancy for
  /// unpipelined ops (0 = pipelined), `taken_branch_busy` the occupancy of
  /// a taken branch.  Sharing one switch means the two simulator paths can
  /// never diverge on architectural state, only on (golden-tested) timing.
  template <typename InstrT>
  void ExecuteImpl(std::uint64_t now, const InstrT& instr, int result_latency,
                   std::uint64_t unpipelined_busy,
                   std::uint64_t taken_branch_busy, MemorySystem& memory,
                   QueueMatrix& queues);

  int id_;
  int physical_core_;
  const MachineConfig& config_;
  bool started_ = false;
  bool halted_ = false;
  std::int64_t pc_ = 0;
  std::uint64_t next_issue_ = 0;
  std::array<std::int64_t, isa::kNumGpr> gpr_{};
  std::array<double, isa::kNumFpr> fpr_{};
  std::array<std::uint64_t, isa::kNumGpr> gpr_ready_{};
  std::array<std::uint64_t, isa::kNumFpr> fpr_ready_{};
  std::vector<std::int64_t> call_stack_;
  // Set while the last Step returned a queue stall.
  int stalled_deq_remote_ = -1;
  bool stalled_deq_fp_ = false;
  int stalled_enq_remote_ = -1;
  bool stalled_enq_fp_ = false;
  bool stalled_enq_injected_ = false;
  CoreStats stats_;
};

}  // namespace fgpar::sim
