// Shared memory with a two-level cache timing model.
//
// Functional state is a flat word-addressed array shared by all cores;
// loads/stores complete functionally at issue.  Timing is layered on top:
// each access consults a per-core L1 and a shared L2 and returns the load
// latency.  Writes allocate in L1 and invalidate the line in all other
// cores' L1s (a simple invalidation-based coherence model; invalidation
// traffic itself is not timed).  The model's purpose is what the paper's
// cost model needs — realistic *relative* hit/miss latencies and
// profile-feedback miss statistics — not microarchitectural fidelity.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/fault.hpp"

namespace fgpar {
class ByteReader;
class ByteWriter;
}  // namespace fgpar

namespace fgpar::sim {

/// Set-associative tag array with LRU replacement (timing state only).
class CacheTagArray {
 public:
  CacheTagArray(int sets, int ways, int line_words);

  /// Looks up `addr`; on miss, fills the line (evicting LRU).  Returns true
  /// on hit.
  bool Access(std::uint64_t addr);

  /// Invalidates the line containing `addr` if present.
  void Invalidate(std::uint64_t addr);

  void Clear();

  /// Serializes/restores tags, validity, and LRU state (geometry comes
  /// from the machine config).  Defined in sim/snapshot.cpp.
  void SaveState(ByteWriter& w) const;
  void LoadState(ByteReader& r);

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  std::uint64_t LineOf(std::uint64_t addr) const;

  int sets_;
  int ways_;
  int line_words_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;  // sets_ x ways_
};

/// The shared memory system: functional words + cache timing.
class MemorySystem {
 public:
  MemorySystem(const CacheConfig& config, int num_cores, std::uint64_t num_words);

  // ---- functional access (no timing) ----
  std::int64_t ReadI64(std::uint64_t addr) const;
  double ReadF64(std::uint64_t addr) const;
  void WriteI64(std::uint64_t addr, std::int64_t value);
  void WriteF64(std::uint64_t addr, double value);
  std::uint64_t ReadRaw(std::uint64_t addr) const;
  void WriteRaw(std::uint64_t addr, std::uint64_t value);
  std::uint64_t num_words() const { return words_.size(); }

  /// Snapshot of the full functional state (for golden comparisons).
  const std::vector<std::uint64_t>& words() const { return words_; }

  // ---- timed access ----
  /// Models a load/store by core `core` at `addr`; returns the latency in
  /// cycles and updates cache state.
  int AccessTimed(int core, std::uint64_t addr, bool is_write);

  /// Resets cache timing state (not functional memory).
  void ClearCaches();

  /// Installs (or clears, with nullptr) the fault injector consulted by
  /// AccessTimed for latency inflation.  Functional state is never faulted.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  // ---- statistics ----
  std::uint64_t l1_hits() const { return l1_hits_; }
  std::uint64_t l2_hits() const { return l2_hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Serializes/restores functional words, cache timing state, and hit
  /// counters.  Defined in sim/snapshot.cpp.
  void SaveState(ByteWriter& w) const;
  void LoadState(ByteReader& r);

 private:
  void CheckAddr(std::uint64_t addr) const;

  CacheConfig config_;
  std::vector<std::uint64_t> words_;
  std::vector<CacheTagArray> l1_;  // one per core
  CacheTagArray l2_;
  FaultInjector* faults_ = nullptr;
  std::uint64_t l1_hits_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fgpar::sim
