#include "sim/machine.hpp"

#include <algorithm>

#include <limits>
#include <sstream>

namespace fgpar::sim {

namespace {
int PhysicalCoreCount(const MachineConfig& config) {
  FGPAR_CHECK(config.threads_per_core >= 1);
  return (config.num_cores + config.threads_per_core - 1) / config.threads_per_core;
}
}  // namespace

std::string StallReport::Describe() const {
  std::ostringstream os;
  if (provable_deadlock) {
    os << "hardware queue deadlock at cycle " << cycle;
  } else {
    os << "stall watchdog tripped at cycle " << cycle
       << " (no instruction issued for " << stalled_cycles << " cycles)";
  }
  os << ":\n";
  for (const CoreState& c : cores) {
    os << "  " << c.detail;
    switch (c.wait) {
      case CoreState::Wait::kDeqEmpty:
        os << " -- waiting on " << (c.queue_is_fp ? "fp" : "int") << " queue "
           << c.remote_core << "->" << c.core << " (occupancy "
           << c.queue_occupancy << ", " << c.queue_in_flight << " in flight)";
        break;
      case CoreState::Wait::kEnqFull:
        os << " -- blocked enqueuing to " << (c.queue_is_fp ? "fp" : "int")
           << " queue " << c.core << "->" << c.remote_core << " (occupancy "
           << c.queue_occupancy << ", " << c.queue_in_flight << " in flight)";
        break;
      case CoreState::Wait::kFrozen:
        os << " -- frozen until cycle " << c.frozen_until;
        break;
      case CoreState::Wait::kNone:
        break;
    }
    os << '\n';
  }
  os << "queue occupancy:\n";
  for (const QueueState& q : queues) {
    os << "  " << q.src << "->" << q.dst << ": int=" << q.int_occupancy
       << " fp=" << q.fp_occupancy << " (in flight int=" << q.int_in_flight
       << " fp=" << q.fp_in_flight << ")\n";
  }
  return os.str();
}

Machine::Machine(MachineConfig config, isa::Program program)
    : config_(config),
      program_(std::move(program)),
      memory_(config.cache, PhysicalCoreCount(config), config.memory_words),
      queues_(config.num_cores, config.queue),
      injector_(config.faults),
      frozen_until_(static_cast<std::size_t>(config.num_cores), 0) {
  FGPAR_CHECK(config_.num_cores >= 1);
  cores_.reserve(static_cast<std::size_t>(config_.num_cores));
  for (int c = 0; c < config_.num_cores; ++c) {
    cores_.emplace_back(c, config_, c / config_.threads_per_core);
  }
  if (injector_.enabled()) {
    memory_.SetFaultInjector(&injector_);
    queues_.SetFaultInjector(&injector_);
  }
}

Core& Machine::core(int index) {
  FGPAR_CHECK(index >= 0 && index < config_.num_cores);
  return cores_[static_cast<std::size_t>(index)];
}

const Core& Machine::core(int index) const {
  FGPAR_CHECK(index >= 0 && index < config_.num_cores);
  return cores_[static_cast<std::size_t>(index)];
}

void Machine::StartCoreAt(int core_index, const std::string& entry) {
  StartCoreAtPc(core_index, program_.EntryOf(entry));
}

void Machine::StartCoreAtPc(int core_index, std::int64_t pc) {
  core(core_index).Start(pc);
}

int Machine::RunningCores() const {
  int running = 0;
  for (const Core& c : cores_) {
    if (c.started() && !c.halted()) {
      ++running;
    }
  }
  return running;
}

RunResult Machine::Run() {
  const PauseResult outcome =
      RunUntil(std::numeric_limits<std::uint64_t>::max());
  // stop_at_ is max and max_cycles is checked first, so a pause is
  // impossible: the run either finishes or throws.
  FGPAR_CHECK(outcome.finished);
  return outcome.result;
}

PauseResult Machine::RunUntil(std::uint64_t stop_cycle) {
  stop_at_ = stop_cycle;
  const bool resuming = paused_;
  if (!resuming) {
    // A fresh run (not a resume): reset the per-run bookkeeping exactly as
    // the loop-local variables used to be.
    last_issue_cycle_ = now_;
    core0_halt_recorded_ = false;
    core0_halt_cycle_ = 0;
  }
  paused_ = false;
  if (telemetry_ != nullptr &&
      (!resuming || open_stall_cause_.size() != cores_.size())) {
    // Telemetry-only stall latches: reset at every fresh run (and sized on
    // first use when a sink is installed mid-sequence).
    open_stall_cause_.assign(cores_.size(), telemetry::StallCause::kNone);
    open_stall_begin_.assign(cores_.size(), 0);
  }
  switch (resolved_tier()) {
    case RunTier::kSlow:
      return RunSlow();
    case RunTier::kFast:
      return RunFast();
    case RunTier::kThreaded:
      return RunThreaded();
    case RunTier::kAuto:
      break;  // resolved_tier() never returns kAuto
  }
  FGPAR_UNREACHABLE("unresolved run tier");
}

RunTier Machine::ResolveTierUncached() const {
  // Instrumentation hooks always win: the reference loop is the only one
  // that carries fault injection, the watchdog, and the sim-event sink.
  if (injector_.enabled() || telemetry_ != nullptr ||
      config_.stall_watchdog_cycles > 0 || config_.force_slow_path ||
      config_.force_tier == RunTier::kSlow) {
    return RunTier::kSlow;
  }
  if (config_.force_tier == RunTier::kFast) {
    return RunTier::kFast;
  }
  return RunTier::kThreaded;  // kAuto defaults to the fastest tier
}

RunTier Machine::resolved_tier() {
  if (tier_dirty_) {
    resolved_tier_ = ResolveTierUncached();
    tier_dirty_ = false;
    ++tier_resolve_count_;
  }
  return resolved_tier_;
}

void Machine::SetHostTelemetry(telemetry::TelemetrySink* sink) {
  host_telemetry_ = sink;
  if (threaded_) {
    threaded_->SetSpanSink(sink);
  }
}

RunResult Machine::FinishResult() const {
  RunResult result;
  result.cycles = now_;
  result.core0_halt_cycle = core0_halt_recorded_ ? core0_halt_cycle_ : now_;
  for (const Core& c : cores_) {
    result.instructions += c.stats().instructions;
  }
  return result;
}

PauseResult Machine::PauseHere() {
  paused_ = true;
  return PauseResult{};
}

PauseResult Machine::RunSlow() {
  constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();
  int running = RunningCores();

  // `outcomes_` is only cleared once per Run, not once per cycle: a slot is
  // rewritten whenever its core is evaluated, and stale slots are only ever
  // read in the fast-forward accounting below, which runs when *no* core
  // issued — a cycle in which every active core was evaluated.  The two
  // skip paths (frozen cores) write kIdle explicitly to keep the invariant.
  outcomes_.assign(cores_.size(), StepOutcome::kIdle);
  std::vector<StepOutcome>& outcomes = outcomes_;
  const int tpc = config_.threads_per_core;
  const int physical = (config_.num_cores + tpc - 1) / tpc;

  while (running > 0) {
    if (now_ >= stop_at_) {
      return PauseHere();  // natural loop boundary: all state consistent
    }
    FGPAR_CHECK_MSG(now_ < config_.max_cycles, "simulation exceeded max_cycles");

    bool issued_any = false;
    for (int p = 0; p < physical; ++p) {
      // SMT arbitration: the hardware threads of one physical core share a
      // single issue slot per cycle, round-robin priority.
      const int base = p * tpc;
      const int count = std::min(tpc, config_.num_cores - base);
      const int start = static_cast<int>(now_ % static_cast<std::uint64_t>(count));
      bool slot_taken = false;
      for (int k = 0; k < count && !slot_taken; ++k) {
        const std::size_t c = static_cast<std::size_t>(base + (start + k) % count);
        if (injector_.enabled() && cores_[c].started() && !cores_[c].halted()) {
          if (frozen_until_[c] > now_) {
            outcomes[c] = StepOutcome::kIdle;
            TelemetryStall(c, telemetry::StallCause::kFrozen);
            continue;  // frozen core: no issue attempt, slot stays free
          }
          if (injector_.ShouldFreezeCore()) {
            frozen_until_[c] =
                now_ + static_cast<std::uint64_t>(injector_.freeze_cycles());
            outcomes[c] = StepOutcome::kIdle;
            TelemetryStall(c, telemetry::StallCause::kFrozen);
            continue;
          }
        }
        const std::int64_t pc_before = cores_[c].pc();
        outcomes[c] = cores_[c].Step(now_, program_, memory_, queues_,
                                     injector_.enabled() ? &injector_ : nullptr);
        switch (outcomes[c]) {
          case StepOutcome::kIssued:
            issued_any = true;
            slot_taken = true;
            if (cores_[c].halted()) {
              --running;
            }
            if (telemetry_ != nullptr) {
              TelemetryStallEnd(c);
              TelemetryIssue(c, pc_before);
            }
            break;
          case StepOutcome::kStallDeqEmpty:
            ++cores_[c].mutable_stats().stall_queue_empty;
            TelemetryStall(c, telemetry::StallCause::kQueueEmpty);
            break;
          case StepOutcome::kStallEnqFull:
            ++cores_[c].mutable_stats().stall_queue_full;
            TelemetryStall(c, telemetry::StallCause::kQueueFull);
            break;
          case StepOutcome::kPipelineBusy:
            TelemetryStall(c, telemetry::StallCause::kPipeline);
            break;
          default:
            break;
        }
        if (cores_[c].halted() && c == 0 && !core0_halt_recorded_) {
          core0_halt_recorded_ = true;
          core0_halt_cycle_ = now_;
        }
      }
    }

    if (issued_any) {
      last_issue_cycle_ = now_;
      ++now_;
      continue;
    }
    if (config_.stall_watchdog_cycles > 0 &&
        now_ - last_issue_cycle_ >= config_.stall_watchdog_cycles) {
      TelemetryCloseStalls();  // the terminal stall must appear in traces
      throw StallError(BuildStallReport(now_ - last_issue_cycle_,
                                        /*provable_deadlock=*/false));
    }
    FGPAR_CHECK_MSG(now_ - last_issue_cycle_ < config_.no_progress_limit,
                    "no core issued for no_progress_limit cycles");

    // No core issued: fast-forward to the next event.
    std::uint64_t next_event = kNoEvent;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      const Core& core = cores_[c];
      if (!core.started() || core.halted()) {
        continue;
      }
      if (frozen_until_[c] > now_) {
        // A frozen core resumes on its own; its unfreeze is an event.
        next_event = std::min(next_event, frozen_until_[c]);
        continue;
      }
      if (core.next_issue_cycle() > now_) {
        next_event = std::min(next_event, core.next_issue_cycle());
        continue;
      }
      int remote = -1;
      bool is_fp = false;
      if (core.stalled_on_deq(remote, is_fp)) {
        const HardwareQueue& q = is_fp ? queues_.FpQueue(remote, core.id())
                                       : queues_.IntQueue(remote, core.id());
        // If a value is in flight, its arrival is the next event for this
        // core.  CanDequeue(now) was false, so any head arrives strictly
        // later; we conservatively advance one cycle at a time only when a
        // value is in flight but not yet visible.
        if (!q.empty()) {
          next_event = std::min(next_event, now_ + 1);
        }
      }
      if (outcomes[c] == StepOutcome::kStallEnqFull &&
          core.last_enq_stall_injected()) {
        // The stall was a transient injected rejection, not a full queue;
        // the core retries next cycle without waiting on any peer.
        next_event = std::min(next_event, now_ + 1);
      }
      // Cores stalled on a full queue (or an empty queue with nothing in
      // flight) depend on another core's progress; they contribute no event
      // of their own.
    }

    if (next_event == kNoEvent) {
      TelemetryCloseStalls();  // the terminal stall must appear in traces
      throw DeadlockError(BuildStallReport(now_ - last_issue_cycle_,
                                           /*provable_deadlock=*/true));
    }
    if (config_.stall_watchdog_cycles > 0) {
      // Never fast-forward past the watchdog deadline: land on it so the
      // check above can fire if the stall persists.
      next_event = std::min(next_event,
                            last_issue_cycle_ + config_.stall_watchdog_cycles);
    }
    // Account the skipped cycles as queue-stall time where applicable.
    const std::uint64_t skipped = next_event - now_;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      if (outcomes[c] == StepOutcome::kStallDeqEmpty) {
        cores_[c].mutable_stats().stall_queue_empty += skipped;
      } else if (outcomes[c] == StepOutcome::kStallEnqFull) {
        cores_[c].mutable_stats().stall_queue_full += skipped;
      }
    }
    now_ = next_event;
  }

  return PauseResult{true, FinishResult()};
}

PauseResult Machine::RunFast() {
  // Fast path: no fault injection, no watchdog, no trace sink.  The loop
  // mirrors RunSlow cycle-for-cycle — same SMT slot arbitration, same
  // intra-cycle core order, same fast-forward events, same stall
  // accounting — but (a) issues through the predecoded instruction cache
  // and (b) skips the full issue attempt for cores that provably cannot
  // issue this cycle: pipeline-busy cores and cores still blocked on the
  // same queue condition that stalled them last evaluation.  A skipped
  // blocked core costs two loads and a compare instead of a Step call.
  //
  // The skip is sound because a queue-stalled core's state is frozen until
  // its queue condition changes: its pc is unchanged, its source operands
  // were ready when the stall was diagnosed (ready-cycles only move when
  // the core itself issues), and its issue stage is free.  Re-evaluating
  // CanEnqueue/CanDequeue at the core's exact position in the cycle order
  // therefore reproduces precisely what Step would have concluded.
  if (!decoded_) {
    decoded_ = std::make_unique<DecodedProgram>(program_, config_.timing);
  }
  if (config_.num_cores == 1) {
    return RunFastSingle();
  }
  const DecodedProgram& dp = *decoded_;

  constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();
  int running = RunningCores();

  // Same once-per-Run clear as RunSlow; stale slots are only read in the
  // no-issue fast-forward, when every active core was evaluated this cycle.
  outcomes_.assign(cores_.size(), StepOutcome::kIdle);
  std::vector<StepOutcome>& outcomes = outcomes_;
  const int tpc = config_.threads_per_core;
  const int physical = (config_.num_cores + tpc - 1) / tpc;

  while (running > 0) {
    if (now_ >= stop_at_) {
      return PauseHere();  // natural loop boundary: all state consistent
    }
    FGPAR_CHECK_MSG(now_ < config_.max_cycles, "simulation exceeded max_cycles");

    bool issued_any = false;
    for (int p = 0; p < physical; ++p) {
      const int base = p * tpc;
      const int count = std::min(tpc, config_.num_cores - base);
      const int start =
          count == 1 ? 0 : static_cast<int>(now_ % static_cast<std::uint64_t>(count));
      for (int k = 0; k < count; ++k) {
        const std::size_t c = static_cast<std::size_t>(base + (start + k) % count);
        Core& core = cores_[c];
        if (!core.started() || core.halted()) {
          continue;  // outcome slot stays non-stall forever; never re-read
        }
        if (core.next_issue_cycle() > now_) {
          outcomes[c] = StepOutcome::kPipelineBusy;
          continue;
        }
        int remote = -1;
        bool is_fp = false;
        if (core.stalled_on_deq(remote, is_fp)) {
          const HardwareQueue& q = is_fp ? queues_.FpQueue(remote, core.id())
                                         : queues_.IntQueue(remote, core.id());
          if (!q.CanDequeue(now_)) {
            outcomes[c] = StepOutcome::kStallDeqEmpty;
            ++core.mutable_stats().stall_queue_empty;
            continue;
          }
        } else if (core.stalled_on_enq(remote, is_fp)) {
          const HardwareQueue& q = is_fp ? queues_.FpQueue(core.id(), remote)
                                         : queues_.IntQueue(core.id(), remote);
          if (!q.CanEnqueue()) {
            outcomes[c] = StepOutcome::kStallEnqFull;
            ++core.mutable_stats().stall_queue_full;
            continue;
          }
        }
        const StepOutcome outcome = core.StepFast(now_, dp, memory_, queues_);
        outcomes[c] = outcome;
        switch (outcome) {
          case StepOutcome::kIssued:
            issued_any = true;
            if (core.halted()) {
              --running;
              if (c == 0 && !core0_halt_recorded_) {
                core0_halt_recorded_ = true;
                core0_halt_cycle_ = now_;
              }
            }
            break;
          case StepOutcome::kStallDeqEmpty:
            ++core.mutable_stats().stall_queue_empty;
            break;
          case StepOutcome::kStallEnqFull:
            ++core.mutable_stats().stall_queue_full;
            break;
          default:
            break;
        }
        if (outcome == StepOutcome::kIssued) {
          break;  // SMT: the physical core's single issue slot is taken
        }
      }
    }

    if (issued_any) {
      last_issue_cycle_ = now_;
      ++now_;
      continue;
    }
    FGPAR_CHECK_MSG(now_ - last_issue_cycle_ < config_.no_progress_limit,
                    "no core issued for no_progress_limit cycles");

    // No core issued: fast-forward to the next event (same event model as
    // RunSlow minus the fault-only cases — no frozen cores and no injected
    // enqueue rejections exist on this path).  Unlike the reference loop,
    // which advances one cycle at a time while any dequeue-blocked queue
    // has a value in flight, this loop jumps straight to the head's
    // arrival: nothing can issue in between (queue contents are frozen
    // while no core issues, and every pipeline-free cycle is in the event
    // set), so the only observable difference is the stall accounting,
    // compensated for exactly below.
    std::uint64_t next_event = kNoEvent;
    bool crawl = false;  // would the reference loop advance cycle-by-cycle?
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      const Core& core = cores_[c];
      if (!core.started() || core.halted()) {
        continue;
      }
      if (core.next_issue_cycle() > now_) {
        next_event = std::min(next_event, core.next_issue_cycle());
        continue;
      }
      int remote = -1;
      bool is_fp = false;
      if (core.stalled_on_deq(remote, is_fp)) {
        const HardwareQueue& q = is_fp ? queues_.FpQueue(remote, core.id())
                                       : queues_.IntQueue(remote, core.id());
        // CanDequeue(now_) was false, so a non-empty queue's head arrives
        // strictly in the future; its arrival is this core's next event.
        if (!q.empty()) {
          next_event = std::min(next_event, q.HeadArrival());
          crawl = true;
        }
      }
      // Cores stalled on a full queue depend on another core's progress;
      // they contribute no event of their own.
    }

    if (next_event == kNoEvent) {
      throw DeadlockError(BuildStallReport(now_ - last_issue_cycle_,
                                           /*provable_deadlock=*/true));
    }
    // Stall accounting, matched to the reference loop.  Jumping k cycles
    // with no in-flight value pending charges each stalled core k (one per
    // skipped fast-forward).  When a value is in flight, the reference
    // loop instead crawls those k cycles one at a time, so each stalled
    // core is charged twice per cycle — once by its re-check and once by
    // the single-cycle fast-forward — except the landing cycle's re-check,
    // which both loops perform normally: 2k - 1.
    const std::uint64_t skipped = next_event - now_;
    const std::uint64_t charge = crawl ? 2 * skipped - 1 : skipped;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      if (outcomes[c] == StepOutcome::kStallDeqEmpty) {
        cores_[c].mutable_stats().stall_queue_empty += charge;
      } else if (outcomes[c] == StepOutcome::kStallEnqFull) {
        cores_[c].mutable_stats().stall_queue_full += charge;
      }
    }
    now_ = next_event;
  }

  return PauseResult{true, FinishResult()};
}

PauseResult Machine::RunFastSingle() {
  // Single-core specialization of the fast path.  A hardware queue needs
  // two distinct cores (QueueMatrix rejects self-queues), so on one core a
  // step can only issue or wait on its own pipeline — no SMT arbitration,
  // no queue-stall bookkeeping, no fast-forward event scan.  The loop jumps
  // straight to next_issue_cycle() instead of polling intermediate cycles.
  // This visits exactly the reference loop's Step call sites that mutate
  // state: the reference polls once right after the previous issue (where
  // Step either issues, or accrues stall_raw and publishes the true
  // next_issue_cycle) and then fast-forwards to that same cycle; the polls
  // it makes in between hit Step's next_issue early-out, which touches
  // nothing.  Cycle counts and statistics are therefore bit-identical
  // (tests/sim_golden_test.cpp).
  const DecodedProgram& dp = *decoded_;
  Core& core = cores_.front();

  while (core.started() && !core.halted()) {
    if (now_ >= stop_at_) {
      return PauseHere();  // natural loop boundary: all state consistent
    }
    const std::uint64_t next = core.next_issue_cycle();
    if (next > now_) {
      now_ = next;
    }
    FGPAR_CHECK_MSG(now_ < config_.max_cycles, "simulation exceeded max_cycles");
    if (core.StepFast(now_, dp, memory_, queues_) == StepOutcome::kIssued) {
      if (core.halted() && !core0_halt_recorded_) {
        core0_halt_recorded_ = true;
        core0_halt_cycle_ = now_;
      }
      last_issue_cycle_ = now_;
      ++now_;
    } else {
      // kPipelineBusy with a strictly future next_issue_cycle; queue stalls
      // are unreachable on one core, so the next iteration always advances.
      FGPAR_CHECK_MSG(now_ - last_issue_cycle_ < config_.no_progress_limit,
                      "no core issued for no_progress_limit cycles");
    }
  }

  return PauseResult{true, FinishResult()};
}

PauseResult Machine::RunThreaded() {
  if (!decoded_) {
    decoded_ = std::make_unique<DecodedProgram>(program_, config_.timing);
  }
  if (config_.num_cores > 1) {
    // Machine-level deopt: cross-core trace execution would have to
    // replicate lockstep SMT slot arbitration and shared cache/queue
    // timing order, which is exactly what the cycle loop exists to model.
    ++threaded_stats_.deopt_multi_core;
    return RunFast();
  }
  if (!threaded_) {
    threaded_ =
        std::make_unique<ThreadedCache>(*decoded_, &threaded_stats_,
                                        host_telemetry_);
  }
  return RunThreadedSingle();
}

PauseResult Machine::RunThreadedSingle() {
  // RunFastSingle plus trace dispatch.  Every iteration first checks the
  // pause horizon (the same natural loop boundary as the fast loop), then
  // either executes a compiled trace anchored at pc or takes one exact
  // RunFastSingle step.  Trace exits always land on a state the fast loop
  // could itself have been in at this boundary (sim/threaded.cpp), so the
  // interleaving below is bit-identical to RunFastSingle for any mix of
  // traced and interpreted execution.
  const DecodedProgram& dp = *decoded_;
  ThreadedCache& tc = *threaded_;
  Core& core = cores_.front();
  const std::uint64_t limit = std::min(stop_at_, config_.max_cycles);
  // After a kBoundary trace exit the same trace would exit again without
  // progress; force one interpreted step, which re-derives the precise
  // pause / max_cycles / divide-trap ordering and always makes progress.
  bool interpret_once = false;

  while (core.started() && !core.halted()) {
    if (now_ >= stop_at_) {
      return PauseHere();  // natural loop boundary: all state consistent
    }
    if (!interpret_once) {
      ThreadedTrace* trace = tc.TraceAt(core.pc());
      if (trace != nullptr) {
        ++threaded_stats_.trace_enters;
        const TraceRun run = ThreadedExec::Run(
            core, *trace, now_, limit, last_issue_cycle_, threaded_stats_);
        switch (run.exit) {
          case TraceRun::Exit::kHalt:
            if (!core0_halt_recorded_) {
              core0_halt_recorded_ = true;
              core0_halt_cycle_ = last_issue_cycle_;
            }
            continue;  // loop condition ends the run
          case TraceRun::Exit::kBranch:
            // A taken branch left the trace: its target may be (or become)
            // another trace head.
            tc.NoteControlTransfer(core.pc());
            continue;
          case TraceRun::Exit::kDeopt:
            // pc is on an untranslatable op; the dispatch above will miss
            // and the interpreted step below handles it.
            break;
          case TraceRun::Exit::kBoundary:
            interpret_once = true;
            continue;  // re-check the pause horizon first
        }
      }
    }
    interpret_once = false;

    // One interpreted issue attempt — textually RunFastSingle's body, plus
    // heat tracking on control transfers (the translation trigger).
    const std::uint64_t next = core.next_issue_cycle();
    if (next > now_) {
      now_ = next;
    }
    FGPAR_CHECK_MSG(now_ < config_.max_cycles, "simulation exceeded max_cycles");
    const std::int64_t pc_before = core.pc();
    if (core.StepFast(now_, dp, memory_, queues_) == StepOutcome::kIssued) {
      if (core.halted()) {
        if (!core0_halt_recorded_) {
          core0_halt_recorded_ = true;
          core0_halt_cycle_ = now_;
        }
      } else if (core.pc() != pc_before + 1) {
        tc.NoteControlTransfer(core.pc());
      }
      last_issue_cycle_ = now_;
      ++now_;
    } else {
      // kPipelineBusy with a strictly future next_issue_cycle; queue stalls
      // are unreachable on one core, so the next iteration always advances.
      FGPAR_CHECK_MSG(now_ - last_issue_cycle_ < config_.no_progress_limit,
                      "no core issued for no_progress_limit cycles");
    }
  }

  return PauseResult{true, FinishResult()};
}

void Machine::TelemetryStall(std::size_t core_index,
                             telemetry::StallCause cause) {
  if (telemetry_ == nullptr) {
    return;
  }
  telemetry::StallCause& open = open_stall_cause_[core_index];
  if (open == cause) {
    return;  // the stall continues; the interval stays open
  }
  if (open != telemetry::StallCause::kNone) {
    TelemetryStallEnd(core_index);
  }
  open = cause;
  open_stall_begin_[core_index] = now_;
  telemetry::SimEvent event;
  event.kind = telemetry::SimEventKind::kStallBegin;
  event.cycle = now_;
  event.core = static_cast<int>(core_index);
  event.cause = cause;
  telemetry_->OnSim(event);
}

void Machine::TelemetryStallEnd(std::size_t core_index) {
  if (telemetry_ == nullptr ||
      open_stall_cause_[core_index] == telemetry::StallCause::kNone) {
    return;
  }
  telemetry::SimEvent event;
  event.kind = telemetry::SimEventKind::kStallEnd;
  event.cycle = now_;
  event.core = static_cast<int>(core_index);
  event.cause = open_stall_cause_[core_index];
  event.begin_cycle = open_stall_begin_[core_index];
  telemetry_->OnSim(event);
  open_stall_cause_[core_index] = telemetry::StallCause::kNone;
}

void Machine::TelemetryCloseStalls() {
  if (telemetry_ == nullptr) {
    return;
  }
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    TelemetryStallEnd(c);
  }
}

void Machine::TelemetryIssue(std::size_t core_index, std::int64_t pc) {
  const isa::Instruction& inst = program_.at(pc);
  telemetry::SimEvent event;
  event.kind = telemetry::SimEventKind::kIssue;
  event.cycle = now_;
  event.core = static_cast<int>(core_index);
  event.pc = pc;
  event.name = isa::OpcodeName(inst.op);
  telemetry_->OnSim(event);
  if (!isa::IsQueueOp(inst.op)) {
    return;
  }
  // A queue op also moves a value through a directional channel: report
  // the channel and its occupancy after the op (the enqueued value counts
  // even while still in flight).
  const bool enq = isa::IsEnqueue(inst.op);
  const int self = static_cast<int>(core_index);
  const int remote = inst.queue;
  telemetry::SimEvent queue_event;
  queue_event.kind = enq ? telemetry::SimEventKind::kQueueEnqueue
                         : telemetry::SimEventKind::kQueueDequeue;
  queue_event.cycle = now_;
  queue_event.core = self;
  queue_event.queue_src = enq ? self : remote;
  queue_event.queue_dst = enq ? remote : self;
  queue_event.queue_is_fp = isa::IsFpQueueOp(inst.op);
  const HardwareQueue& queue =
      queue_event.queue_is_fp
          ? queues_.FpQueue(queue_event.queue_src, queue_event.queue_dst)
          : queues_.IntQueue(queue_event.queue_src, queue_event.queue_dst);
  queue_event.occupancy = queue.size();
  telemetry_->OnSim(queue_event);
}

StallReport Machine::BuildStallReport(std::uint64_t stalled_cycles,
                                      bool provable_deadlock) const {
  StallReport report;
  report.cycle = now_;
  report.stalled_cycles = stalled_cycles;
  report.provable_deadlock = provable_deadlock;
  for (const Core& c : cores_) {
    StallReport::CoreState state;
    state.core = c.id();
    state.started = c.started();
    state.halted = c.halted();
    state.pc = c.pc();
    state.detail = c.Describe(program_);
    int remote = -1;
    bool is_fp = false;
    if (frozen_until_[static_cast<std::size_t>(c.id())] > now_) {
      state.wait = StallReport::CoreState::Wait::kFrozen;
      state.frozen_until = frozen_until_[static_cast<std::size_t>(c.id())];
    } else if (c.stalled_on_deq(remote, is_fp)) {
      state.wait = StallReport::CoreState::Wait::kDeqEmpty;
      state.remote_core = remote;
      state.queue_is_fp = is_fp;
      const HardwareQueue& q = is_fp ? queues_.FpQueue(remote, c.id())
                                     : queues_.IntQueue(remote, c.id());
      state.queue_occupancy = q.size();
      state.queue_in_flight = q.InFlight(now_);
    } else if (c.stalled_on_enq(remote, is_fp)) {
      state.wait = StallReport::CoreState::Wait::kEnqFull;
      state.remote_core = remote;
      state.queue_is_fp = is_fp;
      const HardwareQueue& q = is_fp ? queues_.FpQueue(c.id(), remote)
                                     : queues_.IntQueue(c.id(), remote);
      state.queue_occupancy = q.size();
      state.queue_in_flight = q.InFlight(now_);
    }
    report.cores.push_back(std::move(state));
  }
  for (int src = 0; src < config_.num_cores; ++src) {
    for (int dst = 0; dst < config_.num_cores; ++dst) {
      if (src == dst) {
        continue;
      }
      const HardwareQueue& qi = queues_.IntQueue(src, dst);
      const HardwareQueue& qf = queues_.FpQueue(src, dst);
      if (qi.size() > 0 || qf.size() > 0) {
        report.queues.push_back(StallReport::QueueState{
            src, dst, qi.size(), qf.size(), qi.InFlight(now_),
            qf.InFlight(now_)});
      }
    }
  }
  return report;
}

}  // namespace fgpar::sim
