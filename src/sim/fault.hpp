// Deterministic fault injection for the simulated machine.
//
// The paper's design assumes a perfectly reliable queue fabric: Section
// III-I's static pairing guarantee is only useful if the hardware underneath
// it never misbehaves.  To grow toward a production posture the simulator
// can optionally perturb itself in seeded, fully reproducible ways:
//
//  * transfer-latency jitter — an enqueue's arrival is delayed by a random
//    number of extra cycles (a congested or degraded link);
//  * transient enqueue rejection — an enqueue attempt is refused even
//    though a slot is free (flow-control glitch); the core simply retries
//    next cycle, exactly like a genuine full-queue stall;
//  * payload bit flips — a single random bit of a value in transit flips
//    (soft error); caught downstream by the harness's bit-exact verify;
//  * memory-latency inflation — a timed access costs extra cycles
//    (contention, ECC retry);
//  * core freezes — a core issues nothing for a window of cycles
//    (thermal throttling, interrupt storm).
//
// All draws flow through one Rng seeded from FaultConfig::seed, and the
// simulator is single-threaded and deterministic, so a (seed, config,
// program, workload) tuple always reproduces the same faults at the same
// cycles.  Every hook is behind a cheap `enabled()` test: with the default
// all-zero probabilities the simulator's behaviour and cycle counts are
// bit-identical to a build without fault injection.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace fgpar {
class ByteReader;
class ByteWriter;
}  // namespace fgpar

namespace fgpar::sim {

/// Probabilities and magnitudes for each fault kind.  All probabilities
/// default to zero, which disables injection entirely (zero-overhead fast
/// path).
struct FaultConfig {
  std::uint64_t seed = 0;

  /// Per-enqueue probability of adding extra transfer latency, and the
  /// maximum number of extra cycles (uniform in [1, max]).
  double queue_jitter_prob = 0.0;
  int queue_jitter_max_cycles = 8;

  /// Per-attempt probability that an enqueue is transiently rejected even
  /// though the queue has space; the core stalls and retries next cycle.
  double queue_reject_prob = 0.0;

  /// Per-enqueue probability of flipping one random bit of the payload.
  double payload_flip_prob = 0.0;

  /// Per-access probability of inflating a timed memory access, and the
  /// extra cycles added.
  double mem_fault_prob = 0.0;
  int mem_fault_extra_cycles = 100;

  /// Per-core, per-stepped-cycle probability of freezing the core (it
  /// issues nothing) for the given window.
  double core_freeze_prob = 0.0;
  int core_freeze_cycles = 50;

  /// True if any fault kind can fire.
  bool AnyEnabled() const {
    return queue_jitter_prob > 0.0 || queue_reject_prob > 0.0 ||
           payload_flip_prob > 0.0 || mem_fault_prob > 0.0 ||
           core_freeze_prob > 0.0;
  }
};

/// Per-fault-kind event counters, surfaced through Machine/KernelRun stats.
struct FaultStats {
  std::uint64_t latency_jitters = 0;
  std::uint64_t jitter_cycles_added = 0;
  std::uint64_t enqueue_rejects = 0;
  std::uint64_t payload_flips = 0;
  std::uint64_t mem_inflations = 0;
  std::uint64_t core_freezes = 0;

  std::uint64_t TotalEvents() const {
    return latency_jitters + enqueue_rejects + payload_flips + mem_inflations +
           core_freezes;
  }
};

/// The machine-owned injector.  One instance is shared by the queues, the
/// memory system, and the machine's core-stepping loop; because they are
/// all driven from the single-threaded simulation loop, the draw order —
/// and therefore the whole fault schedule — is deterministic.
class FaultInjector {
 public:
  /// Disabled injector (the default for every machine).
  FaultInjector() : rng_(0) {}
  explicit FaultInjector(const FaultConfig& config)
      : config_(config), enabled_(config.AnyEnabled()), rng_(config.seed) {}

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Returns `base_latency` possibly inflated by jitter.
  int PerturbTransferLatency(int base_latency);

  /// True if this enqueue attempt should be transiently rejected.
  bool RejectEnqueue();

  /// Returns the payload with at most one injected bit flip.
  std::uint64_t PerturbPayload(std::uint64_t payload);

  /// Returns `base_latency` possibly inflated by a memory fault.
  int PerturbMemoryLatency(int base_latency);

  /// True if the core being stepped should freeze now.
  bool ShouldFreezeCore();
  int freeze_cycles() const { return config_.core_freeze_cycles; }

  /// Serializes/restores the mutable state (RNG position and counters);
  /// the config itself travels with the machine identity, not the
  /// snapshot.  Defined in sim/snapshot.cpp.
  void SaveState(ByteWriter& w) const;
  void LoadState(ByteReader& r);

 private:
  FaultConfig config_;
  bool enabled_ = false;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace fgpar::sim
