#include "sim/decoded.hpp"

#include "isa/decode.hpp"

namespace fgpar::sim {

DecodedProgram::DecodedProgram(const isa::Program& program,
                               const CoreTiming& timing)
    : taken_branch_busy_(1 +
                         static_cast<std::uint64_t>(timing.taken_branch_penalty)) {
  code_.reserve(program.size());
  for (const isa::Instruction& instr : program.code()) {
    DecodedInstruction di;
    di.op = instr.op;
    di.dst = instr.dst;
    di.src1 = instr.src1;
    di.src2 = instr.src2;
    di.queue = instr.queue;
    di.imm = instr.imm;
    di.fimm = instr.fimm;

    const isa::DecodedOperands ops = isa::OperandsOf(instr);
    di.num_gpr_srcs = ops.num_gpr;
    di.num_fpr_srcs = ops.num_fpr;
    for (int i = 0; i < 3; ++i) {
      di.gpr_srcs[i] = ops.gpr[i];
      di.fpr_srcs[i] = ops.fpr[i];
    }

    di.is_enqueue = isa::IsEnqueue(instr.op);
    di.is_dequeue = isa::IsDequeue(instr.op);
    di.is_fp_queue = isa::IsFpQueueOp(instr.op);
    di.result_latency = isa::IsLoad(instr.op) || isa::IsStore(instr.op)
                            ? 0
                            : ResultLatency(timing, instr.op);
    di.unpipelined_busy =
        IsUnpipelined(instr.op) ? ResultLatency(timing, instr.op) : 0;
    code_.push_back(di);
  }
}

}  // namespace fgpar::sim
