// Predecoded instruction cache for the simulator fast path.
//
// A DecodedProgram is built once per Machine (lazily, on the first
// fast-path Run) from the Program and that machine's CoreTiming.  Each
// entry carries everything Core::StepFast needs to issue without consulting
// a single opcode switch outside Execute: the flat source-register lists
// (isa::OperandsOf), the precomputed result latency, the unpipelined
// issue-stage occupancy, and the queue-op classification.  Instruction
// *semantics* are not duplicated here — both simulator paths execute
// through the same Core::ExecuteImpl switch, so a decode bug can skew
// timing (caught by the golden cycle tests) but can never diverge
// functional state.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hpp"
#include "sim/config.hpp"
#include "support/error.hpp"

namespace fgpar::sim {

/// One predecoded instruction.  Field names mirror isa::Instruction so the
/// shared Core::ExecuteImpl template works on either representation.
struct DecodedInstruction {
  isa::Opcode op = isa::Opcode::kNop;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::int16_t queue = -1;
  std::int64_t imm = 0;
  double fimm = 0.0;

  // ---- precomputed issue metadata ----
  std::uint8_t gpr_srcs[3] = {0, 0, 0};
  std::uint8_t num_gpr_srcs = 0;
  std::uint8_t fpr_srcs[3] = {0, 0, 0};
  std::uint8_t num_fpr_srcs = 0;
  bool is_enqueue = false;
  bool is_dequeue = false;
  bool is_fp_queue = false;
  /// ResultLatency(timing, op) for non-memory ops; 0 for loads/stores
  /// (their latency comes from the MemorySystem at execute time).
  std::int32_t result_latency = 0;
  /// Issue-stage occupancy for unpipelined ops (divide/sqrt); 0 means the
  /// op is fully pipelined.
  std::int32_t unpipelined_busy = 0;
};

/// The whole program predecoded against one CoreTiming.
class DecodedProgram {
 public:
  DecodedProgram(const isa::Program& program, const CoreTiming& timing);

  const DecodedInstruction& at(std::int64_t pc) const {
    FGPAR_CHECK_MSG(pc >= 0 && static_cast<std::size_t>(pc) < code_.size(),
                    "pc out of range");
    return code_[static_cast<std::size_t>(pc)];
  }

  std::size_t size() const { return code_.size(); }

  /// Issue-stage occupancy of a taken branch (1 + taken_branch_penalty).
  std::uint64_t taken_branch_busy() const { return taken_branch_busy_; }

 private:
  std::vector<DecodedInstruction> code_;
  std::uint64_t taken_branch_busy_;
};

}  // namespace fgpar::sim
