// Direct-threaded trace tier for the simulator (the third run tier,
// above RunFast).
//
// Once a control-transfer target has been reached kHotThreshold times, the
// ThreadedCache translates the basic block starting there into one or more
// *traces*: flat arrays of pre-resolved computed-goto handlers with all
// operands baked in at translate time — register indices, immediates,
// result-latency constants, and issue-stage occupancies all come from the
// DecodedProgram, so a trace can never disagree with the interpreted tiers
// on timing inputs.  ThreadedExec::Run then executes a trace without
// re-entering the per-instruction dispatch switch, without the per-issue
// pc bounds check, and without the per-op queue-classification tests: one
// indirect jump per simulated instruction.
//
// Only isa::IsThreadedTraceable opcodes are compiled (pure register ALU /
// moves / compares / branches / halt / nop).  A load, store, queue op, or
// call/ret ends the current trace segment; the segment's terminating kExit
// handler deoptimizes back to the interpreted fast path *at the exact
// pre-op machine state*, so the interpreter — which is the reference for
// boundary ordering (RunUntil pause vs max_cycles vs divide traps) —
// re-derives every edge case itself.  Conservative per-op cycle guards
// (`issue cycle >= min(stop_at, max_cycles)`) exit the same way, which is
// what makes pause/resume and error states bit-identical to RunFast: a
// trace exit always lands on a state RunFastSingle's loop could itself
// have been in at its loop boundary.
//
// Traces extend through not-taken conditional branches (superblocks) and
// loop internally when a branch re-targets the trace head, so a hot inner
// loop of traceable ops runs entirely inside the handler chain.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/decoded.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::sim {

class Core;

/// Why a trace handed control back to the interpreted tier.  kMemory,
/// kQueue, kCallRet, and kCap are baked into kExit ops at translate time;
/// kBoundary is the runtime cycle-limit / divide-trap guard.
enum class TraceExitCause : std::uint8_t {
  kMemory = 0,  // next op is a load/store (cache-model boundary)
  kQueue,       // next op is an enqueue/dequeue
  kCallRet,     // next op is call/callr/ret
  kCap,         // block-walk length cap reached
  kEnd,         // walked off the end of the program
  kBoundary,    // runtime guard: pause/max_cycles horizon or divide trap
};

/// Handler selector for one trace slot.  Order must match the handler
/// table in threaded.cpp.
enum class TraceOpKind : std::uint8_t {
  kAddI = 0, kSubI, kMulI, kDivI, kRemI, kAndI, kOrI, kXorI, kShlI, kShrI,
  kMinI, kMaxI, kLiI, kMovI, kCeqI, kCneI, kCltI, kCleI,
  kAddF, kSubF, kMulF, kDivF, kNegF, kAbsF, kSqrtF, kMinF, kMaxF, kFmaF,
  kLiF, kMovF, kItoF, kFtoI, kCeqF, kCltF, kCleF,
  kNop, kJmp, kBz, kBnz, kHalt,
  kExit,  // deoptimize: pc = this op's pc, state untouched
};

inline constexpr int kNumTraceOpKinds = static_cast<int>(TraceOpKind::kExit) + 1;

/// One direct-threaded slot: a handler address plus every operand the
/// handler needs, folded at translate time.
struct TraceOp {
  const void* handler = nullptr;  // resolved lazily on first execution
  TraceOpKind kind = TraceOpKind::kExit;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  TraceExitCause exit_cause = TraceExitCause::kEnd;  // kExit ops only
  std::int32_t latency = 0;  // result latency (cycles after issue)
  /// Issue-stage occupancy when the op issues: 1 for pipelined ops, the
  /// full latency for unpipelined divide/sqrt, and the *taken* occupancy
  /// (1 + taken_branch_penalty) for branch ops — a not-taken branch uses 1.
  std::int64_t busy = 1;
  std::int64_t pc = 0;   // program pc of this slot (deopt/exit writeback)
  std::int64_t imm = 0;  // immediate / branch target
  double fimm = 0.0;
};

/// A compiled superblock segment, anchored at ops[0].pc.
struct ThreadedTrace {
  std::int64_t head_pc = 0;
  bool resolved = false;  // handler addresses filled in by first Run
  std::vector<TraceOp> ops;
};

/// Translator + executor observability (sim.threaded.* counters; all
/// tier-dependent, so registered artifact=false — bench artifacts and
/// service response bytes stay identical across tiers).
struct ThreadedStats {
  std::uint64_t blocks_translated = 0;  // hot heads walked by the translator
  std::uint64_t traces = 0;             // compiled segments (>= blocks)
  std::uint64_t trace_enters = 0;
  std::uint64_t trace_exits = 0;
  std::uint64_t threaded_instructions = 0;  // issued inside traces
  std::uint64_t deopt_memory = 0;
  std::uint64_t deopt_queue = 0;
  std::uint64_t deopt_call_ret = 0;
  std::uint64_t deopt_cap = 0;
  std::uint64_t deopt_end = 0;
  std::uint64_t deopt_boundary = 0;
  /// Multi-core machines run RunFast wholesale (lockstep SMT arbitration
  /// and shared cache timing make cross-core trace execution unsound for
  /// bit-identity); counted once per Run call.
  std::uint64_t deopt_multi_core = 0;

  ThreadedStats& operator+=(const ThreadedStats& o);
};

/// Outcome of executing one trace.
struct TraceRun {
  enum class Exit : std::uint8_t {
    kBranch,    // a taken branch left the trace; pc is the target
    kDeopt,     // hit a kExit op; pc is the first untranslated op
    kBoundary,  // conservative cycle guard or divide trap; pc unchanged
                // state; the caller must take one interpreted step next
    kHalt,      // the core executed halt inside the trace
  };
  Exit exit = Exit::kBoundary;
  TraceExitCause deopt_cause = TraceExitCause::kBoundary;
  std::uint64_t executed = 0;  // instructions issued inside the trace
};

/// Executes traces against a Core's architectural state (friend of Core).
class ThreadedExec {
 public:
  /// Runs `trace` starting at its head with the machine clock at `now`.
  /// `limit` is min(stop_at, max_cycles): any op whose issue cycle would
  /// reach it exits kBoundary *before* issuing, leaving a state identical
  /// to a RunFastSingle loop boundary so the interpreter re-derives the
  /// precise pause/throw ordering.  Updates now/last_issue and the core's
  /// registers, scoreboards, pc, next-issue cycle, and stats in bulk at
  /// exit.
  static TraceRun Run(Core& core, ThreadedTrace& trace, std::uint64_t& now,
                      std::uint64_t limit, std::uint64_t& last_issue,
                      ThreadedStats& stats);
};

/// Per-machine trace cache: heat counters, the pc -> trace index, and the
/// translator.  Dropped wholesale on Snapshot::Restore (traces are derived
/// state, rebuilt lazily, exactly like the DecodedProgram).
class ThreadedCache {
 public:
  /// How many times a control-transfer target must be reached before its
  /// block is translated.
  static constexpr std::uint32_t kHotThreshold = 8;
  /// Segments shorter than this are not worth the trace enter/exit cost.
  static constexpr std::size_t kMinTraceOps = 3;
  /// Hard cap on ops walked per block (runaway-straight-line guard).
  static constexpr int kMaxBlockOps = 256;

  ThreadedCache(const DecodedProgram& decoded, ThreadedStats* stats,
                telemetry::TelemetrySink* span_sink);

  /// The trace anchored exactly at `pc`, or nullptr.  Out-of-range pcs
  /// (wild jumps) miss; the interpreter raises the reference pc-range
  /// error on its next step.
  ThreadedTrace* TraceAt(std::int64_t pc) {
    if (pc < 0 || static_cast<std::size_t>(pc) >= trace_at_.size()) {
      return nullptr;
    }
    const std::int32_t idx = trace_at_[static_cast<std::size_t>(pc)];
    return idx >= 0 ? traces_[static_cast<std::size_t>(idx)].get() : nullptr;
  }

  /// Notes that control just transferred to `target`; translates the block
  /// there once it crosses kHotThreshold.
  void NoteControlTransfer(std::int64_t target);

  /// Host-span sink for `translate` SpanEvents (nullptr = off).  Distinct
  /// from Machine::SetTelemetry: sim-event sinks force the reference loop,
  /// which would mean traces never exist while observed.
  void SetSpanSink(telemetry::TelemetrySink* sink) { span_sink_ = sink; }

 private:
  void TranslateBlockAt(std::int64_t head);

  static constexpr std::int32_t kColdPc = -1;   // not translated, counting
  static constexpr std::int32_t kNoTrace = -2;  // translated: nothing usable

  const DecodedProgram& decoded_;
  ThreadedStats* stats_;
  telemetry::TelemetrySink* span_sink_;
  std::vector<std::int32_t> trace_at_;  // per pc: trace index or kColdPc/kNoTrace
  std::vector<std::uint32_t> heat_;     // per pc: control transfers seen
  std::vector<std::unique_ptr<ThreadedTrace>> traces_;
};

}  // namespace fgpar::sim
