#include "sim/fault.hpp"

#include "support/error.hpp"

namespace fgpar::sim {

int FaultInjector::PerturbTransferLatency(int base_latency) {
  if (!enabled_ || config_.queue_jitter_prob <= 0.0) {
    return base_latency;
  }
  if (!rng_.NextBool(config_.queue_jitter_prob)) {
    return base_latency;
  }
  FGPAR_CHECK(config_.queue_jitter_max_cycles >= 1);
  const int extra = static_cast<int>(
      rng_.NextInt(1, config_.queue_jitter_max_cycles));
  ++stats_.latency_jitters;
  stats_.jitter_cycles_added += static_cast<std::uint64_t>(extra);
  return base_latency + extra;
}

bool FaultInjector::RejectEnqueue() {
  if (!enabled_ || config_.queue_reject_prob <= 0.0) {
    return false;
  }
  if (!rng_.NextBool(config_.queue_reject_prob)) {
    return false;
  }
  ++stats_.enqueue_rejects;
  return true;
}

std::uint64_t FaultInjector::PerturbPayload(std::uint64_t payload) {
  if (!enabled_ || config_.payload_flip_prob <= 0.0) {
    return payload;
  }
  if (!rng_.NextBool(config_.payload_flip_prob)) {
    return payload;
  }
  ++stats_.payload_flips;
  return payload ^ (1ull << rng_.NextBelow(64));
}

int FaultInjector::PerturbMemoryLatency(int base_latency) {
  if (!enabled_ || config_.mem_fault_prob <= 0.0) {
    return base_latency;
  }
  if (!rng_.NextBool(config_.mem_fault_prob)) {
    return base_latency;
  }
  ++stats_.mem_inflations;
  return base_latency + config_.mem_fault_extra_cycles;
}

bool FaultInjector::ShouldFreezeCore() {
  if (!enabled_ || config_.core_freeze_prob <= 0.0) {
    return false;
  }
  if (!rng_.NextBool(config_.core_freeze_prob)) {
    return false;
  }
  ++stats_.core_freezes;
  return true;
}

}  // namespace fgpar::sim
