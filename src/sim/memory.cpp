#include "sim/memory.hpp"

#include "support/error.hpp"

namespace fgpar::sim {

CacheTagArray::CacheTagArray(int sets, int ways, int line_words)
    : sets_(sets), ways_(ways), line_words_(line_words) {
  FGPAR_CHECK(sets > 0 && (sets & (sets - 1)) == 0);
  FGPAR_CHECK(ways > 0);
  FGPAR_CHECK(line_words > 0 && (line_words & (line_words - 1)) == 0);
  ways_storage_.resize(static_cast<std::size_t>(sets_) * static_cast<std::size_t>(ways_));
}

std::uint64_t CacheTagArray::LineOf(std::uint64_t addr) const {
  return addr / static_cast<std::uint64_t>(line_words_);
}

bool CacheTagArray::Access(std::uint64_t addr) {
  const std::uint64_t line = LineOf(addr);
  const std::uint64_t set = line & static_cast<std::uint64_t>(sets_ - 1);
  const std::uint64_t tag = line >> std::countr_zero(static_cast<unsigned>(sets_));
  Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
  ++tick_;
  Way* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

void CacheTagArray::Invalidate(std::uint64_t addr) {
  const std::uint64_t line = LineOf(addr);
  const std::uint64_t set = line & static_cast<std::uint64_t>(sets_ - 1);
  const std::uint64_t tag = line >> std::countr_zero(static_cast<unsigned>(sets_));
  Way* base = &ways_storage_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      return;
    }
  }
}

void CacheTagArray::Clear() {
  for (Way& way : ways_storage_) {
    way = Way{};
  }
  tick_ = 0;
}

MemorySystem::MemorySystem(const CacheConfig& config, int num_cores,
                           std::uint64_t num_words)
    : config_(config),
      words_(num_words, 0),
      l2_(config.l2_sets, config.l2_ways, config.line_words) {
  FGPAR_CHECK(num_cores > 0);
  l1_.reserve(static_cast<std::size_t>(num_cores));
  for (int c = 0; c < num_cores; ++c) {
    l1_.emplace_back(config.l1_sets, config.l1_ways, config.line_words);
  }
}

void MemorySystem::CheckAddr(std::uint64_t addr) const {
  FGPAR_CHECK_MSG(addr < words_.size(),
                  "memory access out of range: " + std::to_string(addr));
}

std::int64_t MemorySystem::ReadI64(std::uint64_t addr) const {
  CheckAddr(addr);
  return static_cast<std::int64_t>(words_[addr]);
}

double MemorySystem::ReadF64(std::uint64_t addr) const {
  CheckAddr(addr);
  return std::bit_cast<double>(words_[addr]);
}

void MemorySystem::WriteI64(std::uint64_t addr, std::int64_t value) {
  CheckAddr(addr);
  words_[addr] = static_cast<std::uint64_t>(value);
}

void MemorySystem::WriteF64(std::uint64_t addr, double value) {
  CheckAddr(addr);
  words_[addr] = std::bit_cast<std::uint64_t>(value);
}

std::uint64_t MemorySystem::ReadRaw(std::uint64_t addr) const {
  CheckAddr(addr);
  return words_[addr];
}

void MemorySystem::WriteRaw(std::uint64_t addr, std::uint64_t value) {
  CheckAddr(addr);
  words_[addr] = value;
}

int MemorySystem::AccessTimed(int core, std::uint64_t addr, bool is_write) {
  CheckAddr(addr);
  FGPAR_CHECK(core >= 0 && static_cast<std::size_t>(core) < l1_.size());
  // Coherence: a write invalidates the line in every other core's L1.
  if (is_write) {
    for (std::size_t c = 0; c < l1_.size(); ++c) {
      if (static_cast<int>(c) != core) {
        l1_[c].Invalidate(addr);
      }
    }
  }
  int latency;
  if (l1_[static_cast<std::size_t>(core)].Access(addr)) {
    ++l1_hits_;
    latency = config_.l1_latency;
  } else if (l2_.Access(addr)) {
    ++l2_hits_;
    latency = config_.l2_latency;
  } else {
    ++misses_;
    latency = config_.mem_latency;
  }
  if (faults_ != nullptr && faults_->enabled()) {
    latency = faults_->PerturbMemoryLatency(latency);
  }
  return latency;
}

void MemorySystem::ClearCaches() {
  for (CacheTagArray& l1 : l1_) {
    l1.Clear();
  }
  l2_.Clear();
  l1_hits_ = l2_hits_ = misses_ = 0;
}

}  // namespace fgpar::sim
