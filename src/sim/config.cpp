#include "sim/config.hpp"

#include "support/error.hpp"

namespace fgpar::sim {

using isa::Opcode;

std::string_view RunTierName(RunTier tier) {
  switch (tier) {
    case RunTier::kAuto: return "auto";
    case RunTier::kSlow: return "slow";
    case RunTier::kFast: return "fast";
    case RunTier::kThreaded: return "threaded";
  }
  FGPAR_UNREACHABLE("bad RunTier");
}

RunTier ParseRunTier(std::string_view name) {
  if (name == "auto") return RunTier::kAuto;
  if (name == "slow") return RunTier::kSlow;
  if (name == "fast") return RunTier::kFast;
  if (name == "threaded") return RunTier::kThreaded;
  throw Error("unknown run tier '" + std::string(name) +
              "' (expected auto, slow, fast, or threaded)");
}

int ResultLatency(const CoreTiming& t, Opcode op) {
  switch (op) {
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kAndI: case Opcode::kOrI:
    case Opcode::kXorI: case Opcode::kShlI: case Opcode::kShrI: case Opcode::kMinI:
    case Opcode::kMaxI: case Opcode::kLiI: case Opcode::kMovI: case Opcode::kCeqI:
    case Opcode::kCneI: case Opcode::kCltI: case Opcode::kCleI:
      return t.int_alu;
    case Opcode::kMulI:
      return t.int_mul;
    case Opcode::kDivI: case Opcode::kRemI:
      return t.int_div;
    case Opcode::kAddF: case Opcode::kSubF: case Opcode::kNegF: case Opcode::kAbsF:
    case Opcode::kMinF: case Opcode::kMaxF: case Opcode::kLiF: case Opcode::kMovF:
    case Opcode::kItoF: case Opcode::kFtoI: case Opcode::kCeqF: case Opcode::kCltF:
    case Opcode::kCleF:
      return t.fp_alu;
    case Opcode::kMulF:
      return t.fp_mul;
    case Opcode::kFmaF:
      return t.fp_fma;
    case Opcode::kDivF:
      return t.fp_div;
    case Opcode::kSqrtF:
      return t.fp_sqrt;
    case Opcode::kJmp: case Opcode::kBz: case Opcode::kBnz: case Opcode::kCall:
    case Opcode::kCallR: case Opcode::kRet: case Opcode::kHalt: case Opcode::kNop:
      return t.branch;
    case Opcode::kEnqI: case Opcode::kEnqF: case Opcode::kDeqI: case Opcode::kDeqF:
      return t.queue_op;
    case Opcode::kLdI: case Opcode::kLdIX: case Opcode::kLdF: case Opcode::kLdFX:
    case Opcode::kStI: case Opcode::kStIX: case Opcode::kStF: case Opcode::kStFX:
      FGPAR_UNREACHABLE("memory latency comes from the MemorySystem");
  }
  FGPAR_UNREACHABLE("bad opcode");
}

bool IsUnpipelined(Opcode op) {
  switch (op) {
    case Opcode::kDivI: case Opcode::kRemI: case Opcode::kDivF: case Opcode::kSqrtF:
      return true;
    default:
      return false;
  }
}

}  // namespace fgpar::sim
