// The paper's dedicated hardware communication queue (Section II).
//
// One HardwareQueue carries values of one register class (int or fp) in one
// direction between a fixed (sender, receiver) core pair.  Semantics:
//
//  * fixed capacity; an enqueue is rejected (the core stalls and retries)
//    while all slots are occupied — occupancy includes values still in
//    flight;
//  * a value enqueued at cycle T becomes visible to the receiver at cycle
//    T + transfer_latency (Figure 11 of the paper);
//  * dequeues block until the head value has arrived;
//  * strict FIFO order.
//
// Values are stored as raw 64-bit payloads; the int/fp distinction lives in
// the queue *identity*, matching the paper's separate GPR and FPR queues.
//
// Enqueue/Dequeue enforce their preconditions (CanEnqueue/CanDequeue) with
// diagnostic FGPAR_CHECK_MSG failures that describe the queue state, so
// caller bugs throw instead of silently corrupting FIFO state.
//
// An optional FaultInjector (sim/fault.hpp) may perturb transfers: latency
// jitter delays a value's arrival and a payload bit may flip in transit.
// Both hooks cost one null/enabled check when injection is off.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/fault.hpp"

namespace fgpar {
class ByteReader;
class ByteWriter;
}  // namespace fgpar

namespace fgpar::sim {

class HardwareQueue {
 public:
  HardwareQueue(int capacity, int transfer_latency);

  /// True if an enqueue can be accepted this cycle.
  bool CanEnqueue() const;

  /// Inserts a payload at cycle `now`; caller must have checked CanEnqueue
  /// (throws a diagnostic Error otherwise).
  void Enqueue(std::uint64_t payload, std::uint64_t now);

  /// True if the head value exists and has arrived by cycle `now`.
  bool CanDequeue(std::uint64_t now) const;

  /// Removes and returns the head payload; caller must have checked
  /// CanDequeue (throws a diagnostic Error otherwise).
  std::uint64_t Dequeue(std::uint64_t now);

  int size() const { return static_cast<int>(slots_.size()); }
  int capacity() const { return capacity_; }
  bool empty() const { return slots_.empty(); }

  /// Number of occupants still in flight at cycle `now` (enqueued but not
  /// yet visible to the receiver).
  int InFlight(std::uint64_t now) const;

  /// Arrival cycle of the head value.  Precondition: !empty().  Used by the
  /// fast run loop to jump a dequeue-blocked machine straight to the cycle
  /// where the head becomes visible.
  std::uint64_t HeadArrival() const { return slots_.front().arrival_cycle; }

  /// Installs (or clears, with nullptr) the fault injector consulted on
  /// every enqueue for latency jitter and payload corruption.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  /// Lifetime statistics.
  std::uint64_t total_transfers() const { return total_transfers_; }
  int max_occupancy() const { return max_occupancy_; }

  /// Serializes/restores slots and statistics (capacity and latency come
  /// from the machine config).  Defined in sim/snapshot.cpp.
  void SaveState(ByteWriter& w) const;
  void LoadState(ByteReader& r);

 private:
  struct Slot {
    std::uint64_t payload;
    std::uint64_t arrival_cycle;
  };

  int capacity_;
  int transfer_latency_;
  std::deque<Slot> slots_;
  FaultInjector* faults_ = nullptr;
  std::uint64_t total_transfers_ = 0;
  int max_occupancy_ = 0;
};

}  // namespace fgpar::sim
