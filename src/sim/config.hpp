// Simulator configuration.
//
// Defaults follow Section II / Section V of the paper: an in-order
// A2-class core, point-to-point hardware queues of 20 slots with a 5-cycle
// transfer latency and 1-cycle pipeline occupancy for enqueue/dequeue, and
// a two-level cache hierarchy whose miss latencies are in the tens of
// cycles ("communication between cores ... typically at the L2 cache level,
// with latency in the order of tens of cycles").
#pragma once

#include <cstdint>
#include <string_view>

#include "isa/opcode.hpp"
#include "sim/fault.hpp"

namespace fgpar::sim {

/// Which run loop executes the program.  All tiers produce bit-identical
/// simulated cycles, memory, and statistics (tests/sim_golden_test.cpp);
/// they differ only in host throughput and in which instrumentation hooks
/// they can carry.
///
///  * kAuto     — pick the fastest tier whose hooks are satisfied: the slow
///                loop when faults / telemetry / the watchdog are active,
///                the threaded tier otherwise.
///  * kSlow     — the instrumented reference loop (RunSlow).
///  * kFast     — the predecoded fast loop (RunFast), never the translator.
///  * kThreaded — the fast loop plus the direct-threaded block translator
///                (sim/threaded.hpp).  Instrumentation hooks still win: a
///                machine with faults, telemetry, or a watchdog runs the
///                reference loop regardless of this knob.
enum class RunTier : std::uint8_t { kAuto = 0, kSlow, kFast, kThreaded };

/// Stable lowercase name ("auto", "slow", "fast", "threaded").
std::string_view RunTierName(RunTier tier);

/// Inverse of RunTierName; throws fgpar::Error on an unknown name.
RunTier ParseRunTier(std::string_view name);

/// Per-operation-class issue latencies (cycles until the result register is
/// ready).  `unpipelined` classes also occupy the issue stage for their full
/// latency, like the A2's iterative divide/sqrt units.
struct CoreTiming {
  int int_alu = 1;
  int int_mul = 4;
  int int_div = 32;   // unpipelined
  int fp_alu = 6;
  int fp_mul = 6;
  int fp_fma = 6;
  int fp_div = 32;    // unpipelined
  int fp_sqrt = 40;   // unpipelined
  int branch = 1;
  int taken_branch_penalty = 2;  // front-end bubbles after a taken branch
  int queue_op = 1;   // paper: "Processing an enqueue or dequeue instruction
                      // takes one cycle in the processor pipeline."
};

/// Latency of an instruction's result, excluding memory (loads ask the
/// MemorySystem) and queue waiting time.
int ResultLatency(const CoreTiming& timing, isa::Opcode op);

/// True for opcodes that occupy the issue stage for their full latency.
bool IsUnpipelined(isa::Opcode op);

/// Cache hierarchy parameters.  Word-addressed; one word = 8 bytes.
struct CacheConfig {
  int line_words = 8;    // 64-byte lines
  int l1_sets = 64;      // 64 sets x 4 ways x 64B = 16 KB (A2 L1D)
  int l1_ways = 4;
  int l2_sets = 512;     // shared L2 slice
  int l2_ways = 8;
  int l1_latency = 6;    // load-to-use on L1 hit
  int l2_latency = 40;   // L1 miss, L2 hit
  int mem_latency = 200; // L2 miss
};

/// Hardware queue parameters (Section II, Section V).
struct QueueConfig {
  int capacity = 20;         // "The queue length is set to 20 slots"
  int transfer_latency = 5;  // "the transfer latency is set to 5 cycles"
};

struct MachineConfig {
  int num_cores = 4;
  /// SMT mode (Section II: the technique "can also be applied to multiple
  /// hardware threads on the same core").  num_cores counts *hardware
  /// threads*; consecutive groups of threads_per_core of them share one
  /// physical core's issue slot (round-robin, like the A2) and its L1.
  int threads_per_core = 1;
  std::uint64_t memory_words = 1ull << 22;  // 32 MB of 64-bit words
  CoreTiming timing;
  CacheConfig cache;
  QueueConfig queue;
  /// Abort if no core makes progress for this many cycles (deadlock guard).
  std::uint64_t no_progress_limit = 1ull << 20;
  /// Hard cap on simulated cycles.
  std::uint64_t max_cycles = 1ull << 40;
  /// Depth limit of the per-core call stack.
  int call_stack_limit = 64;
  /// Stall watchdog: if no core issues an instruction for this many cycles,
  /// the machine throws a structured StallError (see machine.hpp) instead
  /// of waiting for no_progress_limit / max_cycles.  0 disables the
  /// watchdog.  Must be much larger than the longest legitimate no-issue
  /// stretch (an L2 miss plus unpipelined latencies, a few hundred cycles).
  std::uint64_t stall_watchdog_cycles = 0;
  /// Deterministic fault injection (disabled by default; see sim/fault.hpp).
  FaultConfig faults;
  /// Forces the instrumented reference run loop even when the fast path is
  /// eligible (no faults, no watchdog, no trace).  Cycle counts, final
  /// memory, and stall statistics are bit-identical either way — this knob
  /// exists for the fast/slow equivalence tests and the decoded-cache
  /// on/off microbenchmarks, not for correctness.
  bool force_slow_path = false;
  /// Pins the run loop to one tier (see RunTier).  Results are bit-identical
  /// across tiers, so this knob — like force_slow_path, which it subsumes —
  /// is excluded from the snapshot identity hash and from service cache
  /// keys.  Instrumentation hooks (faults, telemetry, watchdog) and
  /// force_slow_path always override it toward the reference loop.
  RunTier force_tier = RunTier::kAuto;
};

}  // namespace fgpar::sim
