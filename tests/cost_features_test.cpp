// Golden regression tests for the analytic predictor's feature extraction
// (analysis::ExtractPartitionFeatures) and execution-granularity costing
// (analysis::CostModel::StmtOccupancy, analysis::ProfileData per-statement
// collection).
//
// The feature vector — partition count, transfers, balance ratio,
// critical path, bottleneck and cycle terms — is the predictor's entire
// view of a candidate, so its exact values over the 18 Table-I kernels are
// part of the model's contract: any change to splitting, fiberization,
// merging, or the cost model that shifts a feature fails here loudly.
// The table pins the default 4-core static compile (no profile).  To
// re-record after an *intentional* change, run with FGPAR_GOLDEN_PRINT=1
// and paste the emitted table.
//
// The fuzz half locks determinism rather than values: feature extraction
// and workload-grounded prediction over generated kernels must be pure
// functions of their inputs — bitwise-identical across repeated runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "analysis/cost.hpp"
#include "analysis/profile.hpp"
#include "compiler/options.hpp"
#include "frontend/parser.hpp"
#include "harness/random_kernel.hpp"
#include "harness/runner.hpp"
#include "ir/layout.hpp"
#include "kernels/sequoia.hpp"
#include "model/analytic.hpp"

namespace {

using namespace fgpar;

struct GoldenFeatures {
  const char* id;
  int partitions;
  int transfers;
  double balance_ratio;
  double critical_path;
  double bottleneck_cost;
  double cycle_penalty;
};

// Recorded from the default 4-core static compile (CompileOptions{},
// PredictKernel with no profile).  FGPAR_GOLDEN_PRINT=1 re-emits.
const GoldenFeatures kGolden[] = {
    {"lammps-1", 4, 7, 1.5, 176, 55, 0},
    {"lammps-2", 3, 9, 1.1666666666666667, 106, 63, 0},
    {"lammps-3", 4, 13, 1.1287128712871286, 230, 119, 0},
    {"lammps-4", 4, 9, 1.6666666666666667, 76, 35, 0},
    {"lammps-5", 4, 10, 1.0740740740740742, 165, 63, 205},
    {"irs-1", 4, 4, 1.1379310344827587, 130, 101, 0},
    {"irs-2", 3, 1, 2.5, 49, 31, 0},
    {"irs-3", 3, 1, 4, 37, 25, 0},
    {"irs-4", 4, 14, 1.1477272727272727, 159, 109, 0},
    {"irs-5", 4, 16, 1.1122448979591837, 167, 114, 0},
    {"umt2k-1", 4, 6, 1, 56, 30, 0},
    {"umt2k-2", 4, 4, 2.0833333333333335, 82, 27, 0},
    {"umt2k-3", 4, 10, 1.3125, 163, 46, 210},
    {"umt2k-4", 4, 15, 1.0888888888888888, 108, 106, 0},
    {"umt2k-5", 4, 7, 2.1111111111111112, 95, 41, 0},
    {"umt2k-6", 3, 4, 2.3999999999999999, 99, 52, 82},
    {"sphot-1", 4, 7, 4.666666666666667, 79, 59, 0},
    {"sphot-2", 4, 9, 1.1612903225806452, 230, 76, 145},
};

analysis::PartitionFeatures FeaturesFor(const kernels::SequoiaKernel& spec) {
  const compiler::CompileOptions options;  // default 4-core static compile
  return model::PredictKernel(kernels::ParseSequoia(spec), options, nullptr)
      .features;
}

TEST(CostFeatures, GoldenValuesOverThe18Kernels) {
  if (std::getenv("FGPAR_GOLDEN_PRINT") != nullptr) {
    for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
      const analysis::PartitionFeatures f = FeaturesFor(spec);
      std::printf("    {\"%s\", %d, %d, %.17g, %.17g, %.17g, %.17g},\n",
                  spec.id.c_str(), f.partitions, f.transfers, f.balance_ratio,
                  f.critical_path, f.bottleneck_cost, f.cycle_penalty);
    }
    GTEST_SKIP() << "golden table printed";
  }
  const std::vector<kernels::SequoiaKernel>& all = kernels::SequoiaKernels();
  ASSERT_EQ(all.size(), std::size(kGolden));
  for (std::size_t i = 0; i < all.size(); ++i) {
    SCOPED_TRACE(kGolden[i].id);
    ASSERT_EQ(all[i].id, kGolden[i].id);
    const analysis::PartitionFeatures f = FeaturesFor(all[i]);
    EXPECT_EQ(f.partitions, kGolden[i].partitions);
    EXPECT_EQ(f.transfers, kGolden[i].transfers);
    EXPECT_DOUBLE_EQ(f.balance_ratio, kGolden[i].balance_ratio);
    EXPECT_DOUBLE_EQ(f.critical_path, kGolden[i].critical_path);
    EXPECT_DOUBLE_EQ(f.bottleneck_cost, kGolden[i].bottleneck_cost);
    EXPECT_DOUBLE_EQ(f.cycle_penalty, kGolden[i].cycle_penalty);
  }
}

TEST(CostFeatures, ExtractionIsDeterministicOverFuzzKernels) {
  // Same seed -> same kernel -> bitwise-identical features and
  // workload-grounded predictions, across independently constructed
  // pipelines.  Guards against iteration-order or uninitialized-state
  // nondeterminism anywhere in rewrite + fiberize + merge + extract.
  for (std::uint64_t seed = 0xF00D; seed < 0xF00D + 12; ++seed) {
    SCOPED_TRACE(seed);
    const compiler::CompileOptions options;
    double first_speedup = 0.0;
    analysis::PartitionFeatures first{};
    for (int run = 0; run < 2; ++run) {
      const harness::RandomKernelCase random =
          harness::GenerateRandomKernel(seed);
      harness::KernelRunner runner(random.kernel, random.init);
      const model::Prediction prediction =
          runner.Predict(harness::RunConfig{});
      if (run == 0) {
        first = prediction.features;
        first_speedup = prediction.speedup;
        continue;
      }
      EXPECT_EQ(prediction.features.partitions, first.partitions);
      EXPECT_EQ(prediction.features.transfers, first.transfers);
      EXPECT_EQ(prediction.features.balance_ratio, first.balance_ratio);
      EXPECT_EQ(prediction.features.critical_path, first.critical_path);
      EXPECT_EQ(prediction.features.bottleneck_cost, first.bottleneck_cost);
      EXPECT_EQ(prediction.features.cycle_penalty, first.cycle_penalty);
      EXPECT_EQ(prediction.speedup, first_speedup);  // bitwise
    }
  }
}

// ---- execution-granularity costing ----------------------------------------

TEST(CostFeatures, StmtOccupancyChargesIssueSlotsAndLoads) {
  // o[i] = a[i] + 1.0 — the array load pays 2 issue slots (index + load)
  // plus L1 latency, the constant pays its materialization slot, the add
  // pays its op cost, and the store pays index + value + 3 issue slots.
  ir::Kernel k = frontend::ParseKernel(R"(
kernel occ {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    o[i] = a[i] + 1.0;
  }
}
)");
  const sim::CoreTiming timing;
  const sim::CacheConfig cache;
  const analysis::CostModel cost(timing, cache, nullptr);
  const ir::Stmt& store = k.loop().body[0];
  ASSERT_EQ(store.kind, ir::StmtKind::kStoreArray);
  const double issue = 1.0;
  const double load = issue * 2 + cache.l1_latency;  // a[i]
  const double constant = issue;                     // 1.0 materialized
  const double add = timing.fp_alu;                  // f64 +
  // Store index (an IvRef) rides in a register; the store itself pays
  // base + index add + the store issue slot.
  const double expected = (load + constant + add) + 3 * issue;
  EXPECT_DOUBLE_EQ(cost.StmtOccupancy(k, store), expected);
}

TEST(CostFeatures, StmtOccupancyChargesIfAsConditionPlusBranch) {
  // The kIf statement itself costs condition + branch + taken penalty;
  // the arms are costed separately by callers, weighted by how often each
  // side actually ran (ProfileData::StmtFrequency).
  ir::Kernel k = frontend::ParseKernel(R"(
kernel cond {
  array i64 a[8];
  array i64 o[8];
  loop i = 0 .. 8 {
    if (a[i] > 0) {
      o[i] = a[i] * 3;
    }
  }
}
)");
  const sim::CoreTiming timing;
  const sim::CacheConfig cache;
  const analysis::CostModel cost(timing, cache, nullptr);
  const ir::Stmt& branch = k.loop().body[0];
  ASSERT_EQ(branch.kind, ir::StmtKind::kIf);
  const double issue = 1.0;
  const double load = issue * 2 + cache.l1_latency;    // a[i]
  const double compare = std::max<double>(timing.int_alu, issue);
  const double condition = load + issue /* const 0 */ + compare;
  EXPECT_DOUBLE_EQ(
      cost.StmtOccupancy(k, branch),
      condition + timing.branch + timing.taken_branch_penalty);
}

// ---- per-statement profile -------------------------------------------------

TEST(CostFeatures, ProfileCollectsPerStatementFrequencies) {
  // The then-arm executes for i in [0, 4): frequency 0.5 against 8
  // iterations; the loop-body statements run every iteration.
  ir::Kernel k = frontend::ParseKernel(R"(
kernel freq {
  array i64 a[8];
  array i64 o[8];
  loop i = 0 .. 8 {
    if (a[i] < 4) {
      o[i] = a[i] + 1;
    }
  }
}
)");
  const ir::DataLayout layout(k);
  const ir::ParamEnv params(k);
  std::vector<std::uint64_t> image(layout.end(), 0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    image[layout.AddressOf(0) + i] = i;  // a[i] = i
  }
  const analysis::ProfileData profile = analysis::ProfileData::Collect(
      k, layout, params, image, sim::CacheConfig{});
  EXPECT_EQ(profile.iterations(), 8u);
  const ir::Stmt& branch_stmt = k.loop().body[0];
  ASSERT_EQ(branch_stmt.kind, ir::StmtKind::kIf);
  const ir::StmtId branch = branch_stmt.id;
  const ir::StmtId store = branch_stmt.then_body[0].id;
  EXPECT_DOUBLE_EQ(profile.StmtFrequency(branch), 1.0);
  EXPECT_DOUBLE_EQ(profile.StmtFrequency(store), 0.5);
  EXPECT_EQ(profile.StmtCount(store), 4u);
  // A statement that never ran reports frequency 0, not the fallback.
  EXPECT_DOUBLE_EQ(profile.StmtFrequency(static_cast<ir::StmtId>(9999)), 0.0);
}

TEST(CostFeatures, PerStatementLatencyBeatsSymbolWideAverage) {
  // Two statements load the same symbol with different locality: a
  // streaming cold read (a[i]) and a warm re-read cycling over 4 hot
  // slots (a[i - (i/4)*4]).  The per-(stmt, symbol) latency must
  // separate them while the symbol-wide average sits in between.
  ir::Kernel k = frontend::ParseKernel(R"(
kernel split {
  array f64 a[4096];
  array f64 o[4096];
  loop i = 0 .. 4096 {
    f64 cold = a[i];
    f64 warm = a[i - (i / 4) * 4];
    o[i] = cold + warm;
  }
}
)");
  const ir::DataLayout layout(k);
  const ir::ParamEnv params(k);
  const std::vector<std::uint64_t> image(layout.end(), 0);
  const analysis::ProfileData profile = analysis::ProfileData::Collect(
      k, layout, params, image, sim::CacheConfig{});
  const ir::StmtId cold = k.loop().body[0].id;
  const ir::StmtId warm = k.loop().body[1].id;
  const double cold_latency = profile.LoadLatencyAt(cold, 0, 0.0);
  const double warm_latency = profile.LoadLatencyAt(warm, 0, 0.0);
  const double symbol_wide = profile.LoadLatency(0, 0.0);
  EXPECT_GT(cold_latency, warm_latency);
  EXPECT_GE(cold_latency, symbol_wide);
  EXPECT_LE(warm_latency, symbol_wide);
  // Unknown (stmt, symbol) pairs fall back to the symbol-wide average,
  // then to the caller's fallback.
  EXPECT_DOUBLE_EQ(
      profile.LoadLatencyAt(static_cast<ir::StmtId>(9999), 0, 1.0),
      symbol_wide);
  EXPECT_DOUBLE_EQ(
      profile.LoadLatencyAt(static_cast<ir::StmtId>(9999), 77, 42.0), 42.0);
}

TEST(CostFeatures, ExecParamsGrowLoopOverheadOnly) {
  const compiler::CompileOptions options;
  const model::AnalyticParams base = model::AnalyticParams::FromOptions(options);
  const model::AnalyticParams exec =
      model::AnalyticParams::ExecFromOptions(options);
  EXPECT_DOUBLE_EQ(exec.queue_op_cost, base.queue_op_cost);
  EXPECT_DOUBLE_EQ(exec.transfer_latency, base.transfer_latency);
  // Induction bump + bound compare + taken backedge under the default
  // timing model: 2*1 + 1 + 2.
  EXPECT_DOUBLE_EQ(exec.loop_overhead, 5.0);
  EXPECT_GT(exec.loop_overhead, base.loop_overhead);
}

}  // namespace
