// Tests for the resilient sweep supervisor stack: the checkpoint journal
// ("fgpar-ckpt-v1"), retry/deadline/quarantine policies, checkpoint/resume
// byte-identity, repro bundles, and the runner's cycle budget.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bench_artifact.hpp"
#include "harness/checkpoint.hpp"
#include "harness/repro.hpp"
#include "harness/runner.hpp"
#include "harness/supervisor.hpp"
#include "kernels/experiments.hpp"
#include "support/error.hpp"

namespace {

using namespace fgpar;
using harness::PointContext;
using harness::PointFailure;
using harness::SupervisorConfig;
using harness::SweepCheckpoint;
using harness::SweepOutcome;
using harness::SweepSupervisor;

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

// ---- checkpoint journal ---------------------------------------------------

// The journal the checked-in golden (tests/golden/fgpar_ckpt_v1.golden)
// was captured from.  Any format drift — header layout, fingerprint
// algorithm, hex encoding, line format — fails the golden comparison.
SweepCheckpoint MakeGoldenJournal(const std::string& path) {
  const std::vector<std::string> labels = {"alpha", "beta", "gamma"};
  SweepCheckpoint journal(path, "golden",
                          harness::GridFingerprint("golden", labels));
  journal.RecordPoint(0, "alpha-result");
  journal.RecordPoint(2, std::string("binary\x00\x1f\xff payload", 17));
  return journal;
}

TEST(Checkpoint, GoldenFormatIsStable) {
  const std::string path = TempPath("ckpt_golden_rebuild");
  MakeGoldenJournal(path);
  EXPECT_EQ(ReadFile(path),
            ReadFile(std::string(FGPAR_GOLDEN_DIR) + "/fgpar_ckpt_v1.golden"));
  std::remove(path.c_str());
}

TEST(Checkpoint, GoldenJournalLoads) {
  const std::vector<std::string> labels = {"alpha", "beta", "gamma"};
  const SweepCheckpoint journal = SweepCheckpoint::LoadOrCreate(
      std::string(FGPAR_GOLDEN_DIR) + "/fgpar_ckpt_v1.golden", "golden",
      harness::GridFingerprint("golden", labels));
  EXPECT_EQ(journal.CompletedCount(), 2u);
  EXPECT_TRUE(journal.HasPoint(0));
  EXPECT_FALSE(journal.HasPoint(1));
  ASSERT_NE(journal.PointPayload(2), nullptr);
  EXPECT_EQ(*journal.PointPayload(2),
            std::string("binary\x00\x1f\xff payload", 17));
}

TEST(Checkpoint, RecordAndResumeRoundTrip) {
  const std::string path = TempPath("ckpt_roundtrip");
  std::remove(path.c_str());
  const std::vector<std::string> labels = {"p0", "p1", "p2", "p3"};
  const std::uint64_t fp = harness::GridFingerprint("trip", labels);
  {
    SweepCheckpoint journal(path, "trip", fp);
    journal.RecordPoint(1, "one");
    journal.RecordPoint(3, "three");
    // Idempotent re-record of the identical payload is fine...
    journal.RecordPoint(1, "one");
    // ...but a different payload for the same point is a determinism bug.
    EXPECT_THROW(journal.RecordPoint(1, "ONE"), Error);
  }
  const SweepCheckpoint loaded = SweepCheckpoint::LoadOrCreate(path, "trip", fp);
  EXPECT_EQ(loaded.CompletedCount(), 2u);
  EXPECT_TRUE(loaded.HasPoint(1) && loaded.HasPoint(3));
  EXPECT_FALSE(loaded.HasPoint(0) || loaded.HasPoint(2));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileYieldsEmptyJournal) {
  const SweepCheckpoint journal = SweepCheckpoint::LoadOrCreate(
      TempPath("ckpt_does_not_exist"), "fresh", 42);
  EXPECT_EQ(journal.CompletedCount(), 0u);
}

TEST(Checkpoint, RejectsVersionNameFingerprintAndCorruption) {
  const std::string golden =
      ReadFile(std::string(FGPAR_GOLDEN_DIR) + "/fgpar_ckpt_v1.golden");
  const std::vector<std::string> labels = {"alpha", "beta", "gamma"};
  const std::uint64_t fp = harness::GridFingerprint("golden", labels);
  const std::string path = TempPath("ckpt_reject");

  const auto expect_rejected = [&](const std::string& contents,
                                   const std::string& needle) {
    WriteFile(path, contents);
    try {
      SweepCheckpoint::LoadOrCreate(path, "golden", fp);
      FAIL() << "expected rejection for: " << needle;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // A newer (or older) format version must be rejected, never merged.
  std::string wrong_version = golden;
  wrong_version.replace(wrong_version.find("-v1"), 3, "-v2");
  expect_rejected(wrong_version, "unsupported checkpoint version");
  // A journal for another sweep or another grid shape must be rejected.
  std::string wrong_name = golden;
  wrong_name.replace(wrong_name.find("golden"), 6, "other1");
  expect_rejected(wrong_name, "belongs to sweep");
  std::string wrong_fp = golden;
  const std::size_t fp_pos = wrong_fp.find(' ', wrong_fp.find("golden")) + 1;
  wrong_fp[fp_pos] = wrong_fp[fp_pos] == '0' ? '1' : '0';
  expect_rejected(wrong_fp, "different grid");
  // Structural corruption.
  expect_rejected("", "empty file");
  expect_rejected(golden + "garbage line here\n", "unexpected line");
  expect_rejected(golden + "point 0 6f74686572\n", "duplicate point");
  expect_rejected(golden + "point x deadbeef\n", "bad point index");
  expect_rejected(golden + "point 5 nothex\n", "");  // bad hex throws too
  std::remove(path.c_str());
}

TEST(Checkpoint, GridFingerprintDiscriminates) {
  const std::uint64_t base =
      harness::GridFingerprint("fig12", {"a cores=2", "b cores=2"});
  EXPECT_EQ(base, harness::GridFingerprint("fig12", {"a cores=2", "b cores=2"}));
  EXPECT_NE(base, harness::GridFingerprint("fig13", {"a cores=2", "b cores=2"}));
  EXPECT_NE(base, harness::GridFingerprint("fig12", {"b cores=2", "a cores=2"}));
  EXPECT_NE(base, harness::GridFingerprint("fig12", {"a cores=2"}));
  // Labels cannot be reassociated across the separator.
  EXPECT_NE(harness::GridFingerprint("x", {"ab", "c"}),
            harness::GridFingerprint("x", {"a", "bc"}));
}

TEST(Checkpoint, SliceFingerprintDiscriminatesAndIsNeverZero) {
  const std::uint64_t grid =
      harness::GridFingerprint("fig12", {"a", "b", "c", "d"});
  const std::uint64_t slice01 = harness::SliceFingerprint(grid, {0, 1});
  EXPECT_NE(slice01, 0u);
  EXPECT_EQ(slice01, harness::SliceFingerprint(grid, {0, 1}));
  // Different point sets, different order, different grid: all distinct.
  EXPECT_NE(slice01, harness::SliceFingerprint(grid, {0, 2}));
  EXPECT_NE(slice01, harness::SliceFingerprint(grid, {1, 0}));
  EXPECT_NE(slice01, harness::SliceFingerprint(grid, {0, 1, 2}));
  EXPECT_NE(slice01, harness::SliceFingerprint(grid + 1, {0, 1}));
}

TEST(Checkpoint, SliceJournalRejectionMatrix) {
  // The four-way matrix of (journal slice) x (loader expectation): only
  // the matching pair loads; every mismatch is a structured rejection.
  const std::string path = TempPath("ckpt_slice_matrix");
  std::remove(path.c_str());
  const std::vector<std::string> labels = {"p0", "p1", "p2", "p3"};
  const std::uint64_t fp = harness::GridFingerprint("slicem", labels);
  const std::uint64_t slice = harness::SliceFingerprint(fp, {1, 3});
  const std::uint64_t other_slice = harness::SliceFingerprint(fp, {0, 2});
  {
    SweepCheckpoint journal(path, "slicem", fp, slice);
    journal.RecordPoint(1, "one");
    journal.RecordPoint(3, "three");
  }
  // Header carries both fingerprints.
  const std::string text = ReadFile(path);
  EXPECT_NE(text.find("slice="), std::string::npos) << text;

  // Matching slice loads.
  const SweepCheckpoint loaded =
      SweepCheckpoint::LoadOrCreate(path, "slicem", fp, slice);
  EXPECT_EQ(loaded.CompletedCount(), 2u);
  // Whole-grid load of a slice journal rejects.
  EXPECT_THROW(SweepCheckpoint::LoadOrCreate(path, "slicem", fp), Error);
  // A different slice rejects.
  EXPECT_THROW(SweepCheckpoint::LoadOrCreate(path, "slicem", fp, other_slice),
               Error);

  // Slice load of a whole-grid journal rejects; whole-grid load still
  // works (single-host journals stay accepted, no format break).
  std::remove(path.c_str());
  {
    SweepCheckpoint journal(path, "slicem", fp);
    journal.RecordPoint(0, "zero");
  }
  EXPECT_EQ(ReadFile(path).find("slice="), std::string::npos);
  EXPECT_NO_THROW(SweepCheckpoint::LoadOrCreate(path, "slicem", fp));
  EXPECT_THROW(SweepCheckpoint::LoadOrCreate(path, "slicem", fp, slice),
               Error);
  std::remove(path.c_str());
}

// ---- supervisor policies --------------------------------------------------

SupervisorConfig BasicConfig(const std::string& name, std::size_t points) {
  SupervisorConfig config;
  config.name = name;
  for (std::size_t i = 0; i < points; ++i) {
    config.labels.push_back("point-" + std::to_string(i));
  }
  config.sweep_threads = 2;
  config.base_seed = 77;
  return config;
}

TEST(Supervisor, CleanSweepUsesBaseSeedOnFirstAttempt) {
  SupervisorConfig config = BasicConfig("clean", 9);
  SweepSupervisor supervisor(config);
  const SweepOutcome outcome = supervisor.Run([&](const PointContext& ctx) {
    EXPECT_EQ(ctx.attempt, 0);
    EXPECT_EQ(ctx.seed, 77u);  // attempt 0 == the unsupervised sweep's seed
    return "r" + std::to_string(ctx.index);
  });
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_EQ(outcome.resumed_points, 0u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_TRUE(outcome.completed[i]);
    EXPECT_EQ(outcome.payloads[i], "r" + std::to_string(i));
  }
  EXPECT_TRUE(supervisor.WithinFailureBudget(outcome));
}

TEST(Supervisor, RetriesReseedDeterministically) {
  SupervisorConfig config = BasicConfig("retry", 5);
  config.max_retries = 2;
  std::atomic<int> attempts_seen{0};
  SweepSupervisor supervisor(config);
  const SweepOutcome outcome = supervisor.Run([&](const PointContext& ctx) {
    if (ctx.index == 3 && ctx.attempt < 2) {
      ++attempts_seen;
      throw Error("transient failure on attempt " +
                  std::to_string(ctx.attempt));
    }
    if (ctx.index == 3) {
      // Retry seeds derive from (base, index, attempt) and never collide
      // with the base stream.
      EXPECT_EQ(ctx.seed, SweepSupervisor::AttemptSeed(77, 3, 2));
      EXPECT_NE(ctx.seed, 77u);
    }
    return std::string("ok");
  });
  EXPECT_EQ(attempts_seen.load(), 2);
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_TRUE(outcome.completed[3]);
}

TEST(Supervisor, QuarantineRecordsStructuredFailures) {
  SupervisorConfig config = BasicConfig("quarantine", 8);
  config.max_retries = 1;
  config.failure_budget = 1;
  std::atomic<int> ran{0};
  SweepSupervisor supervisor(config);
  const SweepOutcome outcome = supervisor.Run(
      [&](const PointContext& ctx) -> std::string {
        ++ran;
        if (ctx.index == 2 || ctx.index == 6) {
          throw Error("boom at " + std::to_string(ctx.index) + " attempt " +
                      std::to_string(ctx.attempt));
        }
        return "ok";
      },
      [&](const PointContext& ctx, const PointFailure& failure) {
        EXPECT_EQ(ctx.attempt, 1);  // the final attempt's context
        return "bundle_" + std::to_string(failure.index);
      });
  // Both failures are quarantined — the sweep never aborts — and every
  // point ran (6 clean + 2 failing x 2 attempts).
  EXPECT_EQ(ran.load(), 10);
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_EQ(outcome.failures[0].index, 2u);
  EXPECT_EQ(outcome.failures[1].index, 6u);
  EXPECT_EQ(outcome.failures[0].attempts, 2);
  EXPECT_EQ(outcome.failures[0].message, "boom at 2 attempt 1");
  EXPECT_EQ(outcome.failures[0].last_seed,
            SweepSupervisor::AttemptSeed(77, 2, 1));
  EXPECT_EQ(outcome.failures[0].repro_bundle, "bundle_2");
  EXPECT_FALSE(outcome.failures[0].deadline_exceeded);
  // 2 failures > budget of 1.
  EXPECT_FALSE(supervisor.WithinFailureBudget(outcome));
  // The typed exception survives for callers that need it.
  EXPECT_THROW(std::rethrow_exception(outcome.failures[1].exception), Error);
}

TEST(Supervisor, WallClockDeadlineQuarantinesSlowPoints) {
  SupervisorConfig config = BasicConfig("deadline", 4);
  config.point_deadline_seconds = 0.02;
  SweepSupervisor supervisor(config);
  const SweepOutcome outcome = supervisor.Run([&](const PointContext& ctx) {
    if (ctx.index == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    return "ok";
  });
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 1u);
  EXPECT_TRUE(outcome.failures[0].deadline_exceeded);
  EXPECT_NE(outcome.failures[0].message.find("exceeded its wall-clock deadline"),
            std::string::npos)
      << outcome.failures[0].message;
}

TEST(Supervisor, CheckpointResumeSkipsCompletedPoints) {
  const std::string path = TempPath("ckpt_supervisor_resume");
  std::remove(path.c_str());
  SupervisorConfig config = BasicConfig("resume", 12);
  config.checkpoint_path = path;

  // First run: point 7 fails (failures are never journaled).
  std::atomic<int> first_runs{0};
  const SweepOutcome first = SweepSupervisor(config).Run(
      [&](const PointContext& ctx) -> std::string {
        ++first_runs;
        if (ctx.index == 7) {
          throw Error("flaky");
        }
        return "payload-" + std::to_string(ctx.index * ctx.index);
      });
  EXPECT_EQ(first_runs.load(), 12);
  ASSERT_EQ(first.failures.size(), 1u);

  // Resumed run: only the failed point is recomputed, and the combined
  // payload set is identical to an uninterrupted clean run.
  config.resume = true;
  std::atomic<int> second_runs{0};
  const SweepOutcome second = SweepSupervisor(config).Run(
      [&](const PointContext& ctx) {
        ++second_runs;
        EXPECT_EQ(ctx.index, 7u);  // everything else replays from the journal
        return std::string("payload-49");
      });
  EXPECT_EQ(second_runs.load(), 1);
  EXPECT_EQ(second.resumed_points, 11u);
  EXPECT_TRUE(second.failures.empty());
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(second.completed[i]);
    EXPECT_EQ(second.payloads[i], "payload-" + std::to_string(i * i));
  }
  std::remove(path.c_str());
}

TEST(Supervisor, NonResumeRunRestartsAnExistingJournal) {
  const std::string path = TempPath("ckpt_supervisor_restart");
  std::remove(path.c_str());
  SupervisorConfig config = BasicConfig("restart", 3);
  config.checkpoint_path = path;
  SweepSupervisor(config).Run(
      [](const PointContext& ctx) { return std::string("old"); });
  // Without --resume the journal is rewritten from scratch: every point
  // recomputes and the file ends up holding the new payloads.
  std::atomic<int> runs{0};
  const SweepOutcome outcome = SweepSupervisor(config).Run(
      [&](const PointContext& ctx) {
        ++runs;
        return std::string("new");
      });
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(outcome.resumed_points, 0u);
  const SweepCheckpoint journal = SweepCheckpoint::LoadOrCreate(
      path, "restart", harness::GridFingerprint("restart", config.labels));
  ASSERT_NE(journal.PointPayload(0), nullptr);
  EXPECT_EQ(*journal.PointPayload(0), "new");
  std::remove(path.c_str());
}

TEST(Supervisor, FailureSectionRendersOnlyWhenNonEmpty) {
  harness::BenchArtifact artifact;
  artifact.name = "quarantine_demo";
  EXPECT_EQ(artifact.ToJson(false).find("failures"), std::string::npos);

  SweepOutcome outcome;
  PointFailure failure;
  failure.index = 4;
  failure.label = "lammps-2 cores=4";
  failure.message = "deadlock: ...";
  failure.attempts = 3;
  failure.last_seed = 12345;
  failure.repro_bundle = "repro_fig12_point4";
  outcome.failures.push_back(failure);
  harness::AddFailurePoints(outcome, artifact);
  const std::string json = artifact.ToJson(false);
  EXPECT_NE(json.find("\"failures\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"label\": \"lammps-2 cores=4\""), std::string::npos);
  EXPECT_NE(json.find("\"repro_bundle\": \"repro_fig12_point4\""),
            std::string::npos);
  EXPECT_NE(json.find("\"seed\": 12345"), std::string::npos);
}

// ---- KernelRun payload codec ----------------------------------------------

TEST(Supervisor, KernelRunPayloadRoundTrips) {
  harness::KernelRun run;
  run.kernel_name = "lammps-1";
  run.seq_cycles = 123456789;
  run.par_cycles = 45678;
  run.speedup = 2.7025;
  run.cores_used = 4;
  run.initial_fibers = 9;
  run.data_deps = 3;
  run.load_balance = 0.875;
  run.com_ops = 5;
  run.queues_used = 6;
  run.seq_instructions = 987654;
  run.par_instructions = 987660;
  run.par_queue_transfers = 4242;
  run.max_queue_occupancy = 17;
  run.fallback_used = true;
  run.retries = 2;
  run.failure_reason = "watchdog: ...";
  run.fault_stats.payload_flips = 11;
  run.fault_stats.core_freezes = 1;

  const std::string payload = harness::EncodeKernelRun(run);
  const harness::KernelRun decoded = harness::DecodeKernelRun(payload);
  EXPECT_EQ(decoded.kernel_name, run.kernel_name);
  EXPECT_EQ(decoded.seq_cycles, run.seq_cycles);
  EXPECT_EQ(decoded.par_cycles, run.par_cycles);
  EXPECT_DOUBLE_EQ(decoded.speedup, run.speedup);
  EXPECT_EQ(decoded.cores_used, run.cores_used);
  EXPECT_EQ(decoded.initial_fibers, run.initial_fibers);
  EXPECT_EQ(decoded.data_deps, run.data_deps);
  EXPECT_DOUBLE_EQ(decoded.load_balance, run.load_balance);
  EXPECT_EQ(decoded.com_ops, run.com_ops);
  EXPECT_EQ(decoded.queues_used, run.queues_used);
  EXPECT_EQ(decoded.seq_instructions, run.seq_instructions);
  EXPECT_EQ(decoded.par_instructions, run.par_instructions);
  EXPECT_EQ(decoded.par_queue_transfers, run.par_queue_transfers);
  EXPECT_EQ(decoded.max_queue_occupancy, run.max_queue_occupancy);
  EXPECT_EQ(decoded.fallback_used, run.fallback_used);
  EXPECT_EQ(decoded.retries, run.retries);
  EXPECT_EQ(decoded.failure_reason, run.failure_reason);
  EXPECT_EQ(decoded.fault_stats.payload_flips, 11u);
  EXPECT_EQ(decoded.fault_stats.core_freezes, 1u);
  // And the byte encoding is stable: re-encoding the decode is identical.
  EXPECT_EQ(harness::EncodeKernelRun(decoded), payload);

  EXPECT_THROW(harness::DecodeKernelRun(payload.substr(0, payload.size() / 2)),
               Error);
  EXPECT_THROW(harness::DecodeKernelRun(payload + "x"), Error);
}

// ---- runner integration: cycle budget + failure hook ----------------------

TEST(Supervisor, CycleBudgetAbortsRunsAsCycleBudgetError) {
  const kernels::SequoiaKernel& kernel = kernels::SequoiaKernels()[0];
  kernels::ExperimentConfig experiment;
  experiment.cores = 2;
  harness::RunConfig config = kernels::ToRunConfig(experiment);
  config.max_cycles = 50;  // far below any real kernel's runtime
  EXPECT_THROW(kernels::RunKernel(kernel, config), harness::CycleBudgetError);
}

TEST(Supervisor, ParallelFailureHookSeesTheFailedMachine) {
  const kernels::SequoiaKernel& kernel = kernels::SequoiaKernels()[0];
  kernels::ExperimentConfig experiment;
  experiment.cores = 2;
  harness::RunConfig config = kernels::ToRunConfig(experiment);
  // Flip every payload in transit: the parallel run cannot verify.
  config.faults.payload_flip_prob = 1.0;
  config.stall_watchdog_cycles = 200000;
  config.fallback.max_retries = 1;
  config.fallback.fall_back_to_sequential = false;
  std::vector<std::uint8_t> snapshot;
  int hook_calls = 0;
  config.on_parallel_failure = [&](const sim::Machine& machine, const Error&,
                                   int attempt) {
    ++hook_calls;
    snapshot = machine.Snapshot();
  };
  EXPECT_THROW(kernels::RunKernel(kernel, config), Error);
  EXPECT_EQ(hook_calls, 2);  // attempt 0 + one retry
  EXPECT_FALSE(snapshot.empty());
}

// ---- SIGTERM drain --------------------------------------------------------

TEST(Supervisor, DrainStopsNewPointsAndResumeFinishesTheGrid) {
  SweepSupervisor::ResetDrainForTest();
  const std::string path = TempPath("ckpt_drain");
  std::remove(path.c_str());
  SupervisorConfig config = BasicConfig("drain", 8);
  config.sweep_threads = 1;  // deterministic point order for the drill
  config.drain_on_sigterm = true;
  config.checkpoint_path = path;

  // The drain request lands while point 2 is in flight: it must still
  // finish and be journaled; points 3..7 must never start.
  const SweepOutcome stopped = SweepSupervisor(config).Run(
      [&](const PointContext& ctx) {
        if (ctx.index == 2) {
          SweepSupervisor::RequestDrain();  // what the signal handler does
        }
        return "r" + std::to_string(ctx.index);
      });
  EXPECT_TRUE(stopped.stopped);
  EXPECT_EQ(stopped.skipped_points, 5u);
  EXPECT_TRUE(stopped.failures.empty());  // skipped != failed
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(stopped.completed[i]) << i;
  }
  for (std::size_t i = 3; i < 8; ++i) {
    EXPECT_FALSE(stopped.completed[i]) << i;
  }

  // A --resume run recomputes exactly the skipped points.
  SweepSupervisor::ResetDrainForTest();
  config.resume = true;
  std::atomic<int> recomputed{0};
  const SweepOutcome finished = SweepSupervisor(config).Run(
      [&](const PointContext& ctx) {
        EXPECT_GE(ctx.index, 3u);
        ++recomputed;
        return "r" + std::to_string(ctx.index);
      });
  EXPECT_FALSE(finished.stopped);
  EXPECT_EQ(finished.resumed_points, 3u);
  EXPECT_EQ(recomputed.load(), 5);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(finished.completed[i]) << i;
    EXPECT_EQ(finished.payloads[i], "r" + std::to_string(i));
  }
  std::remove(path.c_str());
}

TEST(Supervisor, DrainFlagNeedsOptIn) {
  // Without drain_on_sigterm the sticky flag is ignored: sweeps that did
  // not install the handler keep their all-points semantics.
  SweepSupervisor::RequestDrain();
  SupervisorConfig config = BasicConfig("nodrain", 4);
  const SweepOutcome outcome = SweepSupervisor(config).Run(
      [](const PointContext& ctx) { return "r" + std::to_string(ctx.index); });
  SweepSupervisor::ResetDrainForTest();
  EXPECT_FALSE(outcome.stopped);
  EXPECT_EQ(outcome.skipped_points, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(outcome.completed[i]) << i;
  }
}

// ---- distributed slices (global_indices / skip_point) ---------------------

TEST(Supervisor, GlobalIndicesMakeSliceRunsBitIdenticalToWholeGrid) {
  // A distributed worker runs points {1, 3} of a 4-point grid.  Contexts,
  // attempt seeds, failure records, and journal keys must all use GLOBAL
  // indices, and the journal header must carry the WHOLE grid fingerprint
  // plus the slice fingerprint — that is what makes an orphaned worker
  // journal mergeable offline and a slice run bit-identical to the same
  // points in a single-host sweep.
  const std::vector<std::string> grid_labels = {"g0", "g1", "g2", "g3"};
  const std::uint64_t grid_fp = harness::GridFingerprint("gslice", grid_labels);
  const std::vector<std::size_t> slice = {1, 3};
  const std::string path = TempPath("ckpt_global_indices");
  std::remove(path.c_str());

  SupervisorConfig config;
  config.name = "gslice";
  config.labels = {grid_labels[1], grid_labels[3]};
  config.global_indices = slice;
  config.grid_fingerprint = grid_fp;
  config.slice_fingerprint = harness::SliceFingerprint(grid_fp, slice);
  config.checkpoint_path = path;
  config.base_seed = 77;
  config.sweep_threads = 1;
  config.max_retries = 1;

  std::vector<std::size_t> seen;
  std::mutex seen_mutex;
  const SweepOutcome outcome = SweepSupervisor(config).Run(
      [&](const PointContext& ctx) -> std::string {
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          seen.push_back(ctx.index);
        }
        if (ctx.index == 3 && ctx.attempt == 0) {
          // The retry seed must derive from the GLOBAL index.
          throw Error("transient");
        }
        if (ctx.index == 3) {
          EXPECT_EQ(ctx.seed, SweepSupervisor::AttemptSeed(77, 3, 1));
        }
        return "r" + std::to_string(ctx.index);
      });
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(seen, slice);  // bodies saw global indices, nothing local
  EXPECT_TRUE(outcome.failures.empty());
  // Local outcome slots, global payload content.
  EXPECT_EQ(outcome.payloads[0], "r1");
  EXPECT_EQ(outcome.payloads[1], "r3");

  // The journal is keyed by global index under the whole-grid fingerprint.
  const SweepCheckpoint journal = SweepCheckpoint::LoadOrCreate(
      path, "gslice", grid_fp, config.slice_fingerprint);
  EXPECT_TRUE(journal.HasPoint(1) && journal.HasPoint(3));
  EXPECT_FALSE(journal.HasPoint(0));
  std::remove(path.c_str());
}

TEST(Supervisor, GlobalIndicesFailuresCarryGlobalIndex) {
  SupervisorConfig config;
  config.name = "gfail";
  config.labels = {"g2"};
  config.global_indices = {2};
  config.failure_budget = 1;
  config.sweep_threads = 1;
  const SweepOutcome outcome = SweepSupervisor(config).Run(
      [&](const PointContext&) -> std::string { throw Error("always"); });
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 2u);  // global, not local 0
}

TEST(Supervisor, SkipPointDropsStolenPointsWithoutFailure) {
  // Mid-lease steal: the coordinator took local point 1 away; the worker
  // must neither compute nor fail it — it is skipped, and only skipped.
  SupervisorConfig config = BasicConfig("steal", 4);
  config.sweep_threads = 1;
  config.skip_point = [](std::size_t local) { return local == 1; };
  std::atomic<int> ran{0};
  const SweepOutcome outcome =
      SweepSupervisor(config).Run([&](const PointContext& ctx) {
        ++ran;
        EXPECT_NE(ctx.index, 1u);
        return "ok";
      });
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(outcome.skipped_points, 1u);
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_FALSE(outcome.completed[1]);
  EXPECT_TRUE(outcome.completed[0] && outcome.completed[2] &&
              outcome.completed[3]);
}

TEST(Supervisor, GlobalIndicesSizeMismatchThrows) {
  SupervisorConfig config = BasicConfig("badmap", 3);
  config.global_indices = {0, 1};  // 2 mappings for 3 labels
  EXPECT_THROW(SweepSupervisor{config}, Error);
}

// ---- repro bundles --------------------------------------------------------

TEST(Repro, BundleRoundTripsThroughDisk) {
  harness::ReproBundle bundle;
  bundle.experiment = "fig12";
  bundle.label = "lammps-1 cores=2";
  bundle.point_index = 3;
  bundle.attempt = 1;
  bundle.kernel_id = "lammps-1";
  bundle.kernel_source = "kernel demo { param n: i64; }\n";
  bundle.trip = 250;
  bundle.f64_params = {{"cutoff", 1.5}, {"scale", 0.3333333333333333}};
  bundle.config.compile.num_cores = 2;
  bundle.config.queue.capacity = 12;
  bundle.config.queue.transfer_latency = 9;
  bundle.config.seed = 0xDEADBEEFCAFEull;
  bundle.config.stall_watchdog_cycles = 200000;
  bundle.config.max_cycles = 1u << 20;
  bundle.config.fallback.max_retries = 1;
  bundle.config.faults.seed = 99;
  bundle.config.faults.payload_flip_prob = 0.25;
  bundle.failure_message = "memory mismatch in parallel codegen ...";
  bundle.failure_attempts = 2;
  bundle.snapshot = {0x66, 0x67, 0x00, 0xff, 0x10};

  const std::string dir = TempPath("repro_bundles");
  std::filesystem::remove_all(dir);
  const std::string path =
      harness::WriteReproBundle(dir, "repro_fig12_point3", bundle);
  EXPECT_EQ(path, (std::filesystem::path(dir) / "repro_fig12_point3").string());

  const harness::ReproBundle loaded = harness::LoadReproBundle(path);
  EXPECT_EQ(loaded.experiment, "fig12");
  EXPECT_EQ(loaded.label, bundle.label);
  EXPECT_EQ(loaded.point_index, 3u);
  EXPECT_EQ(loaded.attempt, 1);
  EXPECT_EQ(loaded.kernel_id, "lammps-1");
  EXPECT_EQ(loaded.kernel_source, bundle.kernel_source);
  EXPECT_EQ(loaded.trip, 250);
  EXPECT_EQ(loaded.f64_params, bundle.f64_params);
  EXPECT_EQ(loaded.config.compile.num_cores, 2);
  EXPECT_EQ(loaded.config.queue.capacity, 12);
  EXPECT_EQ(loaded.config.queue.transfer_latency, 9);
  EXPECT_EQ(loaded.config.compile.assumed_queue_capacity, 12);
  EXPECT_EQ(loaded.config.seed, 0xDEADBEEFCAFEull);
  EXPECT_EQ(loaded.config.stall_watchdog_cycles, 200000u);
  EXPECT_EQ(loaded.config.max_cycles, 1u << 20);
  EXPECT_EQ(loaded.config.fallback.max_retries, 1);
  EXPECT_EQ(loaded.config.faults.seed, 99u);
  EXPECT_DOUBLE_EQ(loaded.config.faults.payload_flip_prob, 0.25);
  EXPECT_EQ(loaded.failure_message, bundle.failure_message);
  EXPECT_EQ(loaded.failure_attempts, 2);
  EXPECT_EQ(loaded.snapshot, bundle.snapshot);

  // A future-schema manifest is rejected, not misread.
  std::string manifest = ReadFile(path + "/manifest.json");
  manifest.replace(manifest.find("fgpar-repro-v1"), 14, "fgpar-repro-v9");
  WriteFile(path + "/manifest.json", manifest);
  EXPECT_THROW(harness::LoadReproBundle(path), Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
