// Tests for the telemetry spine (support/telemetry/):
//
//  * trace neutrality — installing a sink must not change a single
//    deterministic number: for every Table-I kernel, a traced run's
//    encoded KernelRun is byte-identical to the untraced fast-path run's
//    (the traced machine takes the instrumented reference loop, so this
//    is also a fast/slow equivalence check), and the issue-event count
//    matches the measured parallel instruction count;
//  * the counter registry (named counts/metrics with artifact
//    visibility);
//  * span semantics (RAII completion, emission on unwinding, Note
//    counters);
//  * the concrete sinks: aggregation, ring buffering, stream re-stamping,
//    fan-out, and deterministic Chrome-trace rendering;
//  * the sweep supervisor's failure forensics ring.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/supervisor.hpp"
#include "kernels/experiments.hpp"
#include "support/error.hpp"
#include "support/telemetry/sinks.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::telemetry {
namespace {

// ---- trace neutrality across every kernel ---------------------------------

TEST(TraceNeutrality, EveryKernelBitIdenticalWithSinkInstalled) {
  kernels::ExperimentConfig experiment;
  experiment.cores = 4;
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    SCOPED_TRACE(spec.id);
    harness::RunConfig untraced = kernels::ToRunConfig(experiment);
    const harness::KernelRun baseline = kernels::RunKernel(spec, untraced);

    AggregatingSink sink;
    harness::RunConfig traced = kernels::ToRunConfig(experiment);
    traced.telemetry = &sink;
    const harness::KernelRun observed = kernels::RunKernel(spec, traced);

    // Byte-identical deterministic results: the encoded payload covers
    // every cycle/instruction/queue/stall-derived field of the run.
    EXPECT_EQ(harness::EncodeKernelRun(observed),
              harness::EncodeKernelRun(baseline));
    // The trace itself is consistent: exactly one issue event per
    // measured parallel instruction (the golden model, the sequential
    // baseline, and tuning runs stay untraced).
    EXPECT_EQ(sink.SimCount(SimEventKind::kIssue), baseline.par_instructions);
    // The compile emitted its pipeline/pass spans through the same sink.
    EXPECT_FALSE(sink.SpansInCategory("pass").empty());
    EXPECT_EQ(sink.SpansInCategory("pipeline").size(), 1u);
  }
}

// ---- counter registry ------------------------------------------------------

TEST(CounterRegistry, NamedAccessAndArtifactVisibility) {
  CounterRegistry registry;
  registry.Count("visible", 7);
  registry.Count("hidden", 9, /*artifact=*/false);
  registry.Metric("speed", 1.5);

  EXPECT_EQ(registry.count("visible"), 7u);
  EXPECT_EQ(registry.count("hidden"), 9u);
  EXPECT_DOUBLE_EQ(registry.metric("speed"), 1.5);
  EXPECT_TRUE(registry.HasCount("hidden"));
  EXPECT_FALSE(registry.HasCount("absent"));
  EXPECT_THROW(registry.count("absent"), Error);
  EXPECT_THROW(registry.metric("absent"), Error);

  std::vector<std::string> artifact_counts;
  registry.ForEachArtifactCount(
      [&](const std::string& name, std::uint64_t) {
        artifact_counts.push_back(name);
      });
  EXPECT_EQ(artifact_counts, std::vector<std::string>{"visible"});
}

TEST(CounterRegistry, KernelRunRegistryMatchesStructFields) {
  harness::KernelRun run;
  run.kernel_name = "x";
  run.seq_cycles = 100;
  run.par_cycles = 50;
  run.speedup = 2.0;
  run.cores_used = 4;
  run.initial_fibers = 3;
  run.load_balance = 1.25;
  const CounterRegistry registry = harness::KernelRunTelemetry(run);
  EXPECT_EQ(registry.count("seq_cycles"), 100u);
  EXPECT_EQ(registry.count("par_cycles"), 50u);
  EXPECT_DOUBLE_EQ(registry.metric("speedup"), 2.0);
  EXPECT_DOUBLE_EQ(registry.metric("load_balance"), 1.25);
  EXPECT_EQ(registry.count("cores_used"), 4u);
  // Diagnostic-only entries are readable but never reach artifacts.
  EXPECT_EQ(registry.count("initial_fibers"), 3u);
  bool saw_initial_fibers = false;
  registry.ForEachArtifactCount(
      [&](const std::string& name, std::uint64_t) {
        saw_initial_fibers |= name == "initial_fibers";
      });
  EXPECT_FALSE(saw_initial_fibers);
}

// ---- span semantics --------------------------------------------------------

TEST(ScopedSpanTest, CompletesWithCountersAndCategory) {
  AggregatingSink sink;
  {
    ScopedSpan span(&sink, "phase", "work", /*stream=*/3);
    span.Note("items", 12);
  }
  const std::vector<SpanRecord> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].category, "phase");
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].stream, 3);
  EXPECT_GE(spans[0].wall_seconds, 0.0);
  EXPECT_EQ(spans[0].counters.at("items"), 12);
}

TEST(ScopedSpanTest, EmitsDuringExceptionUnwinding) {
  AggregatingSink sink;
  try {
    ScopedSpan span(&sink, "phase", "doomed");
    throw Error("boom");
  } catch (const Error&) {
  }
  ASSERT_EQ(sink.Spans().size(), 1u);
  EXPECT_EQ(sink.Spans()[0].name, "doomed");
}

TEST(ScopedSpanTest, NullSinkIsFreeAndSilent) {
  ScopedSpan span(nullptr, "phase", "nothing");
  span.Note("ignored", 1);
  // Destruction must not crash; there is nothing to observe.
}

// ---- sinks -----------------------------------------------------------------

SimEvent IssueAt(std::uint64_t cycle, int core, std::int64_t pc) {
  SimEvent event;
  event.kind = SimEventKind::kIssue;
  event.cycle = cycle;
  event.core = core;
  event.pc = pc;
  event.name = "addi";
  return event;
}

TEST(RingBufferSinkTest, KeepsOnlyTheLastN) {
  RingBufferSink ring(3);
  for (int i = 0; i < 10; ++i) {
    ring.OnSim(IssueAt(static_cast<std::uint64_t>(i), 0, i));
  }
  const std::vector<SimEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().cycle, 7u);
  EXPECT_EQ(events.back().cycle, 9u);
  ring.Clear();
  EXPECT_TRUE(ring.Events().empty());
}

TEST(StreamSinkTest, RestampsTheStreamLane) {
  AggregatingSink inner;
  StreamSink lane(&inner, 5);
  {
    ScopedSpan span(&lane, "phase", "inner-span");
  }
  ASSERT_EQ(inner.Spans().size(), 1u);
  EXPECT_EQ(inner.Spans()[0].stream, 5);  // 0 at emission, re-stamped to 5
  SimEvent event = IssueAt(1, 0, 0);
  event.stream = 99;
  lane.OnSim(event);
  EXPECT_EQ(inner.SimCount(SimEventKind::kIssue), 1u);
}

TEST(FanoutSinkTest, TeesToEveryTarget) {
  AggregatingSink a;
  RingBufferSink ring(8);
  FanoutSink fanout({&a, nullptr, &ring});
  fanout.OnSim(IssueAt(1, 0, 0));
  fanout.OnSim(IssueAt(2, 0, 1));
  EXPECT_EQ(a.SimCount(SimEventKind::kIssue), 2u);
  EXPECT_EQ(ring.Events().size(), 2u);
}

TEST(JsonLinesSinkTest, OneObjectPerLine) {
  std::ostringstream out;
  JsonLinesSink sink(out, /*include_host=*/false);
  sink.OnSim(IssueAt(4, 1, 2));
  SpanEvent span;
  span.category = "phase";
  span.name = "dropped";
  sink.OnSpan(span);  // host line suppressed
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"sim\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"issue\""), std::string::npos);
  EXPECT_EQ(text.find("dropped"), std::string::npos);
}

TEST(ChromeTraceSinkTest, RenderIsDeterministicForSimEvents) {
  const auto render = [] {
    ChromeTraceSink sink(/*include_host=*/false);
    sink.OnSim(IssueAt(1, 0, 0));
    SimEvent stall;
    stall.kind = SimEventKind::kStallEnd;
    stall.cycle = 9;
    stall.begin_cycle = 4;
    stall.core = 1;
    stall.cause = StallCause::kQueueEmpty;
    sink.OnSim(stall);
    return sink.Render();
  };
  const std::string first = render();
  EXPECT_EQ(first, render());
  EXPECT_NE(first.find("\"fgpar-trace-v1\""), std::string::npos);
  EXPECT_NE(first.find("stall:queue_empty"), std::string::npos);
  // Host track metadata is absent when no span was recorded.
  EXPECT_EQ(first.find("\"host\""), std::string::npos);
}

TEST(ChromeTraceSinkTest, HostSpansDroppedWhenSuppressed) {
  ChromeTraceSink sink(/*include_host=*/false);
  {
    ScopedSpan span(&sink, "phase", "hidden");
  }
  EXPECT_EQ(sink.Render().find("hidden"), std::string::npos);
}

// ---- supervisor failure forensics ------------------------------------------

TEST(SupervisorTelemetry, QuarantinedPointCarriesItsLastEvents) {
  harness::SupervisorConfig config;
  config.name = "forensics";
  config.labels = {"only-point"};
  config.sweep_threads = 1;
  config.failure_ring_capacity = 4;
  harness::SweepSupervisor supervisor(config);
  const harness::SweepOutcome outcome =
      supervisor.Run([](const harness::PointContext& ctx) -> std::string {
        // The body routes its machine events through ctx.telemetry; here
        // we stand in for the machine and emit a recognizable tail.
        for (int i = 0; i < 10; ++i) {
          ctx.telemetry->OnSim(IssueAt(static_cast<std::uint64_t>(i), 0, i));
        }
        throw Error("synthetic failure");
      });
  ASSERT_EQ(outcome.failures.size(), 1u);
  const harness::PointFailure& failure = outcome.failures[0];
  ASSERT_EQ(failure.last_events.size(), 4u);
  EXPECT_EQ(failure.last_events.front().cycle, 6u);
  EXPECT_EQ(failure.last_events.back().cycle, 9u);
}

TEST(SupervisorTelemetry, AttemptSpansLandOnPointAndRetryCategories) {
  AggregatingSink sink;
  harness::SupervisorConfig config;
  config.name = "spans";
  config.labels = {"p0"};
  config.sweep_threads = 1;
  config.max_retries = 2;
  config.telemetry = &sink;
  harness::SweepSupervisor supervisor(config);
  int calls = 0;
  const harness::SweepOutcome outcome =
      supervisor.Run([&](const harness::PointContext&) -> std::string {
        if (++calls < 3) {
          throw Error("fail twice");
        }
        return "payload";
      });
  EXPECT_TRUE(outcome.failures.empty());
  ASSERT_EQ(sink.SpansInCategory("point").size(), 1u);
  EXPECT_EQ(sink.SpansInCategory("retry").size(), 2u);
  EXPECT_EQ(sink.SpansInCategory("point")[0].name, "p0");
  EXPECT_EQ(sink.SpansInCategory("retry")[0].counters.at("attempt"), 1);
}

}  // namespace
}  // namespace fgpar::telemetry
