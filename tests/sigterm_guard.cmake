# Graceful-shutdown drill, run as a ctest entry (cmake -P).
#
# Proves the sweep supervisor's SIGTERM contract on the fig12 smoke grid
# (the graceful counterpart of resume_guard.cmake's SIGKILL drill):
#
#   run A  — uninterrupted baseline.
#   run B1 — FGPAR_SUPERVISOR_SIGTERM_AFTER=2 raises SIGTERM right after
#            the second point is journaled.  With drain_on_sigterm the
#            sweep must finish in-flight points, journal them, report the
#            drain, and exit 0 — a drained run is a success, not a crash.
#   run B2 — --resume recomputes exactly the skipped points and must
#            finish with stdout and BENCH artifact byte-identical to A's.
#
# Usage:
#   cmake -DFIG12=<fig12_speedup exe> -DWORK_DIR=<scratch dir>
#         -P sigterm_guard.cmake

if(NOT DEFINED FIG12 OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "sigterm_guard.cmake requires -DFIG12 and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/a" "${WORK_DIR}/b")

set(ENV{FGPAR_BENCH_DETERMINISTIC} "1")
set(ENV{FGPAR_SWEEP_THREADS} "2")

# ---- run A: uninterrupted baseline -----------------------------------------
set(ENV{FGPAR_BENCH_DIR} "${WORK_DIR}/a")
execute_process(
  COMMAND ${FIG12} --smoke --checkpoint "${WORK_DIR}/a/ckpt"
  OUTPUT_VARIABLE stdout_a
  ERROR_VARIABLE stderr_a
  RESULT_VARIABLE status_a)
if(NOT status_a EQUAL 0)
  message(FATAL_ERROR "run A failed (${status_a}):\n${stderr_a}")
endif()

# ---- run B1: SIGTERM after two journaled points → clean drain, exit 0 ------
set(ENV{FGPAR_BENCH_DIR} "${WORK_DIR}/b")
set(ENV{FGPAR_SUPERVISOR_SIGTERM_AFTER} "2")
execute_process(
  COMMAND ${FIG12} --smoke --checkpoint "${WORK_DIR}/b/ckpt"
  OUTPUT_VARIABLE stdout_b1
  ERROR_VARIABLE stderr_b1
  RESULT_VARIABLE status_b1)
unset(ENV{FGPAR_SUPERVISOR_SIGTERM_AFTER})
if(NOT status_b1 EQUAL 0)
  message(FATAL_ERROR
    "run B1 exited ${status_b1}; a SIGTERM drain must exit 0\n${stderr_b1}")
endif()
if(NOT stderr_b1 MATCHES "SIGTERM: drained cleanly, [0-9]+ points skipped")
  message(FATAL_ERROR "run B1 did not report a clean drain:\n${stderr_b1}")
endif()
if(NOT EXISTS "${WORK_DIR}/b/ckpt")
  message(FATAL_ERROR "run B1 drained without leaving a checkpoint journal")
endif()

# ---- run B2: resume and finish ---------------------------------------------
execute_process(
  COMMAND ${FIG12} --smoke --checkpoint "${WORK_DIR}/b/ckpt" --resume
  OUTPUT_VARIABLE stdout_b2
  ERROR_VARIABLE stderr_b2
  RESULT_VARIABLE status_b2)
if(NOT status_b2 EQUAL 0)
  message(FATAL_ERROR "run B2 (resume) failed (${status_b2}):\n${stderr_b2}")
endif()
if(NOT stderr_b2 MATCHES "resumed [0-9]+ completed points")
  message(FATAL_ERROR "run B2 did not report resumed points:\n${stderr_b2}")
endif()

# ---- the drain must be invisible in the results ----------------------------
if(NOT stdout_b2 STREQUAL stdout_a)
  file(WRITE "${WORK_DIR}/stdout_a.txt" "${stdout_a}")
  file(WRITE "${WORK_DIR}/stdout_b2.txt" "${stdout_b2}")
  message(FATAL_ERROR
    "resumed run's stdout differs from the uninterrupted run's "
    "(see ${WORK_DIR}/stdout_a.txt vs stdout_b2.txt)")
endif()
file(READ "${WORK_DIR}/a/BENCH_fig12.json" artifact_a)
file(READ "${WORK_DIR}/b/BENCH_fig12.json" artifact_b)
if(NOT artifact_a STREQUAL artifact_b)
  message(FATAL_ERROR
    "resumed run's BENCH_fig12.json differs from the uninterrupted run's "
    "(${WORK_DIR}/a vs ${WORK_DIR}/b)")
endif()
