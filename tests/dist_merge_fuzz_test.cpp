// Fuzz tests for the tolerant fgpar-ckpt-v1 journal merge
// (dist/journal_merge.hpp) — the coordinator's crash-recovery reader.
//
// The threat model: after arbitrary worker/coordinator SIGKILLs the merge
// is fed journals that may be truncated mid-byte, bit-flipped by a lying
// disk, duplicated (stolen points computed twice), or interleaved across
// many workers.  The invariant under ALL of that, exercised exhaustively
// here:
//
//   * the merge NEVER throws and NEVER crashes;
//   * every adopted payload is validator-approved and byte-identical to
//     what some intact record held (no silent corruption);
//   * every record that is not adopted appears as a structured
//     QuarantinedRecord — damage is never silently dropped;
//   * the same bytes always merge to the same result (determinism), no
//     matter how damaged.
//
// Mutations are driven by a fixed-seed SplitMix64, so a failure
// reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dist/journal_merge.hpp"
#include "harness/checkpoint.hpp"

namespace {

using namespace fgpar;
using dist::MergeResult;
using dist::QuarantinedRecord;

constexpr const char* kSweep = "fuzz";
constexpr std::size_t kPoints = 6;

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::string> GridLabels() {
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < kPoints; ++i) {
    labels.push_back("label-" + std::to_string(i));
  }
  return labels;
}

std::uint64_t GridFp() {
  return harness::GridFingerprint(kSweep, GridLabels());
}

/// The "codec": payloads are "result-<index>:<binary>"; the validator
/// refuses anything else, exactly as DecodeKernelRun refuses payloads
/// that don't round-trip.
std::string PayloadFor(std::size_t index) {
  return "result-" + std::to_string(index) + ":" +
         std::string("\x01\x02\xfe", 3);
}

/// A second well-formed payload for the same point — what a buggy or
/// nondeterministic worker would commit.  It decodes fine; it just
/// disagrees with the first-committed record.
std::string AltPayloadFor(std::size_t index) {
  return "result-" + std::to_string(index) + ":" +
         std::string("\x03\x04\xfd", 3);
}

std::string Validate(std::size_t index, const std::string& payload) {
  if (payload == PayloadFor(index) || payload == AltPayloadFor(index)) {
    return "";
  }
  return "payload does not decode";
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A pristine whole-grid journal holding every point, built through the
/// real writer so the fuzz corpus matches production bytes exactly.
std::string PristineJournal(const std::string& path) {
  std::remove(path.c_str());
  harness::SweepCheckpoint journal(path, kSweep, GridFp());
  for (std::size_t i = 0; i < kPoints; ++i) {
    journal.RecordPoint(i, PayloadFor(i));
  }
  return ReadBytes(path);
}

/// The core invariant bundle, asserted after every merge of damaged
/// input.
void AssertMergeInvariants(const MergeResult& merged) {
  // Every adopted payload is bit-exact (the validator enforced decode;
  // this enforces no silent corruption slipped past it).
  for (const auto& [index, payload] : merged.points) {
    ASSERT_LT(index, kPoints);
    EXPECT_EQ(payload, PayloadFor(index)) << "corrupt payload adopted";
  }
  // Every quarantined record is structured: a file, a reason, and a line
  // number that is either a real 1-based line or the 0 file-level marker.
  for (const QuarantinedRecord& record : merged.quarantined) {
    EXPECT_FALSE(record.file.empty());
    EXPECT_FALSE(record.reason.empty());
  }
}

MergeResult MergeOne(const std::string& path) {
  return dist::MergeJournalFiles({path}, kSweep, GridFp(), kPoints, Validate);
}

TEST(DistMergeFuzz, TruncationAtEveryByteNeverThrowsOrCorrupts) {
  const std::string source = TempPath("fuzz_truncate_src");
  const std::string pristine = PristineJournal(source);
  const std::string victim = TempPath("fuzz_truncate");
  // Every prefix of the journal, including the empty file: the merge must
  // adopt exactly the complete records of the intact prefix and quarantine
  // the torn tail (if any) — never throw, never adopt garbage.
  for (std::size_t cut = 0; cut <= pristine.size(); ++cut) {
    WriteBytes(victim, pristine.substr(0, cut));
    MergeResult merged;
    ASSERT_NO_THROW(merged = MergeOne(victim)) << "cut at byte " << cut;
    AssertMergeInvariants(merged);
    // A full file yields the full grid; shorter prefixes never more.
    EXPECT_LE(merged.points.size(), kPoints);
    if (cut == pristine.size()) {
      EXPECT_EQ(merged.points.size(), kPoints);
      EXPECT_TRUE(merged.quarantined.empty());
    }
  }
  std::remove(source.c_str());
  std::remove(victim.c_str());
}

TEST(DistMergeFuzz, SingleByteMutationsEitherAdoptOrQuarantineEveryRecord) {
  const std::string source = TempPath("fuzz_mutate_src");
  const std::string pristine = PristineJournal(source);
  const std::string victim = TempPath("fuzz_mutate");
  std::uint64_t rng = 0xF00DF00Dull;
  // Flip every byte position to a pseudo-random other value.  Whatever
  // the damage hits — header, index, hex, separators, newlines — the
  // merge must stay total: no exception, no corrupt adoption, and every
  // non-adopted record accounted for in the quarantine list.
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    std::string mutated = pristine;
    char replacement = static_cast<char>(SplitMix64(rng) & 0xff);
    if (replacement == mutated[pos]) {
      replacement = static_cast<char>(replacement + 1);
    }
    mutated[pos] = replacement;
    WriteBytes(victim, mutated);
    MergeResult merged;
    ASSERT_NO_THROW(merged = MergeOne(victim)) << "mutation at byte " << pos;
    AssertMergeInvariants(merged);
    // Never silent: a mutation that cost us records must have left a
    // quarantine trail (header damage quarantines the whole file).
    if (merged.points.size() < kPoints) {
      EXPECT_FALSE(merged.quarantined.empty())
          << "silently dropped records; mutation at byte " << pos;
    }
    // Determinism: the same damaged bytes merge identically twice.
    const MergeResult again = MergeOne(victim);
    EXPECT_EQ(again.points, merged.points);
    EXPECT_EQ(again.quarantined.size(), merged.quarantined.size());
  }
  std::remove(source.c_str());
  std::remove(victim.c_str());
}

TEST(DistMergeFuzz, RandomGarbageFilesAreQuarantinedWholesale) {
  const std::string victim = TempPath("fuzz_garbage");
  std::uint64_t rng = 0xBADC0FFEull;
  for (int round = 0; round < 64; ++round) {
    const std::size_t size = SplitMix64(rng) % 512;
    std::string garbage;
    garbage.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      garbage.push_back(static_cast<char>(SplitMix64(rng) & 0xff));
    }
    WriteBytes(victim, garbage);
    MergeResult merged;
    ASSERT_NO_THROW(merged = MergeOne(victim)) << "round " << round;
    EXPECT_TRUE(merged.points.empty());
    EXPECT_FALSE(merged.quarantined.empty());
    AssertMergeInvariants(merged);
  }
  std::remove(victim.c_str());
}

TEST(DistMergeFuzz, DuplicatesAndConflictsResolveFirstCommittedWins) {
  const std::string a = TempPath("fuzz_dup_a");
  const std::string b = TempPath("fuzz_dup_b");
  // File A: points 0,1.  File B: point 1 again (identical — a benign
  // stolen-point re-commit), point 2 conflicting garbage hex that still
  // decodes but fails validation, and point 0 with a DIFFERENT payload
  // (the conflict case — the earlier record must stay authoritative).
  {
    std::remove(a.c_str());
    harness::SweepCheckpoint journal(a, kSweep, GridFp());
    journal.RecordPoint(0, PayloadFor(0));
    journal.RecordPoint(1, PayloadFor(1));
  }
  {
    std::remove(b.c_str());
    harness::SweepCheckpoint journal(b, kSweep, GridFp());
    journal.RecordPoint(1, PayloadFor(1));        // identical duplicate
    journal.RecordPoint(0, AltPayloadFor(0));     // conflicting duplicate
    journal.RecordPoint(3, "not-a-real-result");  // fails the validator
  }
  const MergeResult merged =
      dist::MergeJournalFiles({a, b}, kSweep, GridFp(), kPoints, Validate);
  EXPECT_EQ(merged.files_read, 2u);
  EXPECT_EQ(merged.duplicate_points, 1u);
  ASSERT_EQ(merged.points.count(0), 1u);
  EXPECT_EQ(merged.points.at(0), PayloadFor(0));  // first committed won
  EXPECT_EQ(merged.points.count(3), 0u);          // validator rejection
  // Two structured quarantines: the conflict and the bad payload.
  ASSERT_EQ(merged.quarantined.size(), 2u);
  EXPECT_NE(merged.quarantined[0].reason.find("conflicting duplicate"),
            std::string::npos);
  EXPECT_NE(merged.quarantined[1].reason.find("payload rejected"),
            std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(DistMergeFuzz, InterleavedWorkerJournalsMergeDeterministically) {
  // Three workers each journal an arbitrary subset (with overlaps), one of
  // them truncated mid-record: merging the sorted file list twice gives
  // identical results, equal to the union of intact records.
  const std::vector<std::string> paths = {
      TempPath("fuzz_ileave_w0"), TempPath("fuzz_ileave_w1"),
      TempPath("fuzz_ileave_w2")};
  const std::vector<std::vector<std::size_t>> slices = {
      {0, 1, 2}, {2, 3}, {3, 4, 5}};
  for (std::size_t w = 0; w < paths.size(); ++w) {
    std::remove(paths[w].c_str());
    harness::SweepCheckpoint journal(paths[w], kSweep, GridFp());
    for (const std::size_t index : slices[w]) {
      journal.RecordPoint(index, PayloadFor(index));
    }
  }
  // Tear the last worker's journal mid-way through its final record.
  const std::string last = ReadBytes(paths[2]);
  WriteBytes(paths[2], last.substr(0, last.size() - 7));

  const MergeResult first =
      dist::MergeJournalFiles(paths, kSweep, GridFp(), kPoints, Validate);
  const MergeResult second =
      dist::MergeJournalFiles(paths, kSweep, GridFp(), kPoints, Validate);
  EXPECT_EQ(first.points, second.points);
  EXPECT_EQ(first.duplicate_points, second.duplicate_points);
  EXPECT_EQ(first.quarantined.size(), second.quarantined.size());
  AssertMergeInvariants(first);
  // Overlap on 2 and 3 is the benign duplicate path; the torn record
  // (point 5) is quarantined, everything else survives.
  EXPECT_EQ(first.duplicate_points, 2u);
  EXPECT_EQ(first.points.count(5), 0u);
  for (const std::size_t index : {0u, 1u, 2u, 3u, 4u}) {
    EXPECT_EQ(first.points.count(index), 1u) << index;
  }
  ASSERT_EQ(first.quarantined.size(), 1u);
  EXPECT_EQ(first.quarantined[0].file, paths[2]);
  std::remove(paths[0].c_str());
  std::remove(paths[1].c_str());
  std::remove(paths[2].c_str());
}

TEST(DistMergeFuzz, UnreadableAndForeignFilesAreFileLevelQuarantines) {
  const std::string missing = TempPath("fuzz_missing_file");
  std::remove(missing.c_str());
  const std::string foreign = TempPath("fuzz_foreign");
  {
    std::remove(foreign.c_str());
    // A journal from a different grid: whole-file rejection.
    harness::SweepCheckpoint journal(foreign, "othersweep",
                                     harness::GridFingerprint("othersweep",
                                                              {"x"}));
    journal.RecordPoint(0, "whatever");
  }
  const MergeResult merged = dist::MergeJournalFiles(
      {missing, foreign}, kSweep, GridFp(), kPoints, Validate);
  EXPECT_TRUE(merged.points.empty());
  ASSERT_EQ(merged.quarantined.size(), 2u);
  EXPECT_EQ(merged.quarantined[0].line, 0u);  // unreadable: file-level
  EXPECT_EQ(merged.quarantined[0].file, missing);
  EXPECT_NE(merged.quarantined[1].reason.find("belongs to sweep"),
            std::string::npos);
  // Only the readable file counts as read.
  EXPECT_EQ(merged.files_read, 1u);
  std::remove(foreign.c_str());
}

TEST(DistMergeFuzz, SliceJournalsFromThisGridMergeWholeGrid) {
  // Worker journals carry the whole-grid fingerprint plus a slice= token;
  // the offline merge must accept any well-formed slice of this grid.
  const std::string path = TempPath("fuzz_slice");
  std::remove(path.c_str());
  const std::vector<std::size_t> slice = {1, 4};
  {
    harness::SweepCheckpoint journal(
        path, kSweep, GridFp(), harness::SliceFingerprint(GridFp(), slice));
    for (const std::size_t index : slice) {
      journal.RecordPoint(index, PayloadFor(index));
    }
  }
  const MergeResult merged = MergeOne(path);
  EXPECT_TRUE(merged.quarantined.empty());
  EXPECT_EQ(merged.points.size(), 2u);
  EXPECT_EQ(merged.points.count(1), 1u);
  EXPECT_EQ(merged.points.count(4), 1u);
  std::remove(path.c_str());
}

}  // namespace
