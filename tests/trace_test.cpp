// Tests for the machine's trace facility.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Gpr;

TEST(Trace, SeesEveryIssueInOrder) {
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(Gpr{1}, 3);
  a.LiI(Gpr{2}, 1);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.SubI(Gpr{1}, Gpr{1}, Gpr{2});
  a.Bnz(Gpr{1}, top);
  a.Halt();

  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  std::vector<TraceEvent> events;
  machine.SetTrace([&](const TraceEvent& event) { events.push_back(event); });
  machine.StartCoreAt(0, "main");
  const RunResult result = machine.Run();

  ASSERT_EQ(events.size(), result.instructions);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].cycle, events[i - 1].cycle);  // monotone time
  }
  // First two issues are the immediates; last is the halt.
  EXPECT_EQ(events[0].op, isa::Opcode::kLiI);
  EXPECT_EQ(events[1].op, isa::Opcode::kLiI);
  EXPECT_EQ(events.back().op, isa::Opcode::kHalt);
  // The loop body (sub + bnz) executes 3 times.
  int subs = 0;
  for (const TraceEvent& event : events) {
    subs += event.op == isa::Opcode::kSubI ? 1 : 0;
  }
  EXPECT_EQ(subs, 3);
}

TEST(Trace, MultiCoreEventsCarryCoreIds) {
  Assembler a;
  isa::Label t0 = a.NewNamedLabel("t0");
  isa::Label t1 = a.NewNamedLabel("t1");
  a.Bind(t0);
  a.LiI(Gpr{1}, 5);
  a.EnqI(1, Gpr{1});
  a.Halt();
  a.Bind(t1);
  a.DeqI(0, Gpr{1});
  a.Halt();

  MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  bool saw_core0 = false;
  bool saw_core1 = false;
  std::uint64_t enq_cycle = 0;
  std::uint64_t deq_cycle = 0;
  machine.SetTrace([&](const TraceEvent& event) {
    saw_core0 |= event.core == 0;
    saw_core1 |= event.core == 1;
    if (event.op == isa::Opcode::kEnqI) {
      enq_cycle = event.cycle;
    }
    if (event.op == isa::Opcode::kDeqI) {
      deq_cycle = event.cycle;
    }
  });
  machine.StartCoreAt(0, "t0");
  machine.StartCoreAt(1, "t1");
  machine.Run();
  EXPECT_TRUE(saw_core0);
  EXPECT_TRUE(saw_core1);
  // The dequeue completes no earlier than enqueue + transfer latency.
  EXPECT_GE(deq_cycle, enq_cycle +
                           static_cast<std::uint64_t>(config.queue.transfer_latency));
}

TEST(Trace, DisablingStopsEvents) {
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(Gpr{1}, 1);
  a.Halt();
  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  int count = 0;
  machine.SetTrace([&](const TraceEvent&) { ++count; });
  machine.SetTrace(nullptr);
  machine.StartCoreAt(0, "main");
  machine.Run();
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace fgpar::sim
