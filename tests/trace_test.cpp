// Tests for the machine's telemetry event stream (the successor of the
// old per-issue trace callback): issue events arrive in deterministic
// order with cycle/core/pc/mnemonic, queue ops additionally emit
// enqueue/dequeue events, and a machine without a sink emits nothing.
#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Gpr;

/// Collects every sim event in arrival order.
class CollectingSink : public telemetry::TelemetrySink {
 public:
  void OnSim(const telemetry::SimEvent& event) override {
    events.push_back(event);
  }
  void OnSpan(const telemetry::SpanEvent&) override {}

  std::vector<telemetry::SimEvent> Issues() const {
    std::vector<telemetry::SimEvent> issues;
    for (const telemetry::SimEvent& event : events) {
      if (event.kind == telemetry::SimEventKind::kIssue) {
        issues.push_back(event);
      }
    }
    return issues;
  }

  std::vector<telemetry::SimEvent> events;
};

TEST(Trace, SeesEveryIssueInOrder) {
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(Gpr{1}, 3);
  a.LiI(Gpr{2}, 1);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.SubI(Gpr{1}, Gpr{1}, Gpr{2});
  a.Bnz(Gpr{1}, top);
  a.Halt();

  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  CollectingSink sink;
  machine.SetTelemetry(&sink);
  machine.StartCoreAt(0, "main");
  const RunResult result = machine.Run();

  const std::vector<telemetry::SimEvent> issues = sink.Issues();
  ASSERT_EQ(issues.size(), result.instructions);
  for (std::size_t i = 1; i < issues.size(); ++i) {
    EXPECT_GE(issues[i].cycle, issues[i - 1].cycle);  // monotone time
  }
  // First two issues are the immediates; last is the halt.
  EXPECT_EQ(issues[0].name, isa::OpcodeName(isa::Opcode::kLiI));
  EXPECT_EQ(issues[1].name, isa::OpcodeName(isa::Opcode::kLiI));
  EXPECT_EQ(issues.back().name, isa::OpcodeName(isa::Opcode::kHalt));
  // The loop body (sub + bnz) executes 3 times.
  int subs = 0;
  for (const telemetry::SimEvent& event : issues) {
    subs += event.name == isa::OpcodeName(isa::Opcode::kSubI) ? 1 : 0;
  }
  EXPECT_EQ(subs, 3);
}

TEST(Trace, MultiCoreEventsCarryCoreIds) {
  Assembler a;
  isa::Label t0 = a.NewNamedLabel("t0");
  isa::Label t1 = a.NewNamedLabel("t1");
  a.Bind(t0);
  a.LiI(Gpr{1}, 5);
  a.EnqI(1, Gpr{1});
  a.Halt();
  a.Bind(t1);
  a.DeqI(0, Gpr{1});
  a.Halt();

  MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  CollectingSink sink;
  machine.SetTelemetry(&sink);
  machine.StartCoreAt(0, "t0");
  machine.StartCoreAt(1, "t1");
  machine.Run();

  bool saw_core0 = false;
  bool saw_core1 = false;
  std::uint64_t enq_cycle = 0;
  std::uint64_t deq_cycle = 0;
  const telemetry::SimEvent* enqueue = nullptr;
  const telemetry::SimEvent* dequeue = nullptr;
  for (const telemetry::SimEvent& event : sink.events) {
    if (event.kind == telemetry::SimEventKind::kIssue) {
      saw_core0 |= event.core == 0;
      saw_core1 |= event.core == 1;
      if (event.name == isa::OpcodeName(isa::Opcode::kEnqI)) {
        enq_cycle = event.cycle;
      }
      if (event.name == isa::OpcodeName(isa::Opcode::kDeqI)) {
        deq_cycle = event.cycle;
      }
    }
    if (event.kind == telemetry::SimEventKind::kQueueEnqueue) {
      enqueue = &event;
    }
    if (event.kind == telemetry::SimEventKind::kQueueDequeue) {
      dequeue = &event;
    }
  }
  EXPECT_TRUE(saw_core0);
  EXPECT_TRUE(saw_core1);
  // The dequeue completes no earlier than enqueue + transfer latency.
  EXPECT_GE(deq_cycle, enq_cycle +
                           static_cast<std::uint64_t>(config.queue.transfer_latency));
  // Queue ops additionally emit queue events carrying the endpoint pair.
  ASSERT_NE(enqueue, nullptr);
  EXPECT_EQ(enqueue->queue_src, 0);
  EXPECT_EQ(enqueue->queue_dst, 1);
  EXPECT_FALSE(enqueue->queue_is_fp);
  ASSERT_NE(dequeue, nullptr);
  EXPECT_EQ(dequeue->queue_src, 0);
  EXPECT_EQ(dequeue->queue_dst, 1);
  EXPECT_EQ(dequeue->occupancy, 0);  // drained by the dequeue
}

TEST(Trace, DisablingStopsEvents) {
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(Gpr{1}, 1);
  a.Halt();
  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  CollectingSink sink;
  machine.SetTelemetry(&sink);
  machine.SetTelemetry(nullptr);
  machine.StartCoreAt(0, "main");
  machine.Run();
  EXPECT_TRUE(sink.events.empty());
}

TEST(Trace, StallIntervalsCoverQueueWaits) {
  // Core 1 dequeues before core 0 enqueues: core 1 must report a
  // queue-empty stall interval ending at its successful dequeue issue.
  Assembler a;
  isa::Label t0 = a.NewNamedLabel("t0");
  isa::Label t1 = a.NewNamedLabel("t1");
  a.Bind(t0);
  a.LiI(Gpr{1}, 7);
  a.LiI(Gpr{2}, 7);
  a.LiI(Gpr{3}, 7);
  a.EnqI(1, Gpr{1});
  a.Halt();
  a.Bind(t1);
  a.DeqI(0, Gpr{1});
  a.Halt();

  MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  CollectingSink sink;
  machine.SetTelemetry(&sink);
  machine.StartCoreAt(0, "t0");
  machine.StartCoreAt(1, "t1");
  machine.Run();

  bool saw_stall = false;
  for (const telemetry::SimEvent& event : sink.events) {
    if (event.kind == telemetry::SimEventKind::kStallEnd && event.core == 1) {
      EXPECT_EQ(event.cause, telemetry::StallCause::kQueueEmpty);
      EXPECT_GT(event.cycle, event.begin_cycle);
      saw_stall = true;
    }
  }
  EXPECT_TRUE(saw_stall);
}

}  // namespace
}  // namespace fgpar::sim
