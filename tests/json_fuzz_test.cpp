// Fuzz-style smoke tests for support/json: adversarial input must surface
// as a structured fgpar::Error (with a byte offset in the message), never
// as a crash, a raw std:: exception, unbounded recursion, or a silent
// mis-parse.  Mirrors frontend_fuzz_test.cpp: the corpus is derived
// deterministically from valid documents — truncated prefixes plus
// single-byte mutations — and from handwritten pathological cases.
//
// The parser is the trust boundary of the fgpard service (every request
// payload goes through it), so "malformed input cannot take the process
// down" is a load-bearing property, not a nicety.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar {
namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

 private:
  std::uint64_t state_;
};

/// A representative document exercising every value kind, produced by the
/// project's own writer so the corpus tracks the wire format.
std::string SeedDocument() {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("fgpar-rpc-v1");
  w.Key("id");
  w.UInt(18446744073709551615ull);
  w.Key("neg");
  w.Int(-42);
  w.Key("pi");
  w.Double(3.14159);
  w.Key("flag");
  w.Bool(true);
  w.Key("nothing");
  w.BeginArray();
  w.Bool(false);
  w.Int(1);
  w.EndArray();
  w.EndObject();
  return w.Take();
}

void ExpectStructuredOutcome(const std::string& text, const std::string& what) {
  try {
    (void)ParseJson(text);
  } catch (const Error& e) {
    EXPECT_FALSE(std::string(e.what()).empty()) << what;
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": escaped non-fgpar exception: " << e.what();
  } catch (...) {
    ADD_FAILURE() << what << ": escaped unknown exception";
  }
}

TEST(JsonFuzz, TruncatedDocumentsAreStructuredErrors) {
  const std::string doc =
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":7,"
      "\"config\":{\"cores\":4,\"speculate\":true,\"trip\":-1,"
      "\"values\":[1,2.5,null,\"x\\n\"]}}";
  for (std::size_t len = 0; len <= doc.size(); ++len) {
    ExpectStructuredOutcome(doc.substr(0, len),
                            "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST(JsonFuzz, ByteMutatedDocumentsAreStructuredErrors) {
  std::string alphabet = "{}[]\":,.-+eE0123456789tfn\\u \n";
  alphabet.push_back('\0');
  alphabet.push_back('\x01');
  alphabet.push_back('\x7f');
  alphabet.push_back('\xff');
  const std::string doc =
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":7,"
      "\"kernel\":\"kernel k(n: i64) { }\",\"config\":{\"cores\":4}}";
  Rng rng(0xF72Dull);
  for (int round = 0; round < 512; ++round) {
    std::string mutated = doc;
    const std::size_t pos = rng.Below(mutated.size());
    mutated[pos] = alphabet[rng.Below(alphabet.size())];
    ExpectStructuredOutcome(mutated, "mutation round " + std::to_string(round));
  }
}

TEST(JsonFuzz, DeepNestingIsBoundedNotAStackOverflow) {
  // Beyond the parser's depth cap: structured error, no recursion blowup.
  const std::string deep_array(10000, '[');
  EXPECT_THROW((void)ParseJson(deep_array), Error);
  std::string deep_objects;
  for (int i = 0; i < 5000; ++i) {
    deep_objects += "{\"k\":";
  }
  EXPECT_THROW((void)ParseJson(deep_objects), Error);
  // Just inside the cap still parses.
  std::string ok = std::string(60, '[') + "1" + std::string(60, ']');
  EXPECT_EQ(ParseJson(ok).AsArray().size(), 1u);
}

TEST(JsonFuzz, PathologicalNumbersAreStructuredErrors) {
  EXPECT_THROW((void)ParseJson("1e999999"), Error);      // overflow
  EXPECT_THROW((void)ParseJson("-"), Error);
  EXPECT_THROW((void)ParseJson("1.2.3"), Error);
  EXPECT_THROW((void)ParseJson("0x10"), Error);          // trailing chars
  EXPECT_THROW((void)ParseJson("+1"), Error);            // leading plus
  EXPECT_THROW((void)ParseJson("1e+-2"), Error);
  // Precise integers round-trip through the textual representation.
  EXPECT_EQ(ParseJson("18446744073709551615").AsU64(),
            18446744073709551615ull);
  EXPECT_EQ(ParseJson("-9223372036854775808").AsI64(),
            std::int64_t(-9223372036854775807ll - 1));
}

TEST(JsonFuzz, HostileStringsAreStructuredErrors) {
  // Raw control bytes inside strings are rejected (the writer always
  // escapes them), so framing bytes cannot be smuggled through round-trips.
  std::string raw_control = "\"a";
  raw_control.push_back('\x01');
  raw_control += "b\"";
  EXPECT_THROW((void)ParseJson(raw_control), Error);
  std::string raw_nul = "\"a";
  raw_nul.push_back('\0');
  raw_nul += "b\"";
  EXPECT_THROW((void)ParseJson(raw_nul), Error);
  EXPECT_THROW((void)ParseJson("\"unterminated"), Error);
  EXPECT_THROW((void)ParseJson("\"bad escape \\q\""), Error);
  EXPECT_THROW((void)ParseJson("\"truncated \\u00"), Error);
  EXPECT_THROW((void)ParseJson("\"not hex \\uZZZZ\""), Error);
  EXPECT_THROW((void)ParseJson("\"beyond ascii \\u00ff\""), Error);
  // Escaped control characters are fine — that is the writer's encoding.
  EXPECT_EQ(ParseJson("\"a\\u0001b\"").AsString(), std::string("a\x01") + "b");
}

TEST(JsonFuzz, TrailingGarbageIsRejected) {
  EXPECT_THROW((void)ParseJson("{} extra"), Error);
  EXPECT_THROW((void)ParseJson("1 2"), Error);
  EXPECT_THROW((void)ParseJson("[1],"), Error);
  EXPECT_THROW((void)ParseJson(""), Error);
  EXPECT_THROW((void)ParseJson("   "), Error);
}

TEST(JsonFuzz, WriterOutputAlwaysReparses) {
  const std::string doc = SeedDocument();
  const JsonValue parsed = ParseJson(doc);
  EXPECT_EQ(parsed.Get("schema").AsString(), "fgpar-rpc-v1");
  EXPECT_EQ(parsed.Get("id").AsU64(), 18446744073709551615ull);
  EXPECT_EQ(parsed.Get("neg").AsI64(), -42);
  EXPECT_TRUE(parsed.Get("flag").AsBool());
  // Every escapable byte survives a writer → parser round-trip.
  std::string nasty;
  for (int c = 1; c < 128; ++c) {
    nasty.push_back(static_cast<char>(c));
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String(nasty);
  w.EndObject();
  EXPECT_EQ(ParseJson(w.Take()).Get("s").AsString(), nasty);
}

TEST(JsonFuzz, ErrorMessagesCarryAByteOffset) {
  try {
    (void)ParseJson("{\"a\": }");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace fgpar
