// Unit tests for individual compiler passes: expression splitting,
// speculation hoisting, store-to-load forwarding, fiber formation, code
// graph construction, and merging.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "compiler/fiber.hpp"
#include "compiler/forward.hpp"
#include "compiler/graph.hpp"
#include "compiler/merge.hpp"
#include "compiler/partition.hpp"
#include "compiler/speculate.hpp"
#include "compiler/split.hpp"
#include "frontend/parser.hpp"
#include "ir/interp.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/rng.hpp"

namespace fgpar::compiler {
namespace {

ir::Kernel Parse(const char* source) { return frontend::ParseKernel(source); }

int CountLoopStmts(const ir::Kernel& k) {
  int count = 0;
  ir::Kernel::VisitStmts(k.loop().body, [&](const ir::Stmt&) { ++count; });
  return count;
}

// ---- SplitExpressions ----

TEST(Split, DeepExpressionIsSplit) {
  ir::Kernel k = Parse(R"(
kernel deep {
  array f64 a[8];
  array f64 o[8];
  loop i = 2 .. 8 {
    o[i] = ((a[i] * 2.0 + 1.0) * (a[i-1] * 3.0 + 1.0)) * ((a[i] + 4.0) * (a[i-2] - 1.0));
  }
}
)");
  const int before = CountLoopStmts(k);
  const int added = SplitExpressions(k, 3);
  EXPECT_GT(added, 0);
  EXPECT_EQ(CountLoopStmts(k), before + added);
  ir::CheckValid(k);
  // Every statement's tree now fits the depth bound, where an array
  // reference counts as a leaf (its subscript travels with the load).
  std::function<int(ir::ExprId)> partition_depth = [&](ir::ExprId id) {
    const ir::ExprNode& node = k.expr(id);
    if (ir::IsPartitionLeaf(node.kind)) {
      return 1;
    }
    int depth = 0;
    for (int c = 0; c < ir::ChildCount(node); ++c) {
      depth = std::max(depth,
                       partition_depth(node.child[static_cast<std::size_t>(c)]));
    }
    return depth + 1;
  };
  ir::Kernel::VisitStmts(k.loop().body, [&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::kIf) {
      EXPECT_LE(partition_depth(s.value), 3);
    }
  });
}

TEST(Split, ShallowExpressionUntouched) {
  ir::Kernel k = Parse(R"(
kernel shallow {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    o[i] = a[i] * 2.0;
  }
}
)");
  EXPECT_EQ(SplitExpressions(k, 4), 0);
}

TEST(Split, StatementIdsStayInProgramOrder) {
  ir::Kernel k = Parse(R"(
kernel order {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    o[i] = (a[i] * 2.0 + 1.0) * (a[i] * 3.0 - 1.0) * (a[i] + 0.5) * (a[i] - 0.25);
  }
}
)");
  SplitExpressions(k, 2);
  int last = -1;
  ir::Kernel::VisitStmts(k.loop().body, [&](const ir::Stmt& s) {
    EXPECT_GT(s.id, last);
    last = s.id;
  });
}

// ---- ApplySpeculation ----

TEST(Speculate, HoistsPureAssignsFromMarkedIf) {
  ir::Kernel k = Parse(R"(
kernel spec {
  array f64 x[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    @speculate if (x[i] < 1.0) {
      f64 t2 = x[i] * 2.0;
      o[i] = t2;
    } else {
      f64 t3 = x[i] * 3.0;
      o[i] = t3;
    }
  }
}
)");
  const int hoisted = ApplySpeculation(k);
  EXPECT_EQ(hoisted, 2);
  ir::CheckValid(k);
  // The if is now preceded by the two hoisted assignments.
  const auto& body = k.loop().body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0].kind, ir::StmtKind::kAssignTemp);
  EXPECT_EQ(body[1].kind, ir::StmtKind::kAssignTemp);
  EXPECT_EQ(body[2].kind, ir::StmtKind::kIf);
  EXPECT_EQ(body[2].then_body.size(), 1u);  // only the store remains guarded
  EXPECT_EQ(body[2].else_body.size(), 1u);
}

TEST(Speculate, UnmarkedIfUntouched) {
  ir::Kernel k = Parse(R"(
kernel nospec {
  array f64 x[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    if (x[i] < 1.0) {
      f64 t2 = x[i] * 2.0;
      o[i] = t2;
    }
  }
}
)");
  EXPECT_EQ(ApplySpeculation(k), 0);
  EXPECT_EQ(k.loop().body.size(), 1u);
}

TEST(Speculate, CarriedUpdatesStayGuarded) {
  ir::Kernel k = Parse(R"(
kernel carriedspec {
  array f64 x[8];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. 8 {
    @speculate if (x[i] < 1.0) {
      f64 t = x[i] * 2.0;
      sum = sum + t;
    } else {
      sum = sum + 1.0;
    }
  }
  after {
    out = sum;
  }
}
)");
  EXPECT_EQ(ApplySpeculation(k), 1);  // only t is hoisted
  const ir::Stmt& if_stmt = k.loop().body[1];
  ASSERT_EQ(if_stmt.kind, ir::StmtKind::kIf);
  EXPECT_EQ(if_stmt.then_body.size(), 1u);  // sum update stays
  EXPECT_EQ(if_stmt.else_body.size(), 1u);
}

// ---- ForwardStores ----

TEST(Forward, SameIndexLoadForwarded) {
  ir::Kernel k = Parse(R"(
kernel fwd {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    a[i] = o[i] * 2.0;
    o[i] = a[i] + 1.0;
  }
}
)");
  const int forwarded = ForwardStores(k);
  EXPECT_EQ(forwarded, 1);
  ir::CheckValid(k);
  // The store's value went through a temp, and the load of a[i] is gone:
  // only o[i] is loaded now.
  int a_loads = 0;
  ir::Kernel::VisitStmts(k.loop().body, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kIf) {
      return;
    }
    for (ir::SymbolId sym : k.SymbolsReadBy(s.value)) {
      a_loads += k.symbol(sym).name == "a" ? 1 : 0;
    }
  });
  EXPECT_EQ(a_loads, 0);
}

TEST(Forward, DifferentIndexNotForwarded) {
  ir::Kernel k = Parse(R"(
kernel nofwd {
  array f64 a[10];
  array f64 o[10];
  loop i = 1 .. 9 {
    a[i] = o[i] * 2.0;
    o[i] = a[i-1] + 1.0;
  }
}
)");
  EXPECT_EQ(ForwardStores(k), 0);
}

TEST(Forward, ConditionalStoreDoesNotForwardToUnconditionalLoad) {
  ir::Kernel k = Parse(R"(
kernel condstore {
  array f64 a[8];
  array f64 o[8];
  array i64 idx[8];
  loop i = 0 .. 8 {
    if (idx[i] < 4) {
      a[i] = 1.0;
    }
    o[i] = a[i];
  }
}
)");
  EXPECT_EQ(ForwardStores(k), 0);
}

TEST(Forward, ScalarStoreForwarded) {
  ir::Kernel k = Parse(R"(
kernel scal {
  array f64 a[8];
  scalar f64 s;
  array f64 o[8];
  loop i = 0 .. 8 {
    s = a[i] * 2.0;
    o[i] = s + 1.0;
  }
}
)");
  EXPECT_EQ(ForwardStores(k), 1);
  ir::CheckValid(k);
}

TEST(Forward, InterveningStoreKillsForwarding) {
  ir::Kernel k = Parse(R"(
kernel kill {
  array f64 a[10];
  array i64 idx[10];
  array f64 o[10];
  loop i = 0 .. 10 {
    a[i] = o[i] * 2.0;
    a[idx[i]] = 3.0;
    o[i] = a[i];
  }
}
)");
  EXPECT_EQ(ForwardStores(k), 0);
}

// ---- Fiberize ----

TEST(Fiber, IndependentProductsBecomeSeparateFibers) {
  // Figure 4's shape: two independent subtrees joined at the root.
  ir::Kernel k = Parse(R"(
kernel fig4 {
  param i64 p1;
  param i64 p2;
  array i64 a[8];
  array i64 o[8];
  loop i = 0 .. 8 {
    o[i] = (p2 % 7) + a[i] * (p1 % 13);
  }
}
)");
  const FiberStats stats = Fiberize(k);
  // Paper Figure 4: fibers C (p2%7), D (p1%13), B..A (the multiply+add
  // continue fiber... the multiply's children are leaf + D -> new fiber is
  // continued by the add? mul has one assigned child (D) -> continues D's
  // fiber; add has children C-fiber and D-fiber -> new fiber A.  Total 3.
  EXPECT_EQ(stats.initial_fibers, 3);
  ir::CheckValid(k);
}

TEST(Fiber, SingleChainIsOneFiber) {
  ir::Kernel k = Parse(R"(
kernel chain {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    o[i] = sqrt(abs(a[i] * 2.0 + 1.0));
  }
}
)");
  const FiberStats stats = Fiberize(k);
  EXPECT_EQ(stats.initial_fibers, 1);
}

TEST(Fiber, StoreValueBecomesTemp) {
  ir::Kernel k = Parse(R"(
kernel sv {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    o[i] = a[i] * 2.0;
  }
}
)");
  Fiberize(k);
  const ir::Stmt& store = k.loop().body.back();
  ASSERT_EQ(store.kind, ir::StmtKind::kStoreArray);
  EXPECT_EQ(k.expr(store.value).kind, ir::ExprKind::kTempRef);
}

TEST(Fiber, IfConditionBecomesTemp) {
  ir::Kernel k = Parse(R"(
kernel cnd {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    if (a[i] < 1.0) {
      o[i] = 1.0;
    }
  }
}
)");
  Fiberize(k);
  const ir::Stmt* if_stmt = nullptr;
  for (const ir::Stmt& s : k.loop().body) {
    if (s.kind == ir::StmtKind::kIf) {
      if_stmt = &s;
    }
  }
  ASSERT_NE(if_stmt, nullptr);
  EXPECT_EQ(k.expr(if_stmt->value).kind, ir::ExprKind::kTempRef);
}

TEST(Fiber, SemanticsPreserved) {
  // Fiberization must not change what the kernel computes.
  ir::Kernel original = Parse(R"(
kernel sem {
  array f64 a[16];
  array f64 o[16];
  loop i = 1 .. 15 {
    o[i] = (a[i] * 2.0 + a[i-1]) * (a[i+1] - 1.0) + (a[i] / (a[i] + 2.0));
  }
}
)");
  ir::Kernel fiberized = original;
  Fiberize(fiberized);

  auto run = [](const ir::Kernel& k) {
    ir::DataLayout layout(k);
    ir::ParamEnv env(k);
    std::vector<std::uint64_t> memory(layout.end(), 0);
    Rng rng(77);
    for (int i = 0; i < 16; ++i) {
      memory[layout.AddressOf(0) + static_cast<std::uint64_t>(i)] =
          std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
    }
    ir::Interpreter(k, layout, env, memory).Run();
    return memory;
  };
  EXPECT_EQ(run(original), run(fiberized));
}

// ---- code graph + merge ----

TEST(Graph, ReductionStatementsFuse) {
  ir::Kernel k = Parse(R"(
kernel red {
  array f64 a[8];
  scalar f64 out;
  carried f64 sum = 0.0;
  carried f64 sum2 = 0.0;
  loop i = 0 .. 8 {
    sum = sum + a[i];
    sum2 = sum2 + a[i] * a[i];
  }
  after {
    out = sum + sum2;
  }
}
)");
  Fiberize(k);
  const analysis::KernelIndex index(k);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  // sum's chain fuses into one node; sum2's into another; they are
  // independent reductions so they may be separate nodes.
  for (const GraphNode& node : graph.nodes) {
    EXPECT_FALSE(node.stmts.empty());
  }
  // sum's update and sum2's update must be in different-or-same nodes but
  // each node must contain its own full carried chain.
  const ir::StmtId sum_def = index.DefsOf(0).front();
  const ir::StmtId sum2_def = index.DefsOf(1).front();
  EXPECT_NE(graph.NodeOf(sum_def), -1);
  EXPECT_NE(graph.NodeOf(sum2_def), -1);
}

TEST(Graph, ScalarWriteFusesAllAccessors) {
  ir::Kernel k = Parse(R"(
kernel scalfuse {
  array f64 a[8];
  scalar f64 s;
  array f64 o[8];
  array f64 p[8];
  loop i = 0 .. 8 {
    s = a[i] * 2.0;
    o[i] = s + 1.0;
    p[i] = s + 2.0;
  }
}
)");
  // Note: forwarding would remove the loads; build the graph WITHOUT
  // forwarding to exercise the fusion path.
  Fiberize(k);
  const analysis::KernelIndex index(k);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  // The scalar store and both loads must share one node.
  int node = -1;
  for (const analysis::StmtEntry& entry : index.entries()) {
    bool touches_s = false;
    for (const analysis::MemAccess& access : entry.accesses) {
      touches_s |= k.symbol(access.sym).name == "s";
    }
    if (touches_s) {
      const int n = graph.NodeOf(entry.id);
      if (node == -1) {
        node = n;
      }
      EXPECT_EQ(n, node);
    }
  }
}

TEST(Graph, DisjointColumnsDoNotFuse) {
  ir::Kernel k = Parse(R"(
kernel cols {
  array f64 a[32];
  array f64 o[32];
  loop i = 0 .. 8 {
    o[2*i] = a[2*i] * 2.0;
    o[2*i+1] = a[2*i+1] * 3.0;
  }
}
)");
  Fiberize(k);
  const analysis::KernelIndex index(k);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  // The even and odd stores provably never collide: they can be separate.
  ir::StmtId even = -1, odd = -1;
  for (const analysis::StmtEntry& entry : index.entries()) {
    if (entry.stmt->kind == ir::StmtKind::kStoreArray) {
      (even == -1 ? even : odd) = entry.id;
    }
  }
  ASSERT_NE(even, -1);
  ASSERT_NE(odd, -1);
  EXPECT_NE(graph.NodeOf(even), graph.NodeOf(odd));
}

TEST(Graph, ExclusiveBranchStoresDoNotFuse) {
  ir::Kernel k = Parse(R"(
kernel excl {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    if (a[i] < 1.0) {
      o[i] = 1.0;
    } else {
      o[i] = 2.0;
    }
  }
}
)");
  Fiberize(k);
  const analysis::KernelIndex index(k);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  std::vector<ir::StmtId> stores;
  for (const analysis::StmtEntry& entry : index.entries()) {
    if (entry.stmt->kind == ir::StmtKind::kStoreArray) {
      stores.push_back(entry.id);
    }
  }
  ASSERT_EQ(stores.size(), 2u);
  EXPECT_NE(graph.NodeOf(stores[0]), graph.NodeOf(stores[1]));
}

TEST(Merge, ReducesToTargetPartitionCount) {
  ir::Kernel k = Parse(R"(
kernel many {
  array f64 a[16];
  array f64 o1[16];
  array f64 o2[16];
  array f64 o3[16];
  array f64 o4[16];
  loop i = 1 .. 15 {
    o1[i] = a[i] * 2.0 + a[i-1];
    o2[i] = a[i] * 3.0 - a[i+1];
    o3[i] = a[i] / (a[i] + 1.0);
    o4[i] = sqrt(abs(a[i])) + 1.0;
  }
}
)");
  Fiberize(k);
  const analysis::KernelIndex index(k);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  CompileOptions options;
  options.num_cores = 2;
  const auto partitions = MergeGraph(graph, options);
  EXPECT_LE(partitions.size(), 2u);
  EXPECT_GE(partitions.size(), 1u);
  std::size_t total = 0;
  for (const auto& p : partitions) {
    total += p.stmts.size();
  }
  std::size_t graph_total = 0;
  for (const auto& n : graph.nodes) {
    graph_total += n.stmts.size();
  }
  EXPECT_EQ(total, graph_total);  // nothing lost or duplicated
}

TEST(Merge, ThroughputHeuristicYieldsAcyclicPartitions) {
  ir::Kernel k = Parse(R"(
kernel tp {
  array f64 a[16];
  array f64 o[16];
  loop i = 1 .. 15 {
    f64 t1 = a[i] * 2.0;
    f64 t2 = t1 + a[i-1];
    f64 t3 = t2 * t1;
    o[i] = t3 + t2;
  }
}
)");
  Fiberize(k);
  const analysis::KernelIndex index(k);
  const analysis::CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const CodeGraph graph = BuildCodeGraph(index, cost);
  CompileOptions options;
  options.num_cores = 4;
  options.throughput_heuristic = true;
  const auto partitions = MergeGraph(graph, options);
  // Verify unidirectional dependences: build the partition-level dependence
  // relation and check antisymmetry.
  auto part_of = [&](ir::StmtId id) {
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      for (ir::StmtId s : partitions[p].stmts) {
        if (s == id) {
          return static_cast<int>(p);
        }
      }
    }
    return -1;
  };
  std::set<std::pair<int, int>> directions;
  for (const DepEdge& edge : graph.edges) {
    const int u = part_of(edge.producer);
    const int v = part_of(edge.consumer);
    if (u != v && u >= 0 && v >= 0) {
      directions.insert({u, v});
    }
  }
  for (const auto& [u, v] : directions) {
    EXPECT_FALSE(directions.contains({v, u}))
        << "cycle between partitions " << u << " and " << v;
  }
}

TEST(Partition, EndToEndStatsArePopulated) {
  ir::Kernel k = Parse(R"(
kernel stats {
  param f64 c;
  array f64 a[16];
  array f64 o[16];
  loop i = 1 .. 15 {
    o[i] = (a[i] * c + a[i-1]) * (a[i+1] - c) + sqrt(abs(a[i]));
  }
}
)");
  CompileOptions options;
  options.num_cores = 4;
  const PartitionResult result = PartitionKernel(k, options, nullptr);
  EXPECT_GT(result.initial_fibers, 0);
  EXPECT_GE(result.data_deps, 0);
  EXPECT_GE(result.load_balance, 1.0);
  EXPECT_LE(result.partitions.size(), 4u);
  EXPECT_GE(result.partitions.size(), 1u);
  // Every loop-body non-if statement is assigned to exactly one core.
  const analysis::KernelIndex index(result.kernel);
  for (const analysis::StmtEntry& entry : index.entries()) {
    if (!entry.in_epilogue && !entry.is_if) {
      EXPECT_TRUE(result.core_of.contains(entry.id));
    }
  }
}

}  // namespace
}  // namespace fgpar::compiler
