// Integration guard for the paper experiments: the evaluation's key
// *shape* properties must keep holding as the compiler evolves.  These run
// a subset of the full benches (the full sweeps live in bench/).
#include <gtest/gtest.h>

#include <map>

#include "kernels/experiments.hpp"
#include "support/stats.hpp"

namespace fgpar::kernels {
namespace {

std::vector<harness::KernelRun> RunAll(int cores) {
  ExperimentConfig config;
  config.cores = cores;
  return RunAllKernels(config);
}

const std::vector<harness::KernelRun>& Cached4() {
  static const std::vector<harness::KernelRun> runs = RunAll(4);
  return runs;
}

const std::vector<harness::KernelRun>& Cached2() {
  static const std::vector<harness::KernelRun> runs = RunAll(2);
  return runs;
}

double AverageSpeedup(const std::vector<harness::KernelRun>& runs) {
  std::vector<double> s;
  for (const harness::KernelRun& run : runs) {
    s.push_back(run.speedup);
  }
  return Mean(s);
}

const harness::KernelRun& Find(const std::vector<harness::KernelRun>& runs,
                               const std::string& id) {
  for (const harness::KernelRun& run : runs) {
    if (run.kernel_name == id) {
      return run;
    }
  }
  throw Error("missing run for " + id);
}

TEST(Experiments, Fig12AveragesInPaperBallpark) {
  // Paper: 1.32 (2-core), 2.05 (4-core).  Guard a generous band so normal
  // compiler evolution doesn't trip it, but regressions do.
  EXPECT_GT(AverageSpeedup(Cached2()), 1.15);
  EXPECT_LT(AverageSpeedup(Cached2()), 1.65);
  EXPECT_GT(AverageSpeedup(Cached4()), 1.75);
  EXPECT_LT(AverageSpeedup(Cached4()), 2.45);
}

TEST(Experiments, FourCoresBeatTwoCoresOnAverage) {
  EXPECT_GT(AverageSpeedup(Cached4()), AverageSpeedup(Cached2()));
}

TEST(Experiments, Umt2k6IsTheWorstKernel) {
  // Paper: the dependent-conditional chain shows no speedup (0.90).
  const harness::KernelRun& run = Find(Cached4(), "umt2k-6");
  EXPECT_LT(run.speedup, 1.25);
  for (const harness::KernelRun& other : Cached4()) {
    EXPECT_GE(other.speedup, run.speedup * 0.95) << other.kernel_name;
  }
}

TEST(Experiments, Irs1IsAmongTheBestKernels) {
  // Paper: the wide independent stencil is a top performer.
  const harness::KernelRun& run = Find(Cached4(), "irs-1");
  EXPECT_GT(run.speedup, 2.5);
}

TEST(Experiments, ConditionalReductionsShowWorstLoadBalance) {
  // Paper Table III: umt2k-2/3 have pathological load-balance ratios.
  double worst_other = 1.0;
  for (const harness::KernelRun& run : Cached4()) {
    if (run.kernel_name != "umt2k-2" && run.kernel_name != "umt2k-3") {
      worst_other = std::max(worst_other, run.load_balance);
    }
  }
  const double lb2 = Find(Cached4(), "umt2k-2").load_balance;
  const double lb3 = Find(Cached4(), "umt2k-3").load_balance;
  EXPECT_GT(std::max(lb2, lb3), 2.0);
}

TEST(Experiments, QueueCountsStaySmall) {
  // Paper Table III: at most 8 of the 24 available 4-core queues are used.
  for (const harness::KernelRun& run : Cached4()) {
    EXPECT_LE(run.queues_used, 12) << run.kernel_name;
  }
}

TEST(Experiments, LatencyDegradationIsMonotoneOnAverage) {
  // Paper Figure 13 direction: higher transfer latency, lower speedup.
  double previous = 1e9;
  for (int latency : {5, 50}) {
    ExperimentConfig config;
    config.cores = 4;
    config.transfer_latency = latency;
    const double avg = AverageSpeedup(RunAllKernels(config));
    EXPECT_LT(avg, previous + 0.02);
    previous = avg;
  }
}

TEST(Experiments, SpeculationHelpsTheCarriedConditionKernels) {
  // Paper Figure 14 direction, on the kernels built for it.
  for (const char* id : {"umt2k-3", "sphot-2"}) {
    ExperimentConfig base;
    base.cores = 4;
    ExperimentConfig spec = base;
    spec.speculation = true;
    const double without = RunKernel(SequoiaKernelById(id), base).speedup;
    const double with = RunKernel(SequoiaKernelById(id), spec).speedup;
    EXPECT_GT(with, without * 1.05) << id;
  }
}

TEST(Experiments, ApplicationProjectionUsesAmdahl) {
  std::map<std::string, double> speedups;
  for (const SequoiaApplication& app : SequoiaApplications()) {
    for (const std::string& id : app.kernel_ids) {
      speedups[id] = 2.0;  // uniform kernel speedup
    }
  }
  // With every kernel at 2x, an app covering weight W speeds up by
  // 1 / (1 - W/2).
  const SequoiaApplication& lammps = SequoiaApplications()[0];
  double weight = 0.0;
  for (const std::string& id : lammps.kernel_ids) {
    weight += SequoiaKernelById(id).pct_time / 100.0;
  }
  const double expected = 1.0 / ((1.0 - weight) + weight / 2.0);
  EXPECT_NEAR(ApplicationSpeedup(lammps, speedups), expected, 1e-12);
}

TEST(Experiments, ApplicationSpeedupRejectsMissingKernel) {
  EXPECT_THROW(ApplicationSpeedup(SequoiaApplications()[0], {}), Error);
}

}  // namespace
}  // namespace fgpar::kernels
