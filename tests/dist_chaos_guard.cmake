# Distributed chaos drill, run as a ctest entry (cmake -P).
#
# Proves the fault-tolerant sweep coordinator's whole story on the fig12
# smoke grid (6 points: 3 kernels x {2,4} cores):
#
#   run A  — clean single-host baseline: the classic in-process
#            supervisor, no distribution at all.
#   run B1 — the same sweep under --workers 2 with maximum carnage:
#            FGPAR_DIST_KILL_AFTER=1 makes every worker process SIGKILL
#            itself the moment it starts a second point (so each process
#            contributes at most one result before dying), and
#            FGPAR_COORD_EXIT_AFTER=5 SIGKILLs the coordinator itself
#            after the fifth commit.  Reaching five commits with two
#            one-shot workers forces at least three died-and-respawned
#            worker processes first, so the drill provably covers >=3
#            worker SIGKILLs plus one coordinator SIGKILL.  Must die
#            nonzero, leaving journals behind.
#   run B2 — coordinator restart: --workers 4 --resume tolerantly merges
#            every journal in the work dir (the dead coordinator's plus
#            all dead workers'), adopts the committed points, and
#            finishes the sweep with a wider worker pool — still under
#            FGPAR_DIST_KILL_AFTER=1.  (B1 deliberately uses only two
#            workers: five commits from one-shot workers then *provably*
#            require three respawned processes; four workers would let
#            the initial pool cover most commits and turn the >=3 floor
#            into a race.)
#
# Run B2's stdout table and deterministic BENCH_fig12.json must be
# byte-identical to run A's: arbitrary worker SIGKILLs, duplicated
# (re-queued or stolen) points, a coordinator kill -9, and a tolerant
# journal merge are all invisible in the results.
#
# Usage:
#   cmake -DFIG12=<fig12_speedup exe> -DWORK_DIR=<scratch dir>
#         -P dist_chaos_guard.cmake

if(NOT DEFINED FIG12 OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "dist_chaos_guard.cmake requires -DFIG12 and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/clean" "${WORK_DIR}/dist")

set(ENV{FGPAR_BENCH_DETERMINISTIC} "1")
set(ENV{FGPAR_SWEEP_THREADS} "2")

# ---- run A: clean single-host baseline -------------------------------------
set(ENV{FGPAR_BENCH_DIR} "${WORK_DIR}/clean")
execute_process(
  COMMAND ${FIG12} --smoke
  OUTPUT_VARIABLE stdout_a
  ERROR_VARIABLE stderr_a
  RESULT_VARIABLE status_a)
if(NOT status_a EQUAL 0)
  message(FATAL_ERROR "clean baseline run failed (${status_a}):\n${stderr_a}")
endif()

# ---- run B1: distributed sweep under maximum carnage -----------------------
set(dist_args --smoke --work-dir "${WORK_DIR}/dist/coord"
    --slice-points 1 --lease-ms 1000 --connect-budget 8)
set(ENV{FGPAR_BENCH_DIR} "${WORK_DIR}/dist")
set(ENV{FGPAR_DIST_KILL_AFTER} "1")
set(ENV{FGPAR_COORD_EXIT_AFTER} "5")
execute_process(
  COMMAND ${FIG12} ${dist_args} --workers 2
  OUTPUT_VARIABLE stdout_b1
  ERROR_VARIABLE stderr_b1
  RESULT_VARIABLE status_b1)
unset(ENV{FGPAR_COORD_EXIT_AFTER})
if(status_b1 EQUAL 0)
  message(FATAL_ERROR "run B1 survived FGPAR_COORD_EXIT_AFTER=5; the "
    "coordinator kill -9 never happened:\n${stderr_b1}")
endif()
file(GLOB journals_b1 "${WORK_DIR}/dist/coord/*.ckpt")
if(journals_b1 STREQUAL "")
  message(FATAL_ERROR "run B1 died without leaving any journal:\n${stderr_b1}")
endif()

# ---- run B2: coordinator restart, resume, finish ---------------------------
execute_process(
  COMMAND ${FIG12} ${dist_args} --workers 4 --resume
  OUTPUT_VARIABLE stdout_b2
  ERROR_VARIABLE stderr_b2
  RESULT_VARIABLE status_b2)
unset(ENV{FGPAR_DIST_KILL_AFTER})
if(NOT status_b2 EQUAL 0)
  message(FATAL_ERROR "run B2 (resume) failed (${status_b2}):\n${stderr_b2}")
endif()
if(NOT stderr_b2 MATCHES "resumed [0-9]+ completed points")
  message(FATAL_ERROR "run B2 did not adopt the journaled points:\n${stderr_b2}")
endif()

# ---- the drill must actually have killed workers ---------------------------
string(REGEX MATCHALL "died; re-spawning" respawns
  "${stderr_b1}${stderr_b2}")
list(LENGTH respawns respawn_count)
if(respawn_count LESS 3)
  message(FATAL_ERROR
    "only ${respawn_count} worker deaths were reaped (need >= 3); the "
    "chaos drill lost its teeth\nB1:\n${stderr_b1}\nB2:\n${stderr_b2}")
endif()

# ---- carnage must be invisible in the results ------------------------------
if(NOT stdout_b2 STREQUAL stdout_a)
  file(WRITE "${WORK_DIR}/stdout_clean.txt" "${stdout_a}")
  file(WRITE "${WORK_DIR}/stdout_dist.txt" "${stdout_b2}")
  message(FATAL_ERROR
    "distributed run's stdout differs from the clean single-host run's "
    "(see ${WORK_DIR}/stdout_clean.txt vs stdout_dist.txt)")
endif()
file(READ "${WORK_DIR}/clean/BENCH_fig12.json" artifact_a)
file(READ "${WORK_DIR}/dist/BENCH_fig12.json" artifact_b)
if(NOT artifact_a STREQUAL artifact_b)
  message(FATAL_ERROR
    "distributed run's BENCH_fig12.json differs from the clean run's "
    "(${WORK_DIR}/clean vs ${WORK_DIR}/dist)")
endif()

message(STATUS
  "chaos drill OK: ${respawn_count} worker SIGKILLs reaped, 1 coordinator "
  "kill -9 + resume, results byte-identical to the clean run")
