// fuzz_smoke — property-fuzz sweep for CI, registered as a ctest with the
// "fuzz_smoke" label.
//
// Drives a contiguous GenerateRandomKernel seed range through the full
// verifying pipeline (reference interpreter / compiled sequential /
// compiled parallel must leave bit-identical memory) at 2 and 4 cores.
// Any failure is reported with the seed as a one-line repro command so it
// can be replayed in isolation:
//
//   fuzz_smoke --seed <s>
//
// Usage:
//   fuzz_smoke [--start N] [--count N] [--cores N] [--seed N]
//
// --seed runs exactly one seed (the repro mode); otherwise seeds
// [start, start+count) are swept across host threads.  Exit 0 when every
// seed passes, 1 otherwise.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"
#include "harness/random_kernel.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "support/error.hpp"

namespace {

// Triple-checks one generated kernel at one core count; returns the error
// text ("" on success).
std::string CheckSeed(std::uint64_t seed, int cores) {
  using namespace fgpar;
  try {
    const harness::RandomKernelCase generated =
        harness::GenerateRandomKernel(seed);
    harness::KernelRunner runner(generated.kernel, generated.init);
    harness::RunConfig config;
    config.compile.num_cores = cores;
    config.seed = seed;
    // A generator or compiler bug that produces a non-terminating program
    // must surface as a CycleBudgetError, not a hung CI job.
    config.max_cycles = 50'000'000;
    config.fallback.fall_back_to_sequential = false;
    (void)runner.Run(config);
    return "";
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgpar;

  const long long single = benchutil::FlagInt(argc, argv, "--seed", -1);
  const std::uint64_t start = static_cast<std::uint64_t>(
      benchutil::FlagInt(argc, argv, "--start", 1));
  const std::size_t count =
      single >= 0 ? 1
                  : static_cast<std::size_t>(
                        benchutil::FlagInt(argc, argv, "--count", 40));
  const int cores =
      static_cast<int>(benchutil::FlagInt(argc, argv, "--cores", 0));
  const std::vector<int> core_counts =
      cores > 0 ? std::vector<int>{cores} : std::vector<int>{2, 4};

  std::atomic<int> failures{0};
  harness::RunSweep(count, harness::ResolveSweepThreads(0), [&](std::size_t i) {
    const std::uint64_t seed =
        single >= 0 ? static_cast<std::uint64_t>(single) : start + i;
    for (const int c : core_counts) {
      const std::string error = CheckSeed(seed, c);
      if (!error.empty()) {
        ++failures;
        std::fprintf(stderr,
                     "seed %llu failed at %d cores: %s\n"
                     "repro: fuzz_smoke --seed %llu --cores %d\n",
                     static_cast<unsigned long long>(seed), c, error.c_str(),
                     static_cast<unsigned long long>(seed), c);
      }
    }
    return 0;
  });

  std::printf("fuzz_smoke: %zu seeds x %zu core counts, %d failures\n", count,
              core_counts.size(), failures.load());
  return failures.load() == 0 ? 0 : 1;
}
