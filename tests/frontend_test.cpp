// Tests for the kernel-language lexer and parser.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/layout.hpp"
#include "support/rng.hpp"
#include "ir/interp.hpp"
#include "ir/printer.hpp"
#include "support/error.hpp"

namespace fgpar::frontend {
namespace {

TEST(Lexer, TokenizesRepresentativeInput) {
  const auto tokens = Lex("kernel k { loop i = 0 .. n { a[i] = 1.5; } }");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKernel);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "k");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, NumbersClassifyIntVsFloat) {
  const auto tokens = Lex("42 4.5 1e3 2.5e-2 7");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 4.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_EQ(tokens[4].kind, TokenKind::kIntLit);
}

TEST(Lexer, RangeOperatorDoesNotEatIntoFloat) {
  const auto tokens = Lex("0 .. 10 0..10");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDotDot);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[4].kind, TokenKind::kDotDot);
}

TEST(Lexer, TwoCharOperators) {
  const auto tokens = Lex("== != <= >= << >> = < >");
  EXPECT_EQ(tokens[0].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kShl);
  EXPECT_EQ(tokens[5].kind, TokenKind::kShr);
  EXPECT_EQ(tokens[6].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[7].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[8].kind, TokenKind::kGt);
}

TEST(Lexer, CommentsSkippedAndLinesTracked) {
  const auto tokens = Lex("a # comment with kernel keyword\nb");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, SpeculateAnnotation) {
  const auto tokens = Lex("@speculate if");
  EXPECT_EQ(tokens[0].kind, TokenKind::kAtSpeculate);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIf);
}

TEST(Lexer, UnknownAnnotationFails) {
  EXPECT_THROW(Lex("@wat"), ParseError);
}

TEST(Lexer, UnexpectedCharacterFails) {
  try {
    Lex("a $ b");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 3);
  }
}

constexpr const char* kDotKernel = R"(
# dot product with a reduction
kernel dot {
  param i64 n;
  array f64 a[64];
  array f64 b[64];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. n {
    sum = sum + a[i] * b[i];
  }
  after {
    out = sum;
  }
}
)";

TEST(Parser, ParsesDotProduct) {
  ir::Kernel k = ParseKernel(kDotKernel);
  EXPECT_EQ(k.name(), "dot");
  EXPECT_EQ(k.symbols().size(), 4u);
  EXPECT_EQ(k.temps().size(), 1u);
  EXPECT_TRUE(k.temps()[0].carried);
  EXPECT_EQ(k.loop().body.size(), 1u);
  EXPECT_EQ(k.epilogue().size(), 1u);
}

TEST(Parser, ParsedKernelInterpretsCorrectly) {
  ir::Kernel k = ParseKernel(kDotKernel);
  ir::DataLayout layout(k);
  ir::ParamEnv env(k);
  env.SetI64(0, 64);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  for (int i = 0; i < 64; ++i) {
    memory[layout.AddressOf(1) + static_cast<std::uint64_t>(i)] =
        std::bit_cast<std::uint64_t>(1.0);
    memory[layout.AddressOf(2) + static_cast<std::uint64_t>(i)] =
        std::bit_cast<std::uint64_t>(2.0);
  }
  ir::Interpreter(k, layout, env, memory).Run();
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(memory[layout.AddressOf(3)]), 128.0);
}

TEST(Parser, TempDefinitionsAndPrecedence) {
  ir::Kernel k = ParseKernel(R"(
kernel prec {
  array f64 out[8];
  loop i = 0 .. 8 {
    f64 t = 1.0 + 2.0 * 3.0;
    out[i] = t;
  }
}
)");
  // 1 + (2*3), not (1+2)*3
  const std::string text = ir::PrintKernel(k);
  EXPECT_NE(text.find("(1.0 + (2.0 * 3.0))"), std::string::npos);
}

TEST(Parser, IntrinsicCallsAndCasts) {
  ir::Kernel k = ParseKernel(R"(
kernel intr {
  array f64 out[8];
  loop i = 0 .. 8 {
    f64 a = sqrt(4.0) + abs(-2.0);
    f64 b = min(a, 1.0) + max(a, 1.0);
    f64 c = f64(i) + f64(i64(b));
    out[i] = select(i < 4, a + b, c);
  }
}
)");
  EXPECT_EQ(k.loop().body.size(), 4u);
}

TEST(Parser, ConditionalWithSpeculateDirective) {
  ir::Kernel k = ParseKernel(R"(
kernel spec {
  array f64 out[8];
  array f64 x[8];
  loop i = 0 .. 8 {
    @speculate if (x[i] < 0.5) {
      out[i] = x[i] * 2.0;
    } else {
      out[i] = x[i] * 3.0;
    }
  }
}
)");
  ASSERT_EQ(k.loop().body.size(), 1u);
  const ir::Stmt& if_stmt = k.loop().body[0];
  EXPECT_EQ(if_stmt.kind, ir::StmtKind::kIf);
  EXPECT_TRUE(if_stmt.speculation_safe);
  EXPECT_EQ(if_stmt.then_body.size(), 1u);
  EXPECT_EQ(if_stmt.else_body.size(), 1u);
}

TEST(Parser, NestedConditionals) {
  ir::Kernel k = ParseKernel(R"(
kernel nested {
  array i64 out[16];
  loop i = 0 .. 16 {
    if (i < 8) {
      if (i < 4) {
        out[i] = 1;
      } else {
        out[i] = 2;
      }
    } else {
      out[i] = 3;
    }
  }
}
)");
  const ir::Stmt& outer = k.loop().body[0];
  ASSERT_EQ(outer.then_body.size(), 1u);
  EXPECT_EQ(outer.then_body[0].kind, ir::StmtKind::kIf);
}

TEST(Parser, SourceLinesRecorded) {
  ir::Kernel k = ParseKernel(
      "kernel lines {\n"      // line 1
      "  array f64 a[4];\n"   // line 2
      "  loop i = 0 .. 4 {\n" // line 3
      "    a[i] = 1.0;\n"     // line 4
      "\n"
      "    a[i] = 2.0;\n"     // line 6
      "  }\n"
      "}\n");
  ASSERT_EQ(k.loop().body.size(), 2u);
  EXPECT_EQ(k.loop().body[0].source_line, 4);
  EXPECT_EQ(k.loop().body[1].source_line, 6);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    ParseKernel("kernel e {\n  loop i = 0 .. 4 {\n    undeclared[i] = 1.0;\n  }\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("undeclared"), std::string::npos);
  }
}

TEST(Parser, TypeMismatchRejectedWithHint) {
  try {
    ParseKernel(R"(
kernel tm {
  array f64 a[4];
  loop i = 0 .. 4 {
    a[i] = 1;
  }
}
)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("casts"), std::string::npos);
  }
}

TEST(Parser, AssigningToParamRejected) {
  EXPECT_THROW(ParseKernel(R"(
kernel ap {
  param f64 p;
  loop i = 0 .. 4 {
    p = 1.0;
  }
}
)"),
               ParseError);
}

TEST(Parser, PlainTempReassignmentRejectedByValidation) {
  EXPECT_THROW(ParseKernel(R"(
kernel ssa {
  array f64 out[4];
  loop i = 0 .. 4 {
    f64 t = 1.0;
    t = 2.0;
    out[i] = t;
  }
}
)"),
               Error);
}

TEST(Parser, MissingSemicolonRejected) {
  EXPECT_THROW(ParseKernel("kernel m { array f64 a[4] loop i = 0 .. 4 { } }"),
               ParseError);
}

TEST(Parser, IvShadowingRejected) {
  EXPECT_THROW(ParseKernel(R"(
kernel shadow {
  param i64 i;
  loop i = 0 .. 4 {
  }
}
)"),
               ParseError);
}

TEST(Parser, UnaryOperators) {
  ir::Kernel k = ParseKernel(R"(
kernel un {
  array i64 out[4];
  loop i = 0 .. 4 {
    out[i] = -i + !i;
  }
}
)");
  ir::DataLayout layout(k);
  ir::ParamEnv env(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  ir::Interpreter(k, layout, env, memory).Run();
  EXPECT_EQ(static_cast<std::int64_t>(memory[layout.AddressOf(0)]), 1);   // -0 + !0
  EXPECT_EQ(static_cast<std::int64_t>(memory[layout.AddressOf(0) + 2]), -2);
}

// ---- print/parse round trip ----

TEST(Printer, OutputReparsesToAnEquivalentKernel) {
  constexpr const char* kSource = R"(
kernel round_trip {
  param i64 n;
  param f64 c;
  array f64 a[64];
  array f64 o[64];
  array i64 idx[64];
  scalar f64 out;
  carried f64 sum = 0.25;
  loop i = 2 .. n {
    f64 v = a[i] * c + a[i-1] / (abs(a[i+2]) + 1.0);
    f64 g = a[idx[i]] - min(v, 2.0);
    if (v < max(g, 1.0)) {
      o[i] = select(i % 2 == 0, v, g) * 2.0;
    } else {
      o[i] = sqrt(abs(v)) + f64(i64(g));
    }
    sum = sum + v;
  }
  after {
    out = sum;
  }
}
)";
  ir::Kernel original = ParseKernel(kSource);
  const std::string printed = ir::PrintKernel(original);
  ir::Kernel reparsed = ParseKernel(printed);

  auto run = [](const ir::Kernel& k) {
    ir::DataLayout layout(k);
    ir::ParamEnv env(k);
    std::vector<std::uint64_t> memory(layout.end(), 0);
    Rng rng(55);
    for (const ir::Symbol& sym : k.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        if (sym.type == ir::ScalarType::kI64) {
          env.SetI64(sym.id, 60);
        } else {
          env.SetF64(sym.id, 1.25);
        }
      } else if (sym.kind == ir::SymbolKind::kArray) {
        const std::uint64_t base = layout.AddressOf(sym.id);
        for (std::int64_t i = 0; i < sym.array_size; ++i) {
          memory[base + static_cast<std::uint64_t>(i)] =
              sym.type == ir::ScalarType::kF64
                  ? std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0))
                  : static_cast<std::uint64_t>(rng.NextInt(0, sym.array_size - 1));
        }
      }
    }
    ir::Interpreter(k, layout, env, memory).Run();
    return memory;
  };
  EXPECT_EQ(run(original), run(reparsed));
}

TEST(Printer, SequoiaKernelsAllRoundTrip) {
  // Structural re-parse of every reconstructed kernel's printed form.
  // (Execution equivalence for these is covered by the interpreter check
  // above and by the triple-check kernel tests.)
  for (const char* source : {kDotKernel}) {
    ir::Kernel original = ParseKernel(source);
    ir::Kernel reparsed = ParseKernel(ir::PrintKernel(original));
    EXPECT_EQ(original.stmt_count(), reparsed.stmt_count());
    EXPECT_EQ(original.temps().size(), reparsed.temps().size());
    EXPECT_EQ(original.symbols().size(), reparsed.symbols().size());
  }
}

}  // namespace
}  // namespace fgpar::frontend
