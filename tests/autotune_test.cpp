// Tests for the deterministic per-kernel autotuner (harness/autotune.*):
// space enumeration, knob application, the predict-rank-simulate-choose
// loop's frontier discipline and never-worse guarantee, agreement with an
// exhaustive simulation on a golden space, and the fgpar-tune-v1 codec.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/autotune.hpp"
#include "kernels/sequoia.hpp"
#include "support/error.hpp"

namespace {

using namespace fgpar;

const kernels::SequoiaKernel& KernelById(const std::string& id) {
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    if (spec.id == id) {
      return spec;
    }
  }
  throw Error("no such sequoia kernel: " + id);
}

TEST(TuneSpace, EnumerateIsFixedOrderCompleteAndDuplicateFree) {
  const harness::TuneSpace space;
  const std::vector<harness::TunePoint> points = space.Enumerate();
  // 3 core counts x 3 capacities x 3 merges x 2 speculation = 54.
  ASSERT_EQ(points.size(), 54u);
  // Nested order: cores, then capacities, then merges, then speculation.
  EXPECT_EQ(points.front(), (harness::TunePoint{2, 4, false, 0}));
  EXPECT_EQ(points[1], (harness::TunePoint{2, 4, true, 0}));
  EXPECT_EQ(points[2], (harness::TunePoint{2, 4, false, 1}));
  EXPECT_EQ(points.back(), (harness::TunePoint{4, 20, true, 2}));
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_FALSE(points[i] == points[j]) << i << " duplicates " << j;
    }
  }
}

TEST(TuneSpace, MergeShapeNamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(harness::MergeShapeName(0), "affinity");
  EXPECT_EQ(harness::MergeShapeName(1), "multi_pair");
  EXPECT_EQ(harness::MergeShapeName(2), "throughput");
  for (int merge = 0; merge < 3; ++merge) {
    EXPECT_EQ(harness::MergeShapeFromName(harness::MergeShapeName(merge)),
              merge);
  }
  EXPECT_THROW(harness::MergeShapeName(3), Error);
  EXPECT_THROW(harness::MergeShapeFromName("fastest"), Error);
  harness::TunePoint point;
  point.cores = 4;
  point.queue_capacity = 20;
  point.speculation = true;
  point.merge = 2;
  EXPECT_EQ(harness::TunePointLabel(point), "c4 q20 spec=1 merge=throughput");
}

TEST(TuneSpace, ApplyTunePointMapsEveryKnob) {
  harness::TunePoint point;
  point.cores = 3;
  point.queue_capacity = 8;
  point.speculation = true;
  point.merge = 2;
  const harness::RunConfig config =
      harness::ApplyTunePoint(harness::RunConfig{}, point);
  EXPECT_EQ(config.compile.num_cores, 3);
  EXPECT_TRUE(config.compile.speculation);
  EXPECT_FALSE(config.compile.multi_pair_merge);
  EXPECT_TRUE(config.compile.throughput_heuristic);
  EXPECT_EQ(config.queue.capacity, 8);
  EXPECT_EQ(config.compile.assumed_queue_capacity, 8);

  point.merge = 1;
  const harness::RunConfig multi =
      harness::ApplyTunePoint(harness::RunConfig{}, point);
  EXPECT_TRUE(multi.compile.multi_pair_merge);
  EXPECT_FALSE(multi.compile.throughput_heuristic);
}

TEST(Autotune, SimulatesOnlyTheFrontierAndNeverLosesToDefault) {
  const kernels::SequoiaKernel& spec = KernelById("umt2k-2");
  const harness::TuneSpace space;  // 54 points
  harness::TuneOptions options;
  options.sweep_threads = 1;
  const harness::TuneResult result = harness::AutotuneKernel(
      kernels::ParseSequoia(spec), kernels::SequoiaInit(spec), space, options);

  EXPECT_EQ(result.enumerated, 54u);
  // Frontier bound: max(1, floor(0.25 * 54)) = 13, default included.
  EXPECT_EQ(result.frontier_size, 13u);
  EXPECT_LE(result.simulated, result.frontier_size);
  std::size_t simulated = 0;
  for (const harness::TuneCandidate& candidate : result.candidates) {
    simulated += candidate.simulated ? 1 : 0;
    if (!candidate.simulated) {
      EXPECT_EQ(candidate.simulated_speedup, 0.0);
    }
  }
  EXPECT_EQ(simulated, result.simulated);
  EXPECT_LE(4 * simulated, result.enumerated + 4);  // the <= 25% contract

  // The default anchors the never-worse guarantee: always simulated, only
  // beaten by a strictly faster simulated point.
  EXPECT_TRUE(result.candidates[result.default_index].simulated);
  EXPECT_TRUE(result.candidates[result.best_index].simulated);
  EXPECT_GE(result.best_speedup, result.default_speedup);
  EXPECT_EQ(harness::BestPoint(result),
            result.candidates[result.best_index].point);
}

TEST(Autotune, FrontierFindsTheExhaustiveBestOnAGoldenSpace) {
  // A reduced golden space (16 points) small enough to simulate
  // exhaustively: the 25%-frontier run must land on the same best point
  // with the same simulated speedup as the simulate-everything run, and
  // repeated frontier runs must be byte-identical.
  harness::TuneSpace space;
  space.core_counts = {2, 4};
  space.queue_capacities = {4, 20};
  space.merges = {0, 2};
  space.speculation = {false, true};

  const kernels::SequoiaKernel& spec = KernelById("umt2k-2");
  const ir::Kernel kernel = kernels::ParseSequoia(spec);
  const harness::WorkloadInit init = kernels::SequoiaInit(spec);

  harness::TuneOptions exhaustive_options;
  exhaustive_options.sweep_threads = 1;
  exhaustive_options.frontier_fraction = 1.0;
  const harness::TuneResult exhaustive =
      harness::AutotuneKernel(kernel, init, space, exhaustive_options);
  EXPECT_EQ(exhaustive.enumerated, 16u);
  EXPECT_EQ(exhaustive.frontier_size, 16u);
  EXPECT_EQ(exhaustive.simulated, 16u);

  harness::TuneOptions frontier_options;
  frontier_options.sweep_threads = 1;  // default frontier_fraction = 0.25
  const harness::TuneResult frontier =
      harness::AutotuneKernel(kernel, init, space, frontier_options);
  EXPECT_EQ(frontier.frontier_size, 4u);
  EXPECT_LE(frontier.simulated, 4u);

  EXPECT_EQ(harness::BestPoint(frontier), harness::BestPoint(exhaustive));
  EXPECT_DOUBLE_EQ(frontier.best_speedup, exhaustive.best_speedup);
  EXPECT_GE(frontier.best_speedup, frontier.default_speedup);

  const harness::TuneResult again =
      harness::AutotuneKernel(kernel, init, space, frontier_options);
  EXPECT_EQ(harness::EncodeTuneArtifact(again),
            harness::EncodeTuneArtifact(frontier));
}

TEST(Autotune, TuneArtifactRoundTripsAndRejectsWrongSchema) {
  harness::TuneSpace space;
  space.core_counts = {2};
  space.queue_capacities = {4};
  space.merges = {0, 1};
  space.speculation = {false};

  const kernels::SequoiaKernel& spec = KernelById("lammps-1");
  harness::TuneOptions options;
  options.sweep_threads = 1;
  options.frontier_fraction = 1.0;
  const harness::TuneResult result = harness::AutotuneKernel(
      kernels::ParseSequoia(spec), kernels::SequoiaInit(spec), space, options);

  const std::string json = harness::EncodeTuneArtifact(result);
  EXPECT_NE(json.find(harness::kTuneSchema), std::string::npos);
  const harness::TuneResult parsed = harness::ParseTuneArtifact(json);
  EXPECT_EQ(parsed.kernel, result.kernel);
  EXPECT_EQ(parsed.enumerated, result.enumerated);
  EXPECT_EQ(parsed.frontier_size, result.frontier_size);
  EXPECT_EQ(parsed.simulated, result.simulated);
  EXPECT_EQ(parsed.best_index, result.best_index);
  EXPECT_EQ(parsed.default_index, result.default_index);
  EXPECT_EQ(parsed.best_speedup, result.best_speedup);      // bitwise
  EXPECT_EQ(parsed.default_speedup, result.default_speedup);
  ASSERT_EQ(parsed.candidates.size(), result.candidates.size());
  for (std::size_t i = 0; i < parsed.candidates.size(); ++i) {
    EXPECT_EQ(parsed.candidates[i].point, result.candidates[i].point);
    EXPECT_EQ(parsed.candidates[i].feasible, result.candidates[i].feasible);
    EXPECT_EQ(parsed.candidates[i].simulated, result.candidates[i].simulated);
    EXPECT_EQ(parsed.candidates[i].predicted_speedup,
              result.candidates[i].predicted_speedup);
    EXPECT_EQ(parsed.candidates[i].simulated_speedup,
              result.candidates[i].simulated_speedup);
  }
  // Round-trip stability: parse(encode(x)) re-encodes byte-identically.
  EXPECT_EQ(harness::EncodeTuneArtifact(parsed), json);

  EXPECT_THROW(harness::ParseTuneArtifact("{\"schema\":\"fgpar-tune-v0\"}"),
               Error);
  EXPECT_THROW(harness::ParseTuneArtifact("not json"), Error);
}

}  // namespace
