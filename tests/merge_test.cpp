// Unit tests for the merge stage: affinity heuristics, the balance cap,
// candidate enumeration, the topological pipeline cut, refinement, and the
// queue-budget constraint.
#include <gtest/gtest.h>

#include <set>

#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "compiler/fiber.hpp"
#include "compiler/forward.hpp"
#include "compiler/graph.hpp"
#include "compiler/merge.hpp"
#include "compiler/split.hpp"
#include "frontend/parser.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

struct GraphFixture {
  ir::Kernel kernel;
  std::unique_ptr<analysis::KernelIndex> index;
  analysis::CostModel cost{sim::CoreTiming{}, sim::CacheConfig{}, nullptr};
  CodeGraph graph;

  explicit GraphFixture(const char* source)
      : kernel(frontend::ParseKernel(source)) {
    SplitExpressions(kernel, 4);
    ForwardStores(kernel);
    Fiberize(kernel);
    index = std::make_unique<analysis::KernelIndex>(kernel);
    graph = BuildCodeGraph(*index, cost);
  }
};

constexpr const char* kWide = R"(
kernel wide {
  param i64 n;
  array f64 a[64];
  array f64 o1[64];
  array f64 o2[64];
  array f64 o3[64];
  array f64 o4[64];
  loop i = 2 .. n {
    o1[i] = a[i] * 2.0 + a[i-1];
    o2[i] = a[i] * 3.0 - a[i+1];
    o3[i] = a[i] / (a[i] + 1.0) + a[i-2];
    o4[i] = sqrt(abs(a[i])) * a[i+2];
  }
}
)";

std::size_t TotalStmts(const std::vector<MergedPartition>& parts) {
  std::size_t total = 0;
  for (const MergedPartition& p : parts) {
    total += p.stmts.size();
  }
  return total;
}

std::size_t GraphStmts(const CodeGraph& graph) {
  std::size_t total = 0;
  for (const GraphNode& node : graph.nodes) {
    total += node.stmts.size();
  }
  return total;
}

TEST(Merge, PartitionsPartitionTheStatements) {
  GraphFixture f(kWide);
  for (int cores : {1, 2, 3, 4, 8}) {
    CompileOptions options;
    options.num_cores = cores;
    const auto parts = MergeGraph(f.graph, options);
    EXPECT_LE(static_cast<int>(parts.size()), std::max(2, cores));
    EXPECT_EQ(TotalStmts(parts), GraphStmts(f.graph));
    // No statement appears twice.
    std::set<ir::StmtId> seen;
    for (const MergedPartition& p : parts) {
      for (ir::StmtId s : p.stmts) {
        EXPECT_TRUE(seen.insert(s).second);
      }
    }
  }
}

TEST(Merge, BalanceCapPreventsSnowballing) {
  GraphFixture f(kWide);
  CompileOptions options;
  options.num_cores = 4;
  const auto parts = MergeGraph(f.graph, options);
  ASSERT_GE(parts.size(), 2u);
  double total = 0.0;
  double max_cost = 0.0;
  for (const MergedPartition& p : parts) {
    total += p.cost;
    max_cost = std::max(max_cost, p.cost);
  }
  // The biggest partition stays within (roughly) the configured factor of
  // its fair share.  Allow slack for indivisible nodes.
  EXPECT_LT(max_cost, options.balance_cap * total / parts.size() * 2.0);
}

TEST(Merge, EnumerationIsDeduplicatedAndComplete) {
  GraphFixture f(kWide);
  CompileOptions options;
  options.num_cores = 4;
  const auto candidates = EnumerateCandidates(f.graph, options);
  EXPECT_GE(candidates.size(), 2u);  // at least one per shape
  std::set<std::vector<std::vector<ir::StmtId>>> keys;
  for (const auto& candidate : candidates) {
    EXPECT_EQ(TotalStmts(candidate), GraphStmts(f.graph));
    std::vector<std::vector<ir::StmtId>> key;
    for (auto parts = candidate; auto& p : parts) {
      std::sort(p.stmts.begin(), p.stmts.end());
      key.push_back(p.stmts);
    }
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(keys.insert(key).second) << "duplicate candidate";
  }
}

TEST(Merge, ThroughputHeuristicProducesOneCandidate) {
  GraphFixture f(kWide);
  CompileOptions options;
  options.num_cores = 4;
  options.throughput_heuristic = true;
  const auto candidates = EnumerateCandidates(f.graph, options);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(Merge, ObjectivePrefersAcyclicOverRoundTrips) {
  // Two partitions with a mutual dependence must score worse than the same
  // cost split one-way.
  GraphFixture f(R"(
kernel chainy {
  param i64 n;
  array f64 a[64];
  array f64 o[64];
  loop i = 0 .. n {
    f64 t1 = a[i] * 2.0;
    f64 t2 = t1 + 1.0;
    f64 t3 = t2 * t1;
    o[i] = t3 - t2;
  }
}
)");
  CompileOptions options;
  options.num_cores = 2;
  // Hand-build the two shapes from graph nodes.
  auto part_of_nodes = [&](const std::set<int>& first) {
    std::vector<MergedPartition> parts(2);
    for (int node = 0; node < static_cast<int>(f.graph.nodes.size()); ++node) {
      const GraphNode& gn = f.graph.nodes[static_cast<std::size_t>(node)];
      MergedPartition& p = parts[first.contains(node) ? 0 : 1];
      p.stmts.insert(p.stmts.end(), gn.stmts.begin(), gn.stmts.end());
      p.cost += gn.cost;
    }
    return parts;
  };
  const int n = static_cast<int>(f.graph.nodes.size());
  ASSERT_GE(n, 3);
  // One-way: the first half of the chain vs the rest.
  std::set<int> prefix;
  for (int i = 0; i < n / 2; ++i) {
    prefix.insert(i);
  }
  // Sandwich: first and last node together (forces values out and back).
  std::set<int> sandwich = {0, n - 1};
  const auto one_way = PartitionObjective(f.graph, part_of_nodes(prefix), options);
  const auto round_trip =
      PartitionObjective(f.graph, part_of_nodes(sandwich), options);
  EXPECT_LT(std::get<0>(one_way), std::get<0>(round_trip));
}

TEST(Merge, QueueBudgetRespected) {
  GraphFixture f(kWide);
  for (int budget : {12, 6, 4, 2}) {
    CompileOptions options;
    options.num_cores = 4;
    options.max_channels = budget;
    const auto candidates = EnumerateCandidates(f.graph, options);
    for (const auto& candidate : candidates) {
      // Star channels alone need 2*(P-1) <= budget.
      EXPECT_LE(2 * (static_cast<int>(candidate.size()) - 1), budget)
          << "candidate with " << candidate.size()
          << " partitions under budget " << budget;
    }
  }
}

TEST(Merge, ImpossibleBudgetFallsBackToSinglePartition) {
  GraphFixture f(kWide);
  CompileOptions options;
  options.num_cores = 4;
  options.max_channels = 1;  // can't even dispatch one secondary
  const auto candidates = EnumerateCandidates(f.graph, options);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].size(), 1u);
  EXPECT_EQ(TotalStmts(candidates[0]), GraphStmts(f.graph));
}

TEST(Refine, NeverLosesStatements) {
  GraphFixture f(kWide);
  CompileOptions options;
  options.num_cores = 3;
  auto parts = MergeGraph(f.graph, options);
  const std::size_t before = TotalStmts(parts);
  parts = RefinePartitions(f.graph, std::move(parts), options);
  EXPECT_EQ(TotalStmts(parts), before);
}

}  // namespace
}  // namespace fgpar::compiler
