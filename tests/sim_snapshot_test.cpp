// Machine snapshot/restore tests.
//
// The contract under test: pausing a machine at cycle k, serializing it,
// restoring the bytes into a freshly constructed machine, and continuing
// produces *bit-identical* results to an uninterrupted run — same final
// cycle count, same per-core statistics, same memory image, same fault
// schedule — for all three run loops (fast multi-core, fast single-core,
// and the instrumented slow path with fault injection and the watchdog).
// Equality is asserted in the strongest possible form: the final snapshots
// of the two machines must be byte-for-byte identical.
//
// The negative half locks the failure modes: wrong version, wrong machine
// identity (different program or config), truncation, and trailing bytes
// must all throw structured errors instead of loading garbage state.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace {

using namespace fgpar;

/// Two cores bouncing values through their queues; exercises the fast
/// path's issue-skip, fast-forward jumps, and stall accounting.
isa::Program PingPongProgram(std::int64_t rounds) {
  isa::Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");

  a.Bind(core0);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top0 = a.NewLabel();
  a.Bind(top0);
  a.EnqI(1, isa::Gpr{1});
  a.DeqI(1, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top0);
  a.Halt();

  a.Bind(core1);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top1 = a.NewLabel();
  a.Bind(top1);
  a.DeqI(0, isa::Gpr{3});
  a.EnqI(0, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top1);
  a.Halt();
  return a.Finish();
}

/// Single-core loop with loads, stores, and multi-cycle fp ops; exercises
/// the single-core fast loop's jump-to-next-issue and the cache model.
isa::Program SingleCoreProgram(std::int64_t iterations) {
  isa::Assembler a;
  isa::Label entry = a.NewNamedLabel("main");
  a.Bind(entry);
  a.LiI(isa::Gpr{1}, iterations);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{4}, 64);  // base address
  a.LiF(isa::Fpr{1}, 1.5);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.StI(isa::Gpr{1}, isa::Gpr{4}, 0);
  a.LdI(isa::Gpr{5}, isa::Gpr{4}, 0);
  a.LdF(isa::Fpr{2}, isa::Gpr{4}, 0);
  a.MulF(isa::Fpr{2}, isa::Fpr{2}, isa::Fpr{1});
  a.StF(isa::Fpr{2}, isa::Gpr{4}, 1);
  a.AddI(isa::Gpr{4}, isa::Gpr{4}, isa::Gpr{2});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  return a.Finish();
}

sim::Machine MakePingPong(const sim::MachineConfig& config,
                          const isa::Program& program) {
  sim::Machine m(config, program);
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  return m;
}

/// Runs `reference` to completion, then replays the same machine build via
/// `make` with a pause at `stop`, a snapshot, a restore into a third
/// machine, and a continuation — and requires the final snapshots to be
/// byte-identical.
template <typename MakeMachine>
void CheckPauseResumeIdentical(MakeMachine make, std::uint64_t stop) {
  sim::Machine uninterrupted = make();
  const sim::RunResult golden = uninterrupted.Run();
  const std::vector<std::uint8_t> golden_bytes = uninterrupted.Snapshot();

  sim::Machine paused = make();
  const sim::PauseResult pause = paused.RunUntil(stop);
  ASSERT_FALSE(pause.finished) << "stop cycle " << stop
                               << " did not pause (program too short?)";
  EXPECT_GE(paused.now(), stop);

  const std::vector<std::uint8_t> snapshot = paused.Snapshot();
  sim::Machine resumed = make();
  resumed.Restore(snapshot);
  EXPECT_EQ(resumed.now(), paused.now());

  const sim::RunResult result = resumed.Run();
  EXPECT_EQ(result.cycles, golden.cycles);
  EXPECT_EQ(result.core0_halt_cycle, golden.core0_halt_cycle);
  EXPECT_EQ(result.instructions, golden.instructions);
  EXPECT_EQ(resumed.Snapshot(), golden_bytes)
      << "final machine state diverged after pause/resume at cycle " << stop;

  // The paused machine itself must also be able to just keep running.
  const sim::RunResult direct = paused.Run();
  EXPECT_EQ(direct.cycles, golden.cycles);
  EXPECT_EQ(paused.Snapshot(), golden_bytes);
}

TEST(Snapshot, PauseResumeBitIdenticalFastPath) {
  const isa::Program program = PingPongProgram(400);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  auto make = [&] { return MakePingPong(config, program); };

  sim::Machine probe = make();
  const std::uint64_t total = probe.Run().cycles;
  for (const std::uint64_t stop :
       {std::uint64_t{1}, total / 7, total / 2, total - 2}) {
    CheckPauseResumeIdentical(make, stop);
  }
}

TEST(Snapshot, PauseResumeBitIdenticalSingleCore) {
  const isa::Program program = SingleCoreProgram(300);
  sim::MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  auto make = [&] {
    sim::Machine m(config, program);
    m.StartCoreAt(0, "main");
    return m;
  };

  sim::Machine probe = make();
  const std::uint64_t total = probe.Run().cycles;
  for (const std::uint64_t stop : {std::uint64_t{3}, total / 3, total - 1}) {
    CheckPauseResumeIdentical(make, stop);
  }
}

TEST(Snapshot, PauseResumeBitIdenticalSlowPathWithFaults) {
  // Every fault kind fires and the watchdog is armed: the snapshot must
  // carry the injector's RNG position so the post-resume fault schedule
  // continues exactly where the uninterrupted run's schedule was.
  const isa::Program program = PingPongProgram(300);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  config.stall_watchdog_cycles = 10000;
  config.faults.seed = 1234;
  config.faults.queue_jitter_prob = 0.05;
  config.faults.queue_reject_prob = 0.02;
  config.faults.payload_flip_prob = 0.01;
  config.faults.mem_fault_prob = 0.05;
  config.faults.core_freeze_prob = 0.001;
  auto make = [&] { return MakePingPong(config, program); };

  sim::Machine probe = make();
  const std::uint64_t total = probe.Run().cycles;
  for (const std::uint64_t stop : {total / 5, total / 2, total - 3}) {
    CheckPauseResumeIdentical(make, stop);
  }
}

TEST(Snapshot, RepeatedPausesMatchUninterruptedRun) {
  const isa::Program program = PingPongProgram(200);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;

  sim::Machine uninterrupted = MakePingPong(config, program);
  const sim::RunResult golden = uninterrupted.Run();

  // March a second machine forward 97 cycles at a time, round-tripping
  // through snapshot bytes at every pause.
  sim::Machine stepped = MakePingPong(config, program);
  sim::PauseResult pause;
  int pauses = 0;
  while (true) {
    pause = stepped.RunUntil(stepped.now() + 97);
    if (pause.finished) {
      break;
    }
    ++pauses;
    const std::vector<std::uint8_t> bytes = stepped.Snapshot();
    sim::Machine reloaded = MakePingPong(config, program);
    reloaded.Restore(bytes);
    stepped = std::move(reloaded);
  }
  EXPECT_GT(pauses, 5) << "test expected to pause many times";
  EXPECT_EQ(pause.result.cycles, golden.cycles);
  EXPECT_EQ(pause.result.core0_halt_cycle, golden.core0_halt_cycle);
  EXPECT_EQ(pause.result.instructions, golden.instructions);
  EXPECT_EQ(stepped.Snapshot(), uninterrupted.Snapshot());
}

TEST(Snapshot, RoundTripIsByteStable) {
  const isa::Program program = PingPongProgram(100);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;

  sim::Machine m = MakePingPong(config, program);
  ASSERT_FALSE(m.RunUntil(50).finished);
  const std::vector<std::uint8_t> bytes = m.Snapshot();

  sim::Machine copy = MakePingPong(config, program);
  copy.Restore(bytes);
  EXPECT_EQ(copy.Snapshot(), bytes);
}

std::string RestoreErrorOf(sim::Machine& m,
                           const std::vector<std::uint8_t>& bytes) {
  try {
    m.Restore(bytes);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(Snapshot, RejectsVersionMismatch) {
  const isa::Program program = PingPongProgram(50);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  sim::Machine m = MakePingPong(config, program);
  std::vector<std::uint8_t> bytes = m.Snapshot();

  // Layout: u64 magic length + 10 magic bytes, then the u32 version.
  bytes[18] = 99;
  sim::Machine target = MakePingPong(config, program);
  const std::string error = RestoreErrorOf(target, bytes);
  EXPECT_NE(error.find("unsupported snapshot version 99"), std::string::npos)
      << error;
}

TEST(Snapshot, RejectsIdentityMismatch) {
  const isa::Program program = PingPongProgram(50);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  sim::Machine m = MakePingPong(config, program);
  const std::vector<std::uint8_t> bytes = m.Snapshot();

  sim::MachineConfig other = config;
  other.queue.capacity = 4;  // a different machine, same core count
  sim::Machine target = MakePingPong(other, program);
  const std::string error = RestoreErrorOf(target, bytes);
  EXPECT_NE(error.find("snapshot identity mismatch"), std::string::npos)
      << error;

  const isa::Program other_program = PingPongProgram(51);
  sim::Machine target2 = MakePingPong(config, other_program);
  const std::string error2 = RestoreErrorOf(target2, bytes);
  EXPECT_NE(error2.find("snapshot identity mismatch"), std::string::npos)
      << error2;
}

TEST(Snapshot, RejectsCorruptStreams) {
  const isa::Program program = PingPongProgram(50);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  sim::Machine m = MakePingPong(config, program);
  const std::vector<std::uint8_t> bytes = m.Snapshot();

  sim::Machine target = MakePingPong(config, program);

  // Not a snapshot at all.
  EXPECT_NE(RestoreErrorOf(target, {1, 2, 3}).find("truncated byte stream"),
            std::string::npos);

  // Truncated mid-state.
  std::vector<std::uint8_t> truncated(bytes.begin(),
                                      bytes.begin() + bytes.size() / 2);
  EXPECT_NE(RestoreErrorOf(target, truncated).find("truncated byte stream"),
            std::string::npos);

  // Trailing garbage.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_NE(RestoreErrorOf(target, padded).find("trailing bytes"),
            std::string::npos);
}

TEST(Snapshot, IdentityHashIsStableAndDiscriminating) {
  const isa::Program program = PingPongProgram(50);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  sim::Machine a = MakePingPong(config, program);
  sim::Machine b = MakePingPong(config, program);
  EXPECT_EQ(a.IdentityHash(), b.IdentityHash());

  sim::MachineConfig other = config;
  other.timing.fp_mul = 7;
  sim::Machine c = MakePingPong(other, program);
  EXPECT_NE(a.IdentityHash(), c.IdentityHash());
}

}  // namespace
