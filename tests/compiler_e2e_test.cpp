// End-to-end compiler tests: every kernel is executed three ways — the
// reference interpreter, the compiled sequential program, and the compiled
// fine-grained parallel program on 2 and 4 cores — and all memory must be
// bit-identical.  This is the test that proves the whole Section III
// pipeline (fibers, merging, outlining, communication insertion, branch
// replication, speculation, runtime dispatch) preserves semantics.
#include <gtest/gtest.h>

#include <bit>

#include "frontend/parser.hpp"
#include "harness/random_kernel.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace fgpar::harness {
namespace {

/// Default workload: deterministic pseudo-random doubles in [0.5, 2), index
/// arrays in range, all i64 params = the named loop trip bound.
WorkloadInit DefaultInit(std::uint64_t seed, std::int64_t int_param_value) {
  return [seed, int_param_value](std::uint64_t /*run_seed*/,
                                 const ir::Kernel& kernel,
                                 const ir::DataLayout& layout, ir::ParamEnv& params,
                                 std::vector<std::uint64_t>& memory) {
    Rng rng(seed);
    for (const ir::Symbol& sym : kernel.symbols()) {
      switch (sym.kind) {
        case ir::SymbolKind::kParam:
          if (sym.type == ir::ScalarType::kF64) {
            params.SetF64(sym.id, rng.NextDouble(0.5, 2.0));
          } else {
            params.SetI64(sym.id, int_param_value);
          }
          break;
        case ir::SymbolKind::kArray: {
          const std::uint64_t base = layout.AddressOf(sym.id);
          for (std::int64_t i = 0; i < sym.array_size; ++i) {
            if (sym.type == ir::ScalarType::kF64) {
              memory[base + static_cast<std::uint64_t>(i)] =
                  std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
            } else {
              memory[base + static_cast<std::uint64_t>(i)] =
                  static_cast<std::uint64_t>(rng.NextInt(0, sym.array_size - 1));
            }
          }
          break;
        }
        case ir::SymbolKind::kScalar:
          break;
      }
    }
  };
}

KernelRun RunOn(const char* source, int cores, bool speculation = false,
                std::int64_t trip = 30) {
  ir::Kernel kernel = frontend::ParseKernel(source);
  KernelRunner runner(kernel, DefaultInit(0xBEEF, trip));
  RunConfig config;
  config.compile.num_cores = cores;
  config.compile.speculation = speculation;
  return runner.Run(config);
}

// ---- basic shapes ----

constexpr const char* kAxpy = R"(
kernel axpy {
  param f64 alpha;
  param i64 n;
  array f64 x[32];
  array f64 y[32];
  loop i = 0 .. n {
    y[i] = alpha * x[i] + y[i];
  }
}
)";

TEST(EndToEnd, AxpyTwoCores) {
  const KernelRun run = RunOn(kAxpy, 2);
  EXPECT_GT(run.seq_cycles, 0u);
  EXPECT_GT(run.par_cycles, 0u);
}

TEST(EndToEnd, AxpyFourCores) {
  const KernelRun run = RunOn(kAxpy, 4);
  EXPECT_LE(run.cores_used, 4);
}

constexpr const char* kWideIndependent = R"(
kernel wide {
  param f64 c;
  param i64 n;
  array f64 a[40];
  array f64 o1[40];
  array f64 o2[40];
  array f64 o3[40];
  array f64 o4[40];
  loop i = 2 .. n {
    o1[i] = (a[i] * c + a[i-1]) * (a[i] - c);
    o2[i] = sqrt(abs(a[i] * 3.0 + 1.0)) + a[i-2] * c;
    o3[i] = a[i] / (abs(a[i-1]) + 1.0) + c * c;
    o4[i] = max(a[i], a[i-1]) * min(a[i], a[i-2]) + 0.5;
  }
}
)";

TEST(EndToEnd, WideIndependentWorkSpeedsUpOnFourCores) {
  const KernelRun run = RunOn(kWideIndependent, 4);
  EXPECT_EQ(run.cores_used, 4);
  // Four independent statement chains must actually get faster.
  EXPECT_GT(run.speedup, 1.2);
}

TEST(EndToEnd, WideIndependentTwoCoreSpeedupIsSmaller) {
  const KernelRun run4 = RunOn(kWideIndependent, 4);
  const KernelRun run2 = RunOn(kWideIndependent, 2);
  EXPECT_GT(run4.speedup, run2.speedup * 0.95);
}

// ---- reductions ----

constexpr const char* kDotAndMore = R"(
kernel dotplus {
  param i64 n;
  array f64 a[40];
  array f64 b[40];
  array f64 o[40];
  scalar f64 dot;
  carried f64 sum = 0.0;
  loop i = 0 .. n {
    f64 prod = a[i] * b[i];
    sum = sum + prod;
    o[i] = prod * 2.0 + a[i] / (b[i] + 1.0);
  }
  after {
    dot = sum;
  }
}
)";

TEST(EndToEnd, ReductionWithLiveOut) {
  const KernelRun run = RunOn(kDotAndMore, 4);
  EXPECT_GT(run.seq_cycles, 0u);
}

// ---- conditionals ----

constexpr const char* kConditional = R"(
kernel cond {
  param i64 n;
  array f64 a[40];
  array f64 o[40];
  array f64 p[40];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0 + 1.0;
    f64 w = sqrt(abs(a[i])) * 3.0;
    if (v < 2.5) {
      o[i] = v + w;
    } else {
      o[i] = v - w;
    }
    p[i] = w * v;
  }
}
)";

TEST(EndToEnd, ConditionalReplication2) {
  const KernelRun run = RunOn(kConditional, 2);
  EXPECT_GT(run.seq_cycles, 0u);
}

TEST(EndToEnd, ConditionalReplication4) {
  const KernelRun run = RunOn(kConditional, 4);
  EXPECT_GT(run.seq_cycles, 0u);
}

constexpr const char* kNestedConditional = R"(
kernel nested {
  param i64 n;
  array f64 a[40];
  array f64 o[40];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0;
    if (v < 2.0) {
      if (v < 1.5) {
        o[i] = v * 10.0;
      } else {
        o[i] = v * 20.0;
      }
    } else {
      o[i] = v * 30.0;
    }
  }
}
)";

TEST(EndToEnd, NestedConditionals) {
  const KernelRun run = RunOn(kNestedConditional, 4);
  EXPECT_GT(run.seq_cycles, 0u);
}

constexpr const char* kConditionalReduction = R"(
kernel condred {
  param i64 n;
  array f64 a[40];
  scalar f64 out;
  carried f64 acc = 0.0;
  loop i = 0 .. n {
    f64 v = a[i] * a[i];
    if (v < 2.0) {
      acc = acc + v;
    }
  }
  after {
    out = acc;
  }
}
)";

TEST(EndToEnd, ConditionalReduction) {
  const KernelRun run = RunOn(kConditionalReduction, 4);
  EXPECT_GT(run.seq_cycles, 0u);
}

// ---- speculation ----

constexpr const char* kSpeculation = R"(
kernel spec {
  param i64 n;
  array f64 a[40];
  array f64 o[40];
  loop i = 0 .. n {
    f64 cndval = a[i] * a[i] + a[i];
    @speculate if (cndval < 2.0) {
      f64 t2 = sqrt(abs(a[i] * 3.0)) + a[i] / (a[i] + 1.0);
      o[i] = t2;
    } else {
      f64 t3 = a[i] * a[i] * a[i] + 2.0 * a[i];
      o[i] = t3;
    }
  }
}
)";

TEST(EndToEnd, SpeculationOffIsCorrect) {
  const KernelRun run = RunOn(kSpeculation, 4, /*speculation=*/false);
  EXPECT_GT(run.seq_cycles, 0u);
}

TEST(EndToEnd, SpeculationOnIsCorrect) {
  const KernelRun run = RunOn(kSpeculation, 4, /*speculation=*/true);
  EXPECT_GT(run.seq_cycles, 0u);
}

TEST(EndToEnd, SpeculationHelpsThisShape) {
  const KernelRun off = RunOn(kSpeculation, 4, /*speculation=*/false);
  const KernelRun on = RunOn(kSpeculation, 4, /*speculation=*/true);
  // Both arms' compute can run ahead of the condition; allow a little noise
  // but speculation should not be slower.
  EXPECT_GE(on.speedup, off.speedup * 0.95);
}

// ---- gathers (non-affine loads) ----

constexpr const char* kGather = R"(
kernel gather {
  param i64 n;
  array f64 a[40];
  array i64 idx[40];
  array f64 o[40];
  loop i = 0 .. n {
    f64 g = a[idx[i]] * 2.0;
    o[i] = g + a[i] * 0.5;
  }
}
)";

TEST(EndToEnd, GatherLoads) {
  const KernelRun run = RunOn(kGather, 4);
  EXPECT_GT(run.seq_cycles, 0u);
}

// ---- pipelined dependence chain (Figure 2 shape) ----

constexpr const char* kPipeline = R"(
kernel pipe {
  param i64 n;
  array f64 a[40];
  array f64 o[40];
  loop i = 0 .. n {
    f64 s1 = a[i] * 2.0 + 1.0;
    f64 s2 = s1 * s1 - a[i];
    f64 s3 = s2 / (abs(s1) + 1.0);
    o[i] = s3 * s2 + s1;
  }
}
)";

TEST(EndToEnd, PipelinedChain) {
  const KernelRun run = RunOn(kPipeline, 3);
  EXPECT_GT(run.seq_cycles, 0u);
}

// ---- statistics plumbing ----

TEST(EndToEnd, StatsAreConsistent) {
  const KernelRun run = RunOn(kWideIndependent, 4);
  EXPECT_GT(run.initial_fibers, 0);
  EXPECT_GE(run.load_balance, 1.0);
  EXPECT_GE(run.queues_used, 0);
  // Every static loop transfer happens at least once dynamically.
  EXPECT_GE(run.par_queue_transfers,
            static_cast<std::uint64_t>(run.com_ops));
}

TEST(EndToEnd, ZeroIterationLoop) {
  const KernelRun run = RunOn(kAxpy, 4, false, /*trip=*/0);
  EXPECT_GT(run.seq_cycles, 0u);  // still dispatches and joins correctly
}

TEST(EndToEnd, SingleIterationLoop) {
  const KernelRun run = RunOn(kAxpy, 4, false, /*trip=*/1);
  EXPECT_GT(run.seq_cycles, 0u);
}

// ---- property tests: random programs, triple-checked ----

class RandomProgramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramProperty, ParallelMatchesGoldenOn2And4Cores) {
  const RandomKernelCase random = GenerateRandomKernel(GetParam());
  KernelRunner runner(random.kernel, random.init);
  for (int cores : {2, 4}) {
    RunConfig config;
    config.compile.num_cores = cores;
    const KernelRun run = runner.Run(config);  // throws on any mismatch
    EXPECT_GT(run.seq_cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

class RandomProgramSpeculationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramSpeculationProperty, SpeculationPreservesSemantics) {
  const RandomKernelCase random = GenerateRandomKernel(GetParam());
  KernelRunner runner(random.kernel, random.init);
  RunConfig config;
  config.compile.num_cores = 4;
  config.compile.speculation = true;
  const KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSpeculationProperty,
                         ::testing::Range<std::uint64_t>(100, 115));

class RandomProgramThroughputProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramThroughputProperty, ThroughputHeuristicPreservesSemantics) {
  const RandomKernelCase random = GenerateRandomKernel(GetParam());
  KernelRunner runner(random.kernel, random.init);
  RunConfig config;
  config.compile.num_cores = 4;
  config.compile.throughput_heuristic = true;
  const KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramThroughputProperty,
                         ::testing::Range<std::uint64_t>(200, 212));

class RandomProgramSmtProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramSmtProperty, SmtTopologiesPreserveSemantics) {
  const RandomKernelCase random = GenerateRandomKernel(GetParam());
  KernelRunner runner(random.kernel, random.init);
  RunConfig config;
  config.compile.num_cores = 4;
  config.threads_per_core = 2;
  const KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSmtProperty,
                         ::testing::Range<std::uint64_t>(300, 312));

}  // namespace
}  // namespace fgpar::harness
