// Scalability tests: programmatically generated wide/deep kernels through
// the full verifying pipeline, and core budgets beyond the paper's four.
#include <gtest/gtest.h>

#include <sstream>

#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace fgpar::harness {
namespace {

WorkloadInit GenericInit(std::int64_t trip) {
  return [trip](std::uint64_t /*seed*/, const ir::Kernel& kernel,
                const ir::DataLayout& layout, ir::ParamEnv& params,
                std::vector<std::uint64_t>& memory) {
    Rng rng(17);
    for (const ir::Symbol& sym : kernel.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        if (sym.type == ir::ScalarType::kI64) {
          params.SetI64(sym.id, trip);
        } else {
          params.SetF64(sym.id, rng.NextDouble(0.5, 2.0));
        }
      } else if (sym.kind == ir::SymbolKind::kArray) {
        const std::uint64_t base = layout.AddressOf(sym.id);
        for (std::int64_t i = 0; i < sym.array_size; ++i) {
          memory[base + static_cast<std::uint64_t>(i)] =
              std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
        }
      }
    }
  };
}

/// `width` independent statements, each with a few dozen operations.
std::string WideKernelSource(int width) {
  std::ostringstream os;
  os << "kernel stress_wide {\n  param i64 n;\n  array f64 a[128];\n";
  for (int w = 0; w < width; ++w) {
    os << "  array f64 o" << w << "[128];\n";
  }
  os << "  loop i = 2 .. n {\n";
  for (int w = 0; w < width; ++w) {
    os << "    o" << w << "[i] = (a[i] * " << (w + 2)
       << ".0 + a[i-1]) * (a[i+1] - " << w << ".25) + sqrt(abs(a[i-2])) / "
       << "(a[i] + 1.0);\n";
  }
  os << "  }\n}\n";
  return os.str();
}

/// A dependence chain of `depth` temps feeding one output.
std::string DeepKernelSource(int depth) {
  std::ostringstream os;
  os << "kernel stress_deep {\n  param i64 n;\n  array f64 a[128];\n"
     << "  array f64 o[128];\n  loop i = 0 .. n {\n"
     << "    f64 t0 = a[i] * 1.5 + 0.25;\n";
  for (int d = 1; d < depth; ++d) {
    os << "    f64 t" << d << " = t" << (d - 1) << " * a[i] + " << d << ".5 - t"
       << (d - 1) << " * 0.125;\n";
  }
  os << "    o[i] = t" << (depth - 1) << ";\n  }\n}\n";
  return os.str();
}

TEST(Scale, WideKernelTripleChecksAndSpeedsUp) {
  KernelRunner runner(frontend::ParseKernel(WideKernelSource(16)),
                      GenericInit(100));
  RunConfig config;
  config.compile.num_cores = 4;
  const KernelRun run = runner.Run(config);
  EXPECT_GT(run.initial_fibers, 16);
  EXPECT_GT(run.speedup, 1.5);  // lots of independent work must pay off
}

TEST(Scale, DeepChainTripleChecks) {
  KernelRunner runner(frontend::ParseKernel(DeepKernelSource(24)),
                      GenericInit(100));
  RunConfig config;
  config.compile.num_cores = 4;
  const KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);  // correctness is the point; speedup may
                                  // be limited by the recurrence-free chain
}

TEST(Scale, EightCoreBudget) {
  // The paper used 2 and 4 cores; the compiler itself scales further.
  KernelRunner runner(frontend::ParseKernel(WideKernelSource(24)),
                      GenericInit(100));
  RunConfig config;
  config.compile.num_cores = 8;
  const KernelRun run = runner.Run(config);
  EXPECT_LE(run.cores_used, 8);
  EXPECT_GE(run.cores_used, 2);
  EXPECT_GT(run.speedup, 1.5);
}

TEST(Scale, ManyConditionalsStayWithinCheckerLimits) {
  // Several independent conditionals: the pairing checker enumerates all
  // branch combinations, so this also guards its exponential bound.
  std::ostringstream os;
  os << "kernel many_ifs {\n  param i64 n;\n  array f64 a[128];\n"
     << "  array f64 o[128];\n  loop i = 0 .. n {\n";
  for (int c = 0; c < 6; ++c) {
    os << "    if (a[i] * " << (c + 1) << ".0 < 4.0) {\n      o[i] = a[i] + "
       << c << ".0;\n    } else {\n      o[i] = a[i] - " << c << ".0;\n    }\n";
  }
  os << "  }\n}\n";
  KernelRunner runner(frontend::ParseKernel(os.str()), GenericInit(60));
  RunConfig config;
  config.compile.num_cores = 4;
  const KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);
}

}  // namespace
}  // namespace fgpar::harness
