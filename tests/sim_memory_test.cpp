// Unit tests for the memory system and cache timing model.
#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "support/error.hpp"

namespace fgpar::sim {
namespace {

CacheConfig SmallCache() {
  CacheConfig c;
  c.line_words = 4;
  c.l1_sets = 4;
  c.l1_ways = 2;
  c.l2_sets = 16;
  c.l2_ways = 2;
  c.l1_latency = 6;
  c.l2_latency = 40;
  c.mem_latency = 200;
  return c;
}

TEST(Memory, FunctionalReadWriteRoundTrip) {
  MemorySystem mem(SmallCache(), 2, 1024);
  mem.WriteI64(10, -12345);
  mem.WriteF64(11, 3.25);
  EXPECT_EQ(mem.ReadI64(10), -12345);
  EXPECT_DOUBLE_EQ(mem.ReadF64(11), 3.25);
}

TEST(Memory, RawPreservesBitPatterns) {
  MemorySystem mem(SmallCache(), 1, 64);
  mem.WriteF64(0, -0.0);
  EXPECT_EQ(mem.ReadRaw(0), 0x8000000000000000ull);
  mem.WriteRaw(1, 0x7ff8000000000001ull);  // a NaN payload survives
  EXPECT_EQ(mem.ReadRaw(1), 0x7ff8000000000001ull);
}

TEST(Memory, OutOfRangeThrows) {
  MemorySystem mem(SmallCache(), 1, 16);
  EXPECT_THROW(mem.ReadI64(16), Error);
  EXPECT_THROW(mem.WriteF64(100, 1.0), Error);
  EXPECT_THROW(mem.AccessTimed(0, 16, false), Error);
}

TEST(Memory, ColdMissThenHit) {
  MemorySystem mem(SmallCache(), 1, 1024);
  EXPECT_EQ(mem.AccessTimed(0, 0, false), 200);  // cold: full miss
  EXPECT_EQ(mem.AccessTimed(0, 0, false), 6);    // now in L1
  EXPECT_EQ(mem.AccessTimed(0, 3, false), 6);    // same 4-word line
  EXPECT_EQ(mem.AccessTimed(0, 4, false), 200);  // next line: cold again
}

TEST(Memory, L2CatchesL1Evictions) {
  CacheConfig c = SmallCache();
  MemorySystem mem(c, 1, 1u << 16);
  // Fill L1 set 0 beyond its 2 ways: lines at stride sets*line_words map to
  // the same L1 set.
  const std::uint64_t stride =
      static_cast<std::uint64_t>(c.l1_sets) * static_cast<std::uint64_t>(c.line_words);
  mem.AccessTimed(0, 0 * stride, false);
  mem.AccessTimed(0, 1 * stride, false);
  mem.AccessTimed(0, 2 * stride, false);  // evicts line 0 from L1
  // Line 0 is gone from L1 but still resident in the larger L2.
  EXPECT_EQ(mem.AccessTimed(0, 0, false), c.l2_latency);
}

TEST(Memory, LruReplacementKeepsRecentlyUsedLine) {
  CacheConfig c = SmallCache();
  MemorySystem mem(c, 1, 1u << 16);
  const std::uint64_t stride =
      static_cast<std::uint64_t>(c.l1_sets) * static_cast<std::uint64_t>(c.line_words);
  mem.AccessTimed(0, 0 * stride, false);
  mem.AccessTimed(0, 1 * stride, false);
  mem.AccessTimed(0, 0 * stride, false);  // touch line 0 again
  mem.AccessTimed(0, 2 * stride, false);  // should evict line 1 (LRU)
  EXPECT_EQ(mem.AccessTimed(0, 0, false), c.l1_latency);
}

TEST(Memory, WriteInvalidatesOtherCoresL1) {
  CacheConfig c = SmallCache();
  MemorySystem mem(c, 2, 1024);
  mem.AccessTimed(0, 0, false);  // core 0 caches the line
  mem.AccessTimed(0, 0, false);
  EXPECT_EQ(mem.AccessTimed(0, 0, false), c.l1_latency);
  mem.AccessTimed(1, 0, true);  // core 1 writes: invalidates core 0's copy
  EXPECT_GT(mem.AccessTimed(0, 0, false), c.l1_latency);
}

TEST(Memory, PerCoreL1IsPrivate) {
  CacheConfig c = SmallCache();
  MemorySystem mem(c, 2, 1024);
  mem.AccessTimed(0, 0, false);
  // Core 1 never touched the line: it misses L1 but hits the shared L2.
  EXPECT_EQ(mem.AccessTimed(1, 0, false), c.l2_latency);
}

TEST(Memory, StatsCountHitsAndMisses) {
  MemorySystem mem(SmallCache(), 1, 1024);
  mem.AccessTimed(0, 0, false);
  mem.AccessTimed(0, 0, false);
  mem.AccessTimed(0, 0, false);
  EXPECT_EQ(mem.misses(), 1u);
  EXPECT_EQ(mem.l1_hits(), 2u);
}

TEST(Memory, ClearCachesResetsTimingButNotContent) {
  MemorySystem mem(SmallCache(), 1, 1024);
  mem.WriteI64(5, 77);
  mem.AccessTimed(0, 5, false);
  mem.AccessTimed(0, 5, false);
  mem.ClearCaches();
  EXPECT_EQ(mem.ReadI64(5), 77);
  EXPECT_EQ(mem.l1_hits(), 0u);
  EXPECT_EQ(mem.AccessTimed(0, 5, false), 200);  // cold again
}

}  // namespace
}  // namespace fgpar::sim
