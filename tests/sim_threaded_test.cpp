// Direct-threaded trace tier tests (sim/threaded.hpp).
//
// The contract under test: the threaded tier is an invisible accelerator.
// Every observable — final cycle count, per-core statistics, memory,
// snapshot bytes, error messages, pause/resume behaviour — must be
// bit-identical to the fast and slow tiers; only the sim.threaded.*
// counters (and host wall time) may differ.  These tests lock the deopt
// boundaries one by one: memory ops, multi-core machines, telemetry
// sinks, fault injection, pause horizons, and divide traps must each
// hand control back to the reference loops without divergence.
//
// Snapshots deliberately exclude force_tier from the identity hash, so a
// snapshot taken under one tier restores under another — which also lets
// these tests compare final machine states across tiers byte-for-byte.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "sim/threaded.hpp"
#include "support/error.hpp"
#include "support/telemetry/sinks.hpp"

namespace {

using namespace fgpar;

/// Pure-ALU hot loop: fully traceable, so the threaded tier runs it
/// almost entirely inside one trace.
isa::Program HotAluLoop(std::int64_t iterations) {
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, iterations);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{3}, 0);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.AddI(isa::Gpr{3}, isa::Gpr{3}, isa::Gpr{2});
  a.MulI(isa::Gpr{4}, isa::Gpr{3}, isa::Gpr{2});
  a.XorI(isa::Gpr{5}, isa::Gpr{4}, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  return a.Finish();
}

/// Hot loop with a load and a store in the body: the cache model stays
/// authoritative, so every iteration deopts at the memory boundary.  The
/// ALU prefix is at least kMinTraceOps long so the pre-store segment is
/// actually worth a trace (shorter prefixes stay interpreted).
isa::Program HotMemoryLoop(std::int64_t iterations) {
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, iterations);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{4}, 64);  // base address
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.AddI(isa::Gpr{3}, isa::Gpr{1}, isa::Gpr{2});
  a.MulI(isa::Gpr{6}, isa::Gpr{3}, isa::Gpr{2});
  a.XorI(isa::Gpr{7}, isa::Gpr{6}, isa::Gpr{3});
  a.StI(isa::Gpr{3}, isa::Gpr{4}, 0);
  a.LdI(isa::Gpr{5}, isa::Gpr{4}, 0);
  a.AddI(isa::Gpr{4}, isa::Gpr{4}, isa::Gpr{2});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  return a.Finish();
}

/// Two cores bouncing values through queues (threaded tier must delegate
/// the whole machine to the fast loop).
isa::Program PingPong(std::int64_t rounds) {
  isa::Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top0 = a.NewLabel();
  a.Bind(top0);
  a.EnqI(1, isa::Gpr{1});
  a.DeqI(1, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top0);
  a.Halt();
  a.Bind(core1);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top1 = a.NewLabel();
  a.Bind(top1);
  a.DeqI(0, isa::Gpr{3});
  a.EnqI(0, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top1);
  a.Halt();
  return a.Finish();
}

sim::MachineConfig SingleCore(sim::RunTier tier) {
  sim::MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  config.force_tier = tier;
  return config;
}

sim::Machine MakeSingle(const isa::Program& program, sim::RunTier tier) {
  sim::Machine m(SingleCore(tier), program);
  m.StartCoreAt(0, "main");
  return m;
}

/// Runs `program` single-core under each tier and requires bit-identical
/// results and final snapshots (force_tier is excluded from the snapshot
/// identity hash precisely so this comparison is legal).
void CheckTierEquivalence(const isa::Program& program) {
  sim::Machine threaded = MakeSingle(program, sim::RunTier::kThreaded);
  sim::Machine fast = MakeSingle(program, sim::RunTier::kFast);
  sim::Machine slow = MakeSingle(program, sim::RunTier::kSlow);
  const sim::RunResult rt = threaded.Run();
  const sim::RunResult rf = fast.Run();
  const sim::RunResult rs = slow.Run();
  EXPECT_EQ(rt.cycles, rf.cycles);
  EXPECT_EQ(rt.core0_halt_cycle, rf.core0_halt_cycle);
  EXPECT_EQ(rt.instructions, rf.instructions);
  EXPECT_EQ(rf.cycles, rs.cycles);
  EXPECT_EQ(rf.core0_halt_cycle, rs.core0_halt_cycle);
  EXPECT_EQ(rf.instructions, rs.instructions);
  EXPECT_EQ(threaded.Snapshot(), fast.Snapshot());
  EXPECT_EQ(fast.Snapshot(), slow.Snapshot());
}

TEST(SimThreaded, HotAluLoopMatchesFastAndSlow) {
  CheckTierEquivalence(HotAluLoop(500));
}

TEST(SimThreaded, HotLoopActuallyRunsInTraces) {
  sim::Machine m = MakeSingle(HotAluLoop(500), sim::RunTier::kThreaded);
  const sim::RunResult result = m.Run();
  const sim::ThreadedStats& ts = m.threaded_stats();
  EXPECT_EQ(m.resolved_tier(), sim::RunTier::kThreaded);
  EXPECT_GT(ts.blocks_translated, 0u);
  EXPECT_GT(ts.trace_enters, 0u);
  // The loop body dominates the run, so the overwhelming majority of
  // instructions must issue inside traces, not in the interpreted step.
  EXPECT_GT(ts.threaded_instructions, result.instructions / 2);
}

TEST(SimThreaded, MemoryOpsDeoptAndMatchOtherTiers) {
  CheckTierEquivalence(HotMemoryLoop(400));
  sim::Machine m = MakeSingle(HotMemoryLoop(400), sim::RunTier::kThreaded);
  m.Run();
  const sim::ThreadedStats& ts = m.threaded_stats();
  EXPECT_GT(ts.trace_enters, 0u);
  EXPECT_GT(ts.deopt_memory, 0u) << "loads/stores must exit the trace";
}

TEST(SimThreaded, ColdCodeIsNeverTranslated) {
  // Trip count below kHotThreshold: no branch target ever gets hot.
  const std::int64_t trips = sim::ThreadedCache::kHotThreshold / 2;
  sim::Machine m = MakeSingle(HotAluLoop(trips), sim::RunTier::kThreaded);
  m.Run();
  EXPECT_EQ(m.threaded_stats().blocks_translated, 0u);
  EXPECT_EQ(m.threaded_stats().trace_enters, 0u);
}

TEST(SimThreaded, MultiCoreDelegatesWholesaleToFast) {
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;
  config.force_tier = sim::RunTier::kThreaded;
  sim::Machine threaded(config, PingPong(64));
  threaded.StartCoreAt(0, "core0");
  threaded.StartCoreAt(1, "core1");
  const sim::RunResult rt = threaded.Run();

  config.force_tier = sim::RunTier::kFast;
  sim::Machine fast(config, PingPong(64));
  fast.StartCoreAt(0, "core0");
  fast.StartCoreAt(1, "core1");
  const sim::RunResult rf = fast.Run();

  EXPECT_EQ(rt.cycles, rf.cycles);
  EXPECT_EQ(rt.instructions, rf.instructions);
  EXPECT_EQ(threaded.Snapshot(), fast.Snapshot());
  EXPECT_GT(threaded.threaded_stats().deopt_multi_core, 0u);
  EXPECT_EQ(threaded.threaded_stats().trace_enters, 0u);
}

TEST(SimThreaded, PauseResumeMidHotLoopIsIdentical) {
  const isa::Program program = HotAluLoop(500);
  sim::Machine uninterrupted = MakeSingle(program, sim::RunTier::kThreaded);
  const sim::RunResult golden = uninterrupted.Run();
  const std::vector<std::uint8_t> golden_bytes = uninterrupted.Snapshot();

  // Pause deep inside the hot loop — mid-trace from the user's viewpoint.
  sim::Machine paused = MakeSingle(program, sim::RunTier::kThreaded);
  const sim::PauseResult pause = paused.RunUntil(golden.cycles / 2);
  ASSERT_FALSE(pause.finished);

  // Restoring drops the trace cache (derived state); the resumed machine
  // re-translates lazily and still finishes bit-identically.
  sim::Machine resumed = MakeSingle(program, sim::RunTier::kThreaded);
  resumed.Restore(paused.Snapshot());
  EXPECT_EQ(resumed.threaded_stats().trace_enters, 0u)
      << "Restore must reset derived threaded-tier state";
  const sim::RunResult result = resumed.Run();
  EXPECT_EQ(result.cycles, golden.cycles);
  EXPECT_EQ(result.core0_halt_cycle, golden.core0_halt_cycle);
  EXPECT_EQ(result.instructions, golden.instructions);
  EXPECT_EQ(resumed.Snapshot(), golden_bytes);
}

TEST(SimThreaded, SnapshotRestoresAcrossTiers) {
  // A snapshot taken under the threaded tier restores into a fast-tier
  // machine (and vice versa): force_tier is not part of machine identity.
  const isa::Program program = HotAluLoop(500);
  sim::Machine threaded = MakeSingle(program, sim::RunTier::kThreaded);
  const sim::PauseResult pause = threaded.RunUntil(200);
  ASSERT_FALSE(pause.finished);

  sim::Machine fast = MakeSingle(program, sim::RunTier::kFast);
  fast.Restore(threaded.Snapshot());
  const sim::RunResult cross = fast.Run();

  sim::Machine reference = MakeSingle(program, sim::RunTier::kFast);
  const sim::RunResult golden = reference.Run();
  EXPECT_EQ(cross.cycles, golden.cycles);
  EXPECT_EQ(cross.instructions, golden.instructions);
  EXPECT_EQ(fast.Snapshot(), reference.Snapshot());
}

TEST(SimThreaded, TelemetrySinkForcesTheReferenceLoop) {
  // A sim-event sink demands per-issue instrumentation, which only the
  // slow loop carries; the tier request must lose to the hook.
  sim::Machine m = MakeSingle(HotAluLoop(100), sim::RunTier::kThreaded);
  telemetry::AggregatingSink sink;
  m.SetTelemetry(&sink);
  EXPECT_EQ(m.resolved_tier(), sim::RunTier::kSlow);
  const sim::RunResult traced = m.Run();
  EXPECT_EQ(m.threaded_stats().trace_enters, 0u);
  EXPECT_EQ(sink.SimCount(telemetry::SimEventKind::kIssue), traced.instructions);

  // And the traced run's numbers still match the threaded run's.
  sim::Machine untraced = MakeSingle(HotAluLoop(100), sim::RunTier::kThreaded);
  const sim::RunResult plain = untraced.Run();
  EXPECT_EQ(traced.cycles, plain.cycles);
  EXPECT_EQ(traced.instructions, plain.instructions);
}

TEST(SimThreaded, FaultInjectionForcesTheReferenceLoop) {
  sim::MachineConfig config = SingleCore(sim::RunTier::kThreaded);
  config.faults.seed = 11;
  config.faults.core_freeze_prob = 0.05;
  config.faults.core_freeze_cycles = 7;
  sim::Machine faulted(config, HotAluLoop(100));
  faulted.StartCoreAt(0, "main");
  EXPECT_EQ(faulted.resolved_tier(), sim::RunTier::kSlow);
  const sim::RunResult rt = faulted.Run();
  EXPECT_EQ(faulted.threaded_stats().trace_enters, 0u);

  // The same faulted machine with an explicit slow pin is bit-identical:
  // the tier knob changed nothing the injector could observe.
  config.force_tier = sim::RunTier::kSlow;
  sim::Machine pinned(config, HotAluLoop(100));
  pinned.StartCoreAt(0, "main");
  const sim::RunResult rs = pinned.Run();
  EXPECT_EQ(rt.cycles, rs.cycles);
  EXPECT_EQ(rt.instructions, rs.instructions);
  EXPECT_EQ(faulted.Snapshot(), pinned.Snapshot());
}

TEST(SimThreaded, DivideTrapInsideTraceMatchesReferenceError) {
  // g3 counts down to 0 and is then used as a divisor: the trap fires
  // inside a by-then-hot trace.  The trace must deopt pre-op so the
  // interpreted step raises the exact reference error.
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, 100);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{3}, 50);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.SubI(isa::Gpr{3}, isa::Gpr{3}, isa::Gpr{2});
  a.DivI(isa::Gpr{4}, isa::Gpr{1}, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  const isa::Program program = a.Finish();

  const auto error_of = [&](sim::RunTier tier) -> std::string {
    sim::Machine m = MakeSingle(program, tier);
    try {
      m.Run();
    } catch (const Error& e) {
      return e.what();
    }
    return "";
  };
  const std::string threaded = error_of(sim::RunTier::kThreaded);
  const std::string slow = error_of(sim::RunTier::kSlow);
  ASSERT_NE(threaded, "") << "divide by zero must throw under the threaded tier";
  EXPECT_EQ(threaded, slow);
  EXPECT_NE(threaded.find("divide by zero"), std::string::npos);
}

TEST(SimThreaded, TierResolutionIsCachedAndInvalidatedBySinkChanges) {
  sim::Machine m = MakeSingle(HotAluLoop(2000), sim::RunTier::kAuto);
  EXPECT_EQ(m.tier_resolve_count(), 0);
  sim::PauseResult pause = m.RunUntil(100);
  ASSERT_FALSE(pause.finished);
  EXPECT_EQ(m.tier_resolve_count(), 1);
  pause = m.RunUntil(200);
  ASSERT_FALSE(pause.finished);
  EXPECT_EQ(m.tier_resolve_count(), 1)
      << "repeated runs must not re-derive eligibility";

  // Installing a sink invalidates the cache; the next run re-resolves to
  // the reference loop (and only once).
  telemetry::AggregatingSink sink;
  m.SetTelemetry(&sink);
  pause = m.RunUntil(300);
  ASSERT_FALSE(pause.finished);
  EXPECT_EQ(m.tier_resolve_count(), 2);
  EXPECT_EQ(m.resolved_tier(), sim::RunTier::kSlow);

  // Removing it re-resolves back to the threaded tier.
  m.SetTelemetry(nullptr);
  m.Run();
  EXPECT_EQ(m.tier_resolve_count(), 3);
  EXPECT_EQ(m.resolved_tier(), sim::RunTier::kThreaded);
}

TEST(SimThreaded, TranslateSpansReachTheHostSinkWithoutForcingSlow) {
  sim::Machine m = MakeSingle(HotAluLoop(500), sim::RunTier::kAuto);
  telemetry::AggregatingSink host;
  m.SetHostTelemetry(&host);
  // The host-span channel must not affect tier eligibility.
  EXPECT_EQ(m.resolved_tier(), sim::RunTier::kThreaded);
  m.Run();
  ASSERT_GT(m.threaded_stats().blocks_translated, 0u);

  const std::vector<telemetry::SpanRecord> spans = host.SpansInCategory("sim");
  ASSERT_FALSE(spans.empty()) << "each translated block must emit a span";
  std::uint64_t translate_spans = 0;
  for (const telemetry::SpanRecord& span : spans) {
    if (span.name != "translate") {
      continue;
    }
    ++translate_spans;
    EXPECT_TRUE(span.counters.count("pc"));
    EXPECT_TRUE(span.counters.count("ops_walked"));
    EXPECT_TRUE(span.counters.count("traces"));
    EXPECT_TRUE(span.counters.count("trace_ops"));
  }
  EXPECT_EQ(translate_spans, m.threaded_stats().blocks_translated);
}

}  // namespace
