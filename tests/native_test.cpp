// End-to-end tests for the native execution backend: every Sequoia kernel
// must run for real on host threads and leave memory bit-identical to the
// reference interpreter, with the sim results (and their artifact schema)
// untouched.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/backend.hpp"
#include "harness/runner.hpp"
#include "kernels/experiments.hpp"
#include "kernels/sequoia.hpp"
#include "support/error.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar {
namespace {

TEST(BackendKind, NamesRoundTripAndUnknownNamesThrow) {
  EXPECT_EQ(compiler::BackendKindName(compiler::BackendKind::kSim), "sim");
  EXPECT_EQ(compiler::BackendKindName(compiler::BackendKind::kNative),
            "native");
  EXPECT_EQ(compiler::ParseBackendKind("sim"), compiler::BackendKind::kSim);
  EXPECT_EQ(compiler::ParseBackendKind("native"),
            compiler::BackendKind::kNative);
  EXPECT_THROW((void)compiler::ParseBackendKind("gpu"), Error);
  EXPECT_THROW((void)compiler::ParseBackendKind(""), Error);
}

TEST(NativeBackend, AllSequoiaKernelsVerifyBitExact) {
  // The acceptance bar for the backend: all 18 Table-I kernels execute on
  // real threads — sequential closures and the partitioned plan over SPSC
  // rings — and both memories match the golden interpreter bit-for-bit.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.backend = compiler::BackendKind::kNative;
  const std::vector<harness::KernelRun> runs = kernels::RunAllKernels(config);
  ASSERT_EQ(runs.size(), kernels::SequoiaKernels().size());
  for (const harness::KernelRun& run : runs) {
    EXPECT_TRUE(run.native_run) << run.kernel_name;
    EXPECT_TRUE(run.native_verified) << run.kernel_name;
    EXPECT_GT(run.native_seq_seconds, 0.0) << run.kernel_name;
    EXPECT_GT(run.native_par_seconds, 0.0) << run.kernel_name;
    EXPECT_GT(run.native_speedup, 0.0) << run.kernel_name;
    EXPECT_GT(run.native_cores, 1) << run.kernel_name;
    // Every partition communicates at least its completion token, so a
    // zero here means the rings were bypassed, not that the kernel was
    // communication-free.
    EXPECT_GT(run.native_queue_transfers, 0u) << run.kernel_name;
    EXPECT_GT(run.native_rings_used, 0) << run.kernel_name;
    // The simulated measurement must be exactly what a sim-backend run
    // produces — the native pass rides alongside, it never replaces.
    EXPECT_GT(run.speedup, 0.0) << run.kernel_name;
    EXPECT_FALSE(run.fallback_used) << run.kernel_name;
  }
}

TEST(NativeBackend, TinyRingCapacityStillVerifies) {
  // Capacity 2 forces constant producer/consumer blocking in the real
  // run — the strongest in-situ exercise of the ring's blocking
  // semantics.  Correctness must not depend on queue sizing.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.queue_capacity = 2;
  config.backend = compiler::BackendKind::kNative;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernelById("irs-1"), config);
  EXPECT_TRUE(run.native_run);
  EXPECT_TRUE(run.native_verified);
}

TEST(NativeBackend, SimRunsCarryNoNativeArtifactEntries) {
  // Historical BENCH_*.json bytes are golden-guarded: a sim-backend run's
  // artifact-visible registry must not grow native.* keys.
  kernels::ExperimentConfig config;
  config.cores = 2;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernels()[0], config);
  EXPECT_FALSE(run.native_run);
  const telemetry::CounterRegistry registry = harness::KernelRunTelemetry(run);
  registry.ForEachArtifactCount([](const std::string& name, std::uint64_t) {
    EXPECT_EQ(name.find("native."), std::string::npos) << name;
  });
  registry.ForEachArtifactMetric([](const std::string& name, double) {
    EXPECT_EQ(name.find("native."), std::string::npos) << name;
  });
}

TEST(NativeBackend, NativeRunsRegisterDeterministicCounters) {
  // Native runs add deterministic counts (verification flag, ring traffic,
  // topology) to the artifact schema; the wall-clock seconds stay
  // host-only (artifact-invisible metrics), so BENCH_native.json's
  // deterministic portion is still a pure function of the inputs.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.backend = compiler::BackendKind::kNative;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernels()[0], config);
  ASSERT_TRUE(run.native_run);
  const telemetry::CounterRegistry registry = harness::KernelRunTelemetry(run);
  std::vector<std::string> counts;
  registry.ForEachArtifactCount(
      [&counts](const std::string& name, std::uint64_t) {
        if (name.rfind("native.", 0) == 0) {
          counts.push_back(name);
        }
      });
  EXPECT_EQ(counts, (std::vector<std::string>{
                        "native.cores", "native.queue_transfers",
                        "native.rings_used", "native.verified"}));
  registry.ForEachArtifactMetric([](const std::string& name, double) {
    EXPECT_EQ(name.find("native."), std::string::npos) << name;
  });
}

}  // namespace
}  // namespace fgpar
