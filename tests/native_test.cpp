// End-to-end tests for the native execution backend: every Sequoia kernel
// must run for real on host threads and leave memory bit-identical to the
// reference interpreter, with the sim results (and their artifact schema)
// untouched.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "compiler/backend.hpp"
#include "compiler/compile.hpp"
#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "kernels/experiments.hpp"
#include "kernels/sequoia.hpp"
#include "native/codegen.hpp"
#include "native/executor.hpp"
#include "support/error.hpp"
#include "support/telemetry/telemetry.hpp"

namespace fgpar {
namespace {

TEST(BackendKind, NamesRoundTripAndUnknownNamesThrow) {
  EXPECT_EQ(compiler::BackendKindName(compiler::BackendKind::kSim), "sim");
  EXPECT_EQ(compiler::BackendKindName(compiler::BackendKind::kNative),
            "native");
  EXPECT_EQ(compiler::ParseBackendKind("sim"), compiler::BackendKind::kSim);
  EXPECT_EQ(compiler::ParseBackendKind("native"),
            compiler::BackendKind::kNative);
  EXPECT_THROW((void)compiler::ParseBackendKind("gpu"), Error);
  EXPECT_THROW((void)compiler::ParseBackendKind(""), Error);
}

TEST(NativeBackend, AllSequoiaKernelsVerifyBitExact) {
  // The acceptance bar for the backend: all 18 Table-I kernels execute on
  // real threads — sequential closures and the partitioned plan over SPSC
  // rings — and both memories match the golden interpreter bit-for-bit.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.backend = compiler::BackendKind::kNative;
  const std::vector<harness::KernelRun> runs = kernels::RunAllKernels(config);
  ASSERT_EQ(runs.size(), kernels::SequoiaKernels().size());
  for (const harness::KernelRun& run : runs) {
    EXPECT_TRUE(run.native_run) << run.kernel_name;
    EXPECT_TRUE(run.native_verified) << run.kernel_name;
    EXPECT_GT(run.native_seq_seconds, 0.0) << run.kernel_name;
    EXPECT_GT(run.native_par_seconds, 0.0) << run.kernel_name;
    EXPECT_GT(run.native_speedup, 0.0) << run.kernel_name;
    EXPECT_GT(run.native_cores, 1) << run.kernel_name;
    // Every partition communicates at least its completion token, so a
    // zero here means the rings were bypassed, not that the kernel was
    // communication-free.
    EXPECT_GT(run.native_queue_transfers, 0u) << run.kernel_name;
    EXPECT_GT(run.native_rings_used, 0) << run.kernel_name;
    // The simulated measurement must be exactly what a sim-backend run
    // produces — the native pass rides alongside, it never replaces.
    EXPECT_GT(run.speedup, 0.0) << run.kernel_name;
    EXPECT_FALSE(run.fallback_used) << run.kernel_name;
  }
}

TEST(NativeBackend, TinyRingCapacityStillVerifies) {
  // Capacity 2 forces constant producer/consumer blocking in the real
  // run — the strongest in-situ exercise of the ring's blocking
  // semantics.  Correctness must not depend on queue sizing.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.queue_capacity = 2;
  config.backend = compiler::BackendKind::kNative;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernelById("irs-1"), config);
  EXPECT_TRUE(run.native_run);
  EXPECT_TRUE(run.native_verified);
}

TEST(NativeBackend, SimRunsCarryNoNativeArtifactEntries) {
  // Historical BENCH_*.json bytes are golden-guarded: a sim-backend run's
  // artifact-visible registry must not grow native.* keys.
  kernels::ExperimentConfig config;
  config.cores = 2;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernels()[0], config);
  EXPECT_FALSE(run.native_run);
  const telemetry::CounterRegistry registry = harness::KernelRunTelemetry(run);
  registry.ForEachArtifactCount([](const std::string& name, std::uint64_t) {
    EXPECT_EQ(name.find("native."), std::string::npos) << name;
  });
  registry.ForEachArtifactMetric([](const std::string& name, double) {
    EXPECT_EQ(name.find("native."), std::string::npos) << name;
  });
}

TEST(NativeBackend, NativeRunsRegisterDeterministicCounters) {
  // Native runs add deterministic counts (verification flag, ring traffic,
  // topology) to the artifact schema; the wall-clock seconds stay
  // host-only (artifact-invisible metrics), so BENCH_native.json's
  // deterministic portion is still a pure function of the inputs.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.backend = compiler::BackendKind::kNative;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernels()[0], config);
  ASSERT_TRUE(run.native_run);
  const telemetry::CounterRegistry registry = harness::KernelRunTelemetry(run);
  std::vector<std::string> counts;
  registry.ForEachArtifactCount(
      [&counts](const std::string& name, std::uint64_t) {
        if (name.rfind("native.", 0) == 0) {
          counts.push_back(name);
        }
      });
  EXPECT_EQ(counts, (std::vector<std::string>{
                        "native.cores", "native.queue_transfers",
                        "native.rings_used", "native.verified"}));
  registry.ForEachArtifactMetric([](const std::string& name, double) {
    EXPECT_EQ(name.find("native."), std::string::npos) << name;
  });
}

TEST(NativeExecutor, WatchdogAbortsCleanlyWhenOneWorkerWedges) {
  // The hang-hardening drill: one worker wedges (alive, never touching its
  // rings), so the cooperative abort flag alone would never fire and the
  // historical behaviour was an infinite hang behind a blocking ring wait.
  // With a wait deadline armed the run must (a) surface a structured
  // RingStallError, (b) release the wedged worker via the abort flag, and
  // (c) join every thread and return well within the test's own deadline.
  ir::Kernel kernel = frontend::ParseKernel(R"(
kernel wedge {
  param i64 n;
  param f64 c;
  array f64 a[32];
  array f64 o1[32];
  array f64 o2[32];
  loop i = 0 .. n {
    o1[i] = a[i] * c + 1.0;
    o2[i] = sqrt(abs(a[i])) - c;
  }
}
)");
  const ir::DataLayout layout(kernel);
  compiler::CompileOptions options;
  options.num_cores = 2;
  const compiler::CompiledParallel compiled =
      compiler::CompileParallel(kernel, layout, options);
  ASSERT_GE(compiled.cores_used, 2);

  ir::ParamEnv params(kernel);
  for (const ir::Symbol& sym : kernel.symbols()) {
    if (sym.name == "n") {
      params.SetI64(sym.id, 16);
    } else if (sym.name == "c") {
      params.SetF64(sym.id, 1.5);
    }
  }
  const std::vector<std::uint64_t> params_raw =
      native::RawParams(kernel, params);
  std::vector<std::uint64_t> memory(layout.end(), 0);

  std::atomic<bool> wedge_saw_abort{false};
  native::NativeExecOptions exec;
  exec.ring_wait_timeout_ms = 200;
  exec.wedge_hook = [&wedge_saw_abort](int core,
                                       const std::atomic<bool>& aborted) {
    if (core != 1) {
      return;  // every other worker runs normally
    }
    // Wedged-but-alive: consume the thread until the watchdog aborts the
    // run.  A real wedge would never return; this one must, to prove the
    // abort flag actually reaches it.
    while (!aborted.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    wedge_saw_abort.store(true, std::memory_order_relaxed);
  };

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(native::ExecuteNative(compiled.lowered(), params_raw, memory,
                                     exec),
               native::RingStallError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(wedge_saw_abort.load(std::memory_order_relaxed));
  // ExecuteNative joins all threads before rethrowing; if the watchdog or
  // the abort propagation regressed, this blows past the bound (or the
  // EXPECT_THROW above hangs the suite, which CI's timeout catches).
  EXPECT_LT(elapsed.count(), 30);
}

TEST(NativeExecutor, WatchdogStaysQuietOnAHealthyRun) {
  // The same deadline must be invisible when everyone is live: a normal
  // 2-core run with a tight (but sane) watchdog completes and verifies.
  kernels::ExperimentConfig config;
  config.cores = 2;
  config.backend = compiler::BackendKind::kNative;
  const harness::KernelRun run =
      kernels::RunKernel(kernels::SequoiaKernels()[0], config);
  EXPECT_TRUE(run.native_run);
  EXPECT_TRUE(run.native_verified);
}

}  // namespace
}  // namespace fgpar
