# Resilience drill, run as a ctest entry (cmake -P).
#
# Proves the sweep supervisor's whole failure-containment story on the
# fig12 smoke grid:
#
#   run A  — uninterrupted: one grid point carries an injected
#            unrecoverable fault (--fault-point 1), gets retried once,
#            quarantined within the failure budget, and emits a repro
#            bundle; the run still exits 0.
#   run B1 — same sweep, but FGPAR_SUPERVISOR_EXIT_AFTER=2 SIGKILLs the
#            process right after the second point is journaled (a stand-in
#            for an external kill -9 mid-sweep).  Must die nonzero.
#   run B2 — same sweep with --resume: replays the journaled points,
#            recomputes the rest, and must exit 0.
#
# The deterministic BENCH artifact and the stdout table from run B2 must
# be byte-identical to run A's — an interruption plus resume is invisible
# in the results.  Finally, fgpar-repro replays run B's bundle and must
# report the recorded failure reproduces bit-exactly.
#
# Usage:
#   cmake -DFIG12=<fig12_speedup exe> -DREPRO_TOOL=<fgpar-repro exe>
#         -DWORK_DIR=<scratch dir> -P resume_guard.cmake

if(NOT DEFINED FIG12 OR NOT DEFINED REPRO_TOOL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "resume_guard.cmake requires -DFIG12, -DREPRO_TOOL, and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/a" "${WORK_DIR}/b")

set(ENV{FGPAR_BENCH_DETERMINISTIC} "1")
set(ENV{FGPAR_SWEEP_THREADS} "2")

set(sweep_args --smoke --fault-point 1 --max-retries 1 --failure-budget 1)

# ---- run A: uninterrupted, with quarantine + repro bundle ------------------
set(ENV{FGPAR_BENCH_DIR} "${WORK_DIR}/a")
execute_process(
  COMMAND ${FIG12} ${sweep_args}
    --checkpoint "${WORK_DIR}/a/ckpt" --repro-dir "${WORK_DIR}/a/repro"
  OUTPUT_VARIABLE stdout_a
  ERROR_VARIABLE stderr_a
  RESULT_VARIABLE status_a)
if(NOT status_a EQUAL 0)
  message(FATAL_ERROR
    "run A failed (${status_a}): the quarantined fault must stay within "
    "the failure budget\n${stderr_a}")
endif()
if(NOT stderr_a MATCHES "quarantined point 1")
  message(FATAL_ERROR "run A did not quarantine point 1:\n${stderr_a}")
endif()

# ---- run B1: SIGKILL after two journaled points ----------------------------
set(ENV{FGPAR_BENCH_DIR} "${WORK_DIR}/b")
set(ENV{FGPAR_SUPERVISOR_EXIT_AFTER} "2")
execute_process(
  COMMAND ${FIG12} ${sweep_args}
    --checkpoint "${WORK_DIR}/b/ckpt" --repro-dir "${WORK_DIR}/b/repro"
  OUTPUT_VARIABLE stdout_b1
  ERROR_VARIABLE stderr_b1
  RESULT_VARIABLE status_b1)
unset(ENV{FGPAR_SUPERVISOR_EXIT_AFTER})
if(status_b1 EQUAL 0)
  message(FATAL_ERROR "run B1 survived FGPAR_SUPERVISOR_EXIT_AFTER=2; the "
    "mid-sweep kill never happened")
endif()
if(NOT EXISTS "${WORK_DIR}/b/ckpt")
  message(FATAL_ERROR "run B1 died without leaving a checkpoint journal")
endif()

# ---- run B2: resume and finish ---------------------------------------------
execute_process(
  COMMAND ${FIG12} ${sweep_args}
    --checkpoint "${WORK_DIR}/b/ckpt" --repro-dir "${WORK_DIR}/b/repro"
    --resume
  OUTPUT_VARIABLE stdout_b2
  ERROR_VARIABLE stderr_b2
  RESULT_VARIABLE status_b2)
if(NOT status_b2 EQUAL 0)
  message(FATAL_ERROR "run B2 (resume) failed (${status_b2}):\n${stderr_b2}")
endif()
if(NOT stderr_b2 MATCHES "resumed [0-9]+ completed points")
  message(FATAL_ERROR "run B2 did not report resumed points:\n${stderr_b2}")
endif()

# ---- interruption must be invisible in the results -------------------------
if(NOT stdout_b2 STREQUAL stdout_a)
  file(WRITE "${WORK_DIR}/stdout_a.txt" "${stdout_a}")
  file(WRITE "${WORK_DIR}/stdout_b2.txt" "${stdout_b2}")
  message(FATAL_ERROR
    "resumed run's stdout differs from the uninterrupted run's "
    "(see ${WORK_DIR}/stdout_a.txt vs stdout_b2.txt)")
endif()
file(READ "${WORK_DIR}/a/BENCH_fig12.json" artifact_a)
file(READ "${WORK_DIR}/b/BENCH_fig12.json" artifact_b)
if(NOT artifact_a STREQUAL artifact_b)
  message(FATAL_ERROR
    "resumed run's BENCH_fig12.json differs from the uninterrupted run's "
    "(${WORK_DIR}/a vs ${WORK_DIR}/b)")
endif()

# ---- the repro bundle must replay bit-exactly ------------------------------
execute_process(
  COMMAND ${REPRO_TOOL} "${WORK_DIR}/b/repro/repro_fig12_point1"
  OUTPUT_VARIABLE stdout_repro
  ERROR_VARIABLE stderr_repro
  RESULT_VARIABLE status_repro)
if(NOT status_repro EQUAL 0)
  message(FATAL_ERROR
    "fgpar-repro failed (${status_repro}):\n${stdout_repro}${stderr_repro}")
endif()
if(NOT stdout_repro MATCHES "reproduced")
  message(FATAL_ERROR "fgpar-repro did not report a repro:\n${stdout_repro}")
endif()
