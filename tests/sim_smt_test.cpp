// Tests for the SMT hardware-thread mode (threads_per_core > 1):
// issue-slot sharing, latency hiding, L1 sharing, and queue communication
// between sibling threads.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Fpr;
using isa::Gpr;

/// Two identical threads; returns total cycles for the given topology.
std::uint64_t RunTwoThreads(int threads_per_core,
                            const std::function<void(Assembler&)>& emit_body) {
  Assembler a;
  isa::Label t0 = a.NewNamedLabel("t0");
  isa::Label t1 = a.NewNamedLabel("t1");
  for (isa::Label label : {t0, t1}) {
    a.Bind(label);
    emit_body(a);
    a.Halt();
  }
  MachineConfig config;
  config.num_cores = 2;
  config.threads_per_core = threads_per_core;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  machine.StartCoreAt(0, "t0");
  machine.StartCoreAt(1, "t1");
  return machine.Run().cycles;
}

TEST(Smt, ComputeBoundThreadsShareTheIssueSlot) {
  auto busy_loop = [](Assembler& a) {
    a.LiI(Gpr{1}, 2000);
    a.LiI(Gpr{2}, 1);
    isa::Label top = a.NewLabel();
    a.Bind(top);
    a.AddI(Gpr{3}, Gpr{1}, Gpr{2});
    a.AddI(Gpr{4}, Gpr{1}, Gpr{2});
    a.AddI(Gpr{5}, Gpr{1}, Gpr{2});
    a.SubI(Gpr{1}, Gpr{1}, Gpr{2});
    a.Bnz(Gpr{1}, top);
  };
  const std::uint64_t separate = RunTwoThreads(1, busy_loop);
  const std::uint64_t shared = RunTwoThreads(2, busy_loop);
  // Sharing one issue slot cannot be faster, and for issue-bound code it
  // must cost materially more (at least the combined instruction count).
  EXPECT_GT(shared, separate);
  EXPECT_GE(shared, 2 * 5 * 2000u);  // 2 threads x 5 instrs x 2000 iters
}

TEST(Smt, LatencyBoundThreadsOverlapAlmostPerfectly) {
  // Dependent fp chain: a single thread stalls fp_alu cycles per add, so a
  // sibling can fill the bubbles — shared-core time stays close to the
  // separate-cores time instead of doubling.
  auto chain = [](Assembler& a) {
    a.LiF(Fpr{1}, 1.0);
    a.LiI(Gpr{1}, 500);
    a.LiI(Gpr{2}, 1);
    isa::Label top = a.NewLabel();
    a.Bind(top);
    a.AddF(Fpr{1}, Fpr{1}, Fpr{1});
    a.SubI(Gpr{1}, Gpr{1}, Gpr{2});
    a.Bnz(Gpr{1}, top);
  };
  const std::uint64_t separate = RunTwoThreads(1, chain);
  const std::uint64_t shared = RunTwoThreads(2, chain);
  EXPECT_GE(shared, separate);
  EXPECT_LT(shared, separate * 3 / 2);  // far below 2x
}

TEST(Smt, SiblingThreadsShareL1) {
  // Thread 0 walks an array (warming the L1), signals thread 1, which then
  // walks the same array.  On one physical core the second walk hits the
  // shared L1; on two cores it must refill its own.
  auto build = [](int threads_per_core) {
    Assembler a;
    isa::Label t0 = a.NewNamedLabel("t0");
    isa::Label t1 = a.NewNamedLabel("t1");

    a.Bind(t0);
    a.LiI(Gpr{1}, 0);
    a.LiI(Gpr{2}, 1);
    a.LiI(Gpr{3}, 256);
    isa::Label top0 = a.NewLabel();
    a.Bind(top0);
    a.LdF(Fpr{1}, Gpr{1}, 256);
    a.AddI(Gpr{1}, Gpr{1}, Gpr{2});
    a.CltI(Gpr{4}, Gpr{1}, Gpr{3});
    a.Bnz(Gpr{4}, top0);
    a.EnqI(1, Gpr{2});  // ready signal
    a.Halt();

    a.Bind(t1);
    a.DeqI(0, Gpr{5});
    a.LiI(Gpr{1}, 0);
    a.LiI(Gpr{2}, 1);
    a.LiI(Gpr{3}, 256);
    isa::Label top1 = a.NewLabel();
    a.Bind(top1);
    a.LdF(Fpr{1}, Gpr{1}, 256);
    a.AddI(Gpr{1}, Gpr{1}, Gpr{2});
    a.CltI(Gpr{4}, Gpr{1}, Gpr{3});
    a.Bnz(Gpr{4}, top1);
    a.Halt();

    MachineConfig config;
    config.num_cores = 2;
    config.threads_per_core = threads_per_core;
    config.memory_words = 1 << 12;
    Machine machine(config, a.Finish());
    machine.StartCoreAt(0, "t0");
    machine.StartCoreAt(1, "t1");
    machine.Run();
    return machine.memory().misses() + machine.memory().l2_hits();
  };
  // Shared L1: the second walk generates no additional L1 misses.
  EXPECT_LT(build(2), build(1));
}

TEST(Smt, QueuesWorkBetweenSiblingThreads) {
  Assembler a;
  isa::Label t0 = a.NewNamedLabel("t0");
  isa::Label t1 = a.NewNamedLabel("t1");
  a.Bind(t0);
  a.LiI(Gpr{1}, 77);
  a.EnqI(1, Gpr{1});
  a.DeqI(1, Gpr{2});
  a.Halt();
  a.Bind(t1);
  a.DeqI(0, Gpr{1});
  a.LiI(Gpr{2}, 1);
  a.AddI(Gpr{1}, Gpr{1}, Gpr{2});
  a.EnqI(0, Gpr{1});
  a.Halt();

  MachineConfig config;
  config.num_cores = 2;
  config.threads_per_core = 2;  // both threads on one physical core
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  machine.StartCoreAt(0, "t0");
  machine.StartCoreAt(1, "t1");
  machine.Run();
  EXPECT_EQ(machine.core(0).gpr(2), 78);
}

TEST(Smt, RejectsBadThreadCount) {
  Assembler a;
  a.Halt();
  MachineConfig config;
  config.num_cores = 2;
  config.threads_per_core = 0;
  config.memory_words = 1 << 12;
  EXPECT_THROW(Machine(config, a.Finish()), Error);
}

}  // namespace
}  // namespace fgpar::sim
