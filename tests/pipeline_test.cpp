// Pass-manager tests.
//
// Three properties of the instrumented pipeline (pipeline.hpp):
//   1. Composition is locked: the scalar rewrite ordering is defined once
//      (AddScalarRewritePasses) and shared by the sequential, parallel, and
//      rewrite pipelines — a reordering is a test failure, not a silent
//      behaviour change.
//   2. Every Sequoia kernel compiles through the full pipeline with
//      ir::CheckValid after every IR-mutating pass, and the telemetry
//      span stream records every pass.
//   3. The manager — not a downstream crash — catches a broken pass, and
//      the error names the offending pass.  Likewise the select stage's
//      aggregate diagnostic lists every rejected candidate.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/pipeline.hpp"
#include "frontend/parser.hpp"
#include "ir/layout.hpp"
#include "ir/validate.hpp"
#include "kernels/sequoia.hpp"
#include "support/error.hpp"
#include "support/telemetry/sinks.hpp"

namespace fgpar::compiler {
namespace {

constexpr const char* kTinyKernel = R"(
kernel tiny {
  param i64 n;
  array f64 a[64];
  array f64 b[64];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0;
    b[i] = v + a[i];
  }
}
)";

std::vector<std::string> Concat(std::vector<std::string> head,
                                std::initializer_list<const char*> tail) {
  for (const char* name : tail) {
    head.emplace_back(name);
  }
  return head;
}

// ---- 1. composition locks -------------------------------------------------

TEST(PipelineComposition, ScalarOrderingIsLocked) {
  CompileOptions options;
  const std::vector<std::string> scalar = {"split", "fold", "forward", "dce"};
  EXPECT_EQ(ScalarRewritePassNames(options, /*parallel=*/false), scalar);
  EXPECT_EQ(ScalarRewritePassNames(options, /*parallel=*/true), scalar);

  options.speculation = true;
  // Speculation slots between folding and store-forwarding, and only in
  // parallel pipelines: the sequential baseline never speculates.
  const std::vector<std::string> speculative = {"split", "fold", "speculate",
                                                "forward", "dce"};
  EXPECT_EQ(ScalarRewritePassNames(options, /*parallel=*/true), speculative);
  EXPECT_EQ(ScalarRewritePassNames(options, /*parallel=*/false), scalar);
}

TEST(PipelineComposition, PipelinesShareTheScalarPrefix) {
  CompileOptions options;
  options.speculation = true;

  const std::vector<std::string> scalar =
      ScalarRewritePassNames(options, /*parallel=*/true);
  EXPECT_EQ(BuildRewritePipeline(options).PassNames(),
            Concat(scalar, {"fiberize"}));
  EXPECT_EQ(BuildParallelPipeline(options).PassNames(),
            Concat(scalar, {"fiberize", "graph", "merge", "select"}));
  EXPECT_EQ(BuildSequentialPipeline(options).PassNames(),
            Concat(ScalarRewritePassNames(options, /*parallel=*/false),
                   {"lower"}));
}

TEST(PipelineComposition, DuplicatePassNamesAreRejected) {
  PassManager manager("dup");
  manager.Add(MakeSplitPass());
  EXPECT_THROW(manager.Add(MakeSplitPass()), Error);
}

TEST(PipelineComposition, DescribeListsEveryPass) {
  const PassManager manager = BuildParallelPipeline(CompileOptions{});
  const std::string description = manager.Describe();
  for (const std::string& name : manager.PassNames()) {
    EXPECT_NE(description.find(name), std::string::npos) << name;
  }
}

// ---- 2. every kernel through the instrumented pipeline --------------------

TEST(PipelineAllKernels, EverySequoiaKernelCompilesWithPerPassValidation) {
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    const ir::Kernel kernel = kernels::ParseSequoia(spec);
    const ir::DataLayout layout(kernel);
    for (const bool speculation : {false, true}) {
      for (const bool throughput : {false, true}) {
        for (const int cores : {2, 4}) {
          CompileOptions options;
          options.num_cores = cores;
          options.speculation = speculation;
          options.throughput_heuristic = throughput;

          telemetry::AggregatingSink sink;
          PipelineInstrumentation instrumentation;
          instrumentation.telemetry = &sink;
          instrumentation.verify_each_pass = true;

          const CompiledParallel compiled =
              CompileParallel(kernel, layout, options, /*profile=*/nullptr,
                              /*evaluator=*/nullptr, &instrumentation);
          SCOPED_TRACE(spec.id + " cores=" + std::to_string(cores));
          EXPECT_GE(compiled.cores_used, 1);
          EXPECT_GT(compiled.program.size(), 0u);
          const std::vector<telemetry::SpanRecord> pipelines =
              sink.SpansInCategory("pipeline");
          ASSERT_EQ(pipelines.size(), 1u);
          EXPECT_EQ(pipelines.front().name, "parallel");
          const std::vector<telemetry::SpanRecord> pass_spans =
              sink.SpansInCategory("pass");
          ASSERT_EQ(pass_spans.size(),
                    BuildParallelPipeline(options).PassNames().size());
          // Rewrites only shrink-or-grow through recorded deltas; the
          // span stream must cover every pass in order, each span
          // carrying the reserved IR-delta counters.
          const std::vector<std::string> names =
              BuildParallelPipeline(options).PassNames();
          for (std::size_t p = 0; p < names.size(); ++p) {
            EXPECT_EQ(pass_spans[p].name, names[p]);
            EXPECT_EQ(pass_spans[p].counters.count("stmts_before"), 1u);
            EXPECT_EQ(pass_spans[p].counters.count("stmts_after"), 1u);
          }
        }
      }
    }

    telemetry::AggregatingSink sink;
    PipelineInstrumentation instrumentation;
    instrumentation.telemetry = &sink;
    const isa::Program sequential =
        CompileSequential(kernel, layout, CompileOptions{}, &instrumentation);
    EXPECT_GT(sequential.size(), 0u) << spec.id;
    const std::vector<telemetry::SpanRecord> pipelines =
        sink.SpansInCategory("pipeline");
    ASSERT_EQ(pipelines.size(), 1u);
    EXPECT_EQ(pipelines.front().name, "sequential");
    EXPECT_EQ(sink.SpansInCategory("pass").back().name, "lower");
  }
}

TEST(PipelineInstrumentationTest, DumpAfterAllFiresOncePerPass) {
  const ir::Kernel kernel = frontend::ParseKernel(kTinyKernel);
  const ir::DataLayout layout(kernel);
  std::vector<std::string> dumped;
  PipelineInstrumentation instrumentation;
  instrumentation.dump_after = "all";
  instrumentation.dump_sink = [&](const std::string& pass,
                                  const std::string& text) {
    EXPECT_NE(text.find("kernel tiny"), std::string::npos);
    dumped.push_back(pass);
  };
  CompileParallel(kernel, layout, CompileOptions{}, nullptr, nullptr,
                  &instrumentation);
  EXPECT_EQ(dumped, BuildParallelPipeline(CompileOptions{}).PassNames());

  dumped.clear();
  instrumentation.dump_after = "fiberize";
  CompileParallel(kernel, layout, CompileOptions{}, nullptr, nullptr,
                  &instrumentation);
  EXPECT_EQ(dumped, std::vector<std::string>{"fiberize"});
}

// ---- 3. failures are caught and attributed --------------------------------

/// Test-only pass: points a statement at an out-of-range expression.
class ClobberPass : public Pass {
 public:
  const char* name() const override { return "clobber"; }
  const char* description() const override {
    return "test-only: corrupts the IR";
  }
  bool mutates_ir() const override { return true; }
  void Run(CompileState& state) override {
    state.kernel().mutable_loop().body.front().value = 999999;
  }
};

/// Test-only pass: leaves the IR alone but declares an impossible invariant.
class LyingPass : public Pass {
 public:
  const char* name() const override { return "lying"; }
  const char* description() const override {
    return "test-only: invariant always fails";
  }
  void Run(CompileState&) override {}
  void CheckInvariants(const CompileState&) const override {
    throw Error("the moon is full");
  }
};

TEST(PipelineValidation, BrokenPassIsCaughtByTheManagerAndAttributed) {
  const ir::Kernel kernel = frontend::ParseKernel(kTinyKernel);
  PassManager manager("test");
  manager.Add(std::make_unique<ClobberPass>());
  CompileState state(kernel, /*layout=*/nullptr, CompileOptions{});
  try {
    manager.Run(state);
    FAIL() << "manager accepted invalid IR";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("pass 'clobber'"), std::string::npos) << message;
    EXPECT_NE(message.find("produced invalid IR"), std::string::npos)
        << message;
  }
}

TEST(PipelineValidation, InvariantViolationIsAttributed) {
  const ir::Kernel kernel = frontend::ParseKernel(kTinyKernel);
  PassManager manager("test");
  manager.Add(std::make_unique<LyingPass>());
  CompileState state(kernel, /*layout=*/nullptr, CompileOptions{});
  try {
    manager.Run(state);
    FAIL() << "manager ignored a violated invariant";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("pass 'lying'"), std::string::npos) << message;
    EXPECT_NE(message.find("violated its invariants"), std::string::npos)
        << message;
    EXPECT_NE(message.find("the moon is full"), std::string::npos) << message;
  }
}

TEST(PipelineValidation, VerifyEachPassKnobSkipsTheValidator) {
  const ir::Kernel kernel = frontend::ParseKernel(kTinyKernel);
  PassManager manager("test");
  manager.Add(std::make_unique<ClobberPass>());
  CompileState state(kernel, /*layout=*/nullptr, CompileOptions{});
  PipelineInstrumentation instrumentation;
  instrumentation.verify_each_pass = false;
  manager.Run(state, &instrumentation);  // broken IR sails through...
  EXPECT_THROW(ir::CheckValid(state.kernel()), Error);  // ...but it IS broken
}

TEST(PipelineValidation, SelectStageReportsEveryRejectedCandidate) {
  const kernels::SequoiaKernel& spec = kernels::SequoiaKernels().front();
  const ir::Kernel kernel = kernels::ParseSequoia(spec);
  const ir::DataLayout layout(kernel);
  CompileOptions options;
  options.num_cores = 4;
  // An evaluator that refuses every candidate forces the multi-version
  // loop to exhaust its set; the aggregate error must list each rejection,
  // not just the last one.
  const PartitionEvaluator reject_all =
      [](const isa::Program&, int) -> std::uint64_t {
    throw Error("training workload refused this candidate");
  };
  try {
    CompileParallel(kernel, layout, options, nullptr, &reject_all);
    FAIL() << "expected every candidate to be rejected";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no candidate partitioning compiled successfully"),
              std::string::npos)
        << message;
    // Every candidate appears, numbered i/N.
    EXPECT_NE(message.find("candidate 1/"), std::string::npos) << message;
    EXPECT_NE(message.find("candidate 2/"), std::string::npos) << message;
    EXPECT_NE(message.find("training workload refused"), std::string::npos)
        << message;
  }
}

}  // namespace
}  // namespace fgpar::compiler
