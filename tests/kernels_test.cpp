// Validation of the 18 Sequoia kernel reconstructions: every kernel must
// pass the interpreter / sequential / parallel triple check on 2 and 4
// cores, with and without speculation, and under the throughput heuristic.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "kernels/sequoia.hpp"

namespace fgpar::kernels {
namespace {

TEST(Sequoia, HasEighteenKernelsInTableOrder) {
  const auto& kernels = SequoiaKernels();
  ASSERT_EQ(kernels.size(), 18u);
  EXPECT_EQ(kernels[0].id, "lammps-1");
  EXPECT_EQ(kernels[5].id, "irs-1");
  EXPECT_EQ(kernels[10].id, "umt2k-1");
  EXPECT_EQ(kernels[17].id, "sphot-2");
}

TEST(Sequoia, PercentagesMatchTableOne) {
  EXPECT_DOUBLE_EQ(SequoiaKernelById("lammps-1").pct_time, 30.0);
  EXPECT_DOUBLE_EQ(SequoiaKernelById("lammps-3").pct_time, 49.5);
  EXPECT_DOUBLE_EQ(SequoiaKernelById("irs-1").pct_time, 55.6);
  EXPECT_DOUBLE_EQ(SequoiaKernelById("umt2k-4").pct_time, 22.6);
  EXPECT_DOUBLE_EQ(SequoiaKernelById("sphot-2").pct_time, 37.5);
}

TEST(Sequoia, ApplicationsCoverAllKernels) {
  std::size_t total = 0;
  for (const SequoiaApplication& app : SequoiaApplications()) {
    total += app.kernel_ids.size();
    for (const std::string& id : app.kernel_ids) {
      EXPECT_EQ(SequoiaKernelById(id).application, app.name);
    }
  }
  EXPECT_EQ(total, 18u);
}

TEST(Sequoia, UnknownIdThrows) {
  EXPECT_THROW(SequoiaKernelById("lammps-9"), Error);
}

class SequoiaKernelCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(SequoiaKernelCheck, TripleCheckTwoAndFourCores) {
  const SequoiaKernel& spec = SequoiaKernelById(GetParam());
  const ir::Kernel kernel = ParseSequoia(spec);
  harness::KernelRunner runner(kernel, SequoiaInit(spec));
  for (int cores : {2, 4}) {
    harness::RunConfig config;
    config.compile.num_cores = cores;
    const harness::KernelRun run = runner.Run(config);  // throws on mismatch
    EXPECT_GT(run.seq_cycles, 0u);
    EXPECT_GT(run.par_cycles, 0u);
  }
}

TEST_P(SequoiaKernelCheck, TripleCheckWithSpeculation) {
  const SequoiaKernel& spec = SequoiaKernelById(GetParam());
  const ir::Kernel kernel = ParseSequoia(spec);
  harness::KernelRunner runner(kernel, SequoiaInit(spec));
  harness::RunConfig config;
  config.compile.num_cores = 4;
  config.compile.speculation = true;
  const harness::KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);
}

TEST_P(SequoiaKernelCheck, TripleCheckWithThroughputHeuristic) {
  const SequoiaKernel& spec = SequoiaKernelById(GetParam());
  const ir::Kernel kernel = ParseSequoia(spec);
  harness::KernelRunner runner(kernel, SequoiaInit(spec));
  harness::RunConfig config;
  config.compile.num_cores = 4;
  config.compile.throughput_heuristic = true;
  const harness::KernelRun run = runner.Run(config);
  EXPECT_GT(run.seq_cycles, 0u);
}

std::vector<std::string> AllKernelIds() {
  std::vector<std::string> ids;
  for (const SequoiaKernel& kernel : SequoiaKernels()) {
    ids.push_back(kernel.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SequoiaKernelCheck,
                         ::testing::ValuesIn(AllKernelIds()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace fgpar::kernels
