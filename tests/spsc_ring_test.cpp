// Stress and property tests for the native backend's SPSC ring buffer —
// the lock-free stand-in for the paper's capacity-20 hardware queue.
//
// The two-thread hammer defaults to 10M ops; FGPAR_RING_HAMMER_OPS
// overrides it (the TSan CI job runs a reduced count, since every atomic
// op is instrumented there).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "native/ring.hpp"
#include "support/error.hpp"

namespace fgpar::native {
namespace {

TEST(SpscRing, FifoOrderSingleThreaded) {
  SpscRing ring(4);
  for (std::uint64_t round = 0; round < 8; ++round) {
    EXPECT_TRUE(ring.TryPush(round * 2));
    EXPECT_TRUE(ring.TryPush(round * 2 + 1));
    std::uint64_t value = 0;
    EXPECT_TRUE(ring.TryPop(value));
    EXPECT_EQ(value, round * 2);
    EXPECT_TRUE(ring.TryPop(value));
    EXPECT_EQ(value, round * 2 + 1);
  }
  std::uint64_t value = 0;
  EXPECT_FALSE(ring.TryPop(value));
  EXPECT_EQ(ring.total_transfers(), 16u);
}

TEST(SpscRing, CapacityTwentyBlocksTheProducer) {
  // The paper's queue holds exactly 20 entries; the 21st enq must wait for
  // a deq, mirroring sim/hw_queue's blocking semantics.
  SpscRing ring;  // kDefaultCapacity = 20
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(20));
  EXPECT_EQ(ring.size(), 20u);

  // A blocking Push parks until the consumer makes room.
  std::thread producer([&ring] { ring.Push(20); });
  std::uint64_t value = 0;
  EXPECT_TRUE(ring.TryPop(value));
  EXPECT_EQ(value, 0u);
  producer.join();
  // Drain: 1..20 in order.
  for (std::uint64_t expected = 1; expected <= 20; ++expected) {
    EXPECT_EQ(ring.Pop(), expected);
  }
  EXPECT_FALSE(ring.TryPop(value));
}

TEST(SpscRing, WrapAroundKeepsFifoOrder) {
  // Capacity 3 with a drift between push and pop counts forces the
  // head/tail counters through many wrap-arounds (and, being monotonic,
  // through index arithmetic that must stay correct modulo capacity).
  SpscRing ring(3);
  std::uint64_t pushed = 0, popped = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.size() < 3) {
      ASSERT_TRUE(ring.TryPush(pushed));
      ++pushed;
    }
    const int pops = 1 + round % 3;
    for (int p = 0; p < pops && popped < pushed; ++p) {
      ASSERT_EQ(ring.Pop(), popped);
      ++popped;
    }
  }
  while (popped < pushed) {
    ASSERT_EQ(ring.Pop(), popped);
    ++popped;
  }
  EXPECT_EQ(ring.total_transfers(), popped);
}

TEST(SpscRing, TwoThreadHammerPreservesEveryValueInOrder) {
  // One producer, one consumer, default 10M blocking ops through a
  // capacity-20 ring.  The consumer asserts strict FIFO (values are the
  // sequence 0..N-1) and both sides checksum, so a lost, duplicated, or
  // reordered slot cannot cancel out.
  std::uint64_t ops = 10'000'000;
  if (const char* env = std::getenv("FGPAR_RING_HAMMER_OPS")) {
    ops = static_cast<std::uint64_t>(std::atoll(env));
    ASSERT_GT(ops, 0u);
  }
  SpscRing ring;
  std::uint64_t produced_sum = 0, consumed_sum = 0;
  std::uint64_t order_violations = 0;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      // A value pattern that exercises all 64 bits, not just low counters.
      const std::uint64_t value = i * 0x9e3779b97f4a7c15ull + i;
      produced_sum += value;
      ring.Push(value);
    }
  });
  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t value = ring.Pop();
      if (value != i * 0x9e3779b97f4a7c15ull + i) {
        ++order_violations;
      }
      consumed_sum += value;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(order_violations, 0u);
  EXPECT_EQ(consumed_sum, produced_sum);
  EXPECT_EQ(ring.total_transfers(), ops);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.TryPop(leftover));
}

TEST(SpscRing, WaitDeadlinePopThrowsStructuredStallError) {
  // A consumer whose producer is wedged (alive, holding its thread, never
  // pushing) cannot rely on the abort flag — nobody throws, so nobody
  // flips it.  The armed deadline turns the hang into a structured error
  // naming the stalled operation and the time waited.
  SpscRing ring(2);
  ring.SetWaitTimeout(50);
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)ring.Pop();
    FAIL() << "Pop on an empty ring must hit the wait deadline";
  } catch (const RingStallError& e) {
    EXPECT_STREQ(e.op(), "pop");
    EXPECT_GE(e.waited_ms(), 50u);
  }
  const auto waited = std::chrono::steady_clock::now() - start;
  // The deadline is 50ms; anything near seconds means the watchdog is not
  // actually bounding the wait.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);
}

TEST(SpscRing, WaitDeadlinePushThrowsAndRingStaysIntact) {
  SpscRing ring(2);
  ring.SetWaitTimeout(50);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  try {
    ring.Push(3);  // full ring, no consumer: must stall out
    FAIL() << "Push on a full ring must hit the wait deadline";
  } catch (const RingStallError& e) {
    EXPECT_STREQ(e.op(), "push");
  }
  // The failed push left the ring contents untouched.
  EXPECT_EQ(ring.Pop(), 1u);
  EXPECT_EQ(ring.Pop(), 2u);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.TryPop(leftover));
}

TEST(SpscRing, DeadlineDoesNotFireWhileTheRingMakesProgress) {
  // A slow-but-live peer must never trip the watchdog: the deadline is per
  // blocking wait, not per ring lifetime.
  SpscRing ring(2);
  ring.SetWaitTimeout(200);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < 20; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ring.Push(i);
    }
  });
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(ring.Pop(), i);
  }
  producer.join();
}

TEST(SpscRing, AbortFlagUnblocksAWaitingSide) {
  // When a peer worker dies, the executor sets the shared abort flag; a
  // blocked Push/Pop must throw instead of spinning forever.
  std::atomic<bool> abort{false};
  SpscRing ring(2);
  ring.SetAbort(&abort);
  std::thread setter([&abort] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true, std::memory_order_relaxed);
  });
  EXPECT_THROW(ring.Pop(), Error);  // empty ring: Pop blocks, then aborts
  setter.join();
}

}  // namespace
}  // namespace fgpar::native
