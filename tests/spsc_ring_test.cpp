// Stress and property tests for the native backend's SPSC ring buffer —
// the lock-free stand-in for the paper's capacity-20 hardware queue.
//
// The two-thread hammer defaults to 10M ops; FGPAR_RING_HAMMER_OPS
// overrides it (the TSan CI job runs a reduced count, since every atomic
// op is instrumented there).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "native/ring.hpp"
#include "support/error.hpp"

namespace fgpar::native {
namespace {

TEST(SpscRing, FifoOrderSingleThreaded) {
  SpscRing ring(4);
  for (std::uint64_t round = 0; round < 8; ++round) {
    EXPECT_TRUE(ring.TryPush(round * 2));
    EXPECT_TRUE(ring.TryPush(round * 2 + 1));
    std::uint64_t value = 0;
    EXPECT_TRUE(ring.TryPop(value));
    EXPECT_EQ(value, round * 2);
    EXPECT_TRUE(ring.TryPop(value));
    EXPECT_EQ(value, round * 2 + 1);
  }
  std::uint64_t value = 0;
  EXPECT_FALSE(ring.TryPop(value));
  EXPECT_EQ(ring.total_transfers(), 16u);
}

TEST(SpscRing, CapacityTwentyBlocksTheProducer) {
  // The paper's queue holds exactly 20 entries; the 21st enq must wait for
  // a deq, mirroring sim/hw_queue's blocking semantics.
  SpscRing ring;  // kDefaultCapacity = 20
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(20));
  EXPECT_EQ(ring.size(), 20u);

  // A blocking Push parks until the consumer makes room.
  std::thread producer([&ring] { ring.Push(20); });
  std::uint64_t value = 0;
  EXPECT_TRUE(ring.TryPop(value));
  EXPECT_EQ(value, 0u);
  producer.join();
  // Drain: 1..20 in order.
  for (std::uint64_t expected = 1; expected <= 20; ++expected) {
    EXPECT_EQ(ring.Pop(), expected);
  }
  EXPECT_FALSE(ring.TryPop(value));
}

TEST(SpscRing, WrapAroundKeepsFifoOrder) {
  // Capacity 3 with a drift between push and pop counts forces the
  // head/tail counters through many wrap-arounds (and, being monotonic,
  // through index arithmetic that must stay correct modulo capacity).
  SpscRing ring(3);
  std::uint64_t pushed = 0, popped = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.size() < 3) {
      ASSERT_TRUE(ring.TryPush(pushed));
      ++pushed;
    }
    const int pops = 1 + round % 3;
    for (int p = 0; p < pops && popped < pushed; ++p) {
      ASSERT_EQ(ring.Pop(), popped);
      ++popped;
    }
  }
  while (popped < pushed) {
    ASSERT_EQ(ring.Pop(), popped);
    ++popped;
  }
  EXPECT_EQ(ring.total_transfers(), popped);
}

TEST(SpscRing, TwoThreadHammerPreservesEveryValueInOrder) {
  // One producer, one consumer, default 10M blocking ops through a
  // capacity-20 ring.  The consumer asserts strict FIFO (values are the
  // sequence 0..N-1) and both sides checksum, so a lost, duplicated, or
  // reordered slot cannot cancel out.
  std::uint64_t ops = 10'000'000;
  if (const char* env = std::getenv("FGPAR_RING_HAMMER_OPS")) {
    ops = static_cast<std::uint64_t>(std::atoll(env));
    ASSERT_GT(ops, 0u);
  }
  SpscRing ring;
  std::uint64_t produced_sum = 0, consumed_sum = 0;
  std::uint64_t order_violations = 0;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      // A value pattern that exercises all 64 bits, not just low counters.
      const std::uint64_t value = i * 0x9e3779b97f4a7c15ull + i;
      produced_sum += value;
      ring.Push(value);
    }
  });
  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t value = ring.Pop();
      if (value != i * 0x9e3779b97f4a7c15ull + i) {
        ++order_violations;
      }
      consumed_sum += value;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(order_violations, 0u);
  EXPECT_EQ(consumed_sum, produced_sum);
  EXPECT_EQ(ring.total_transfers(), ops);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.TryPop(leftover));
}

TEST(SpscRing, AbortFlagUnblocksAWaitingSide) {
  // When a peer worker dies, the executor sets the shared abort flag; a
  // blocked Push/Pop must throw instead of spinning forever.
  std::atomic<bool> abort{false};
  SpscRing ring(2);
  ring.SetAbort(&abort);
  std::thread setter([&abort] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true, std::memory_order_relaxed);
  });
  EXPECT_THROW(ring.Pop(), Error);  // empty ring: Pop blocks, then aborts
  setter.join();
}

}  // namespace
}  // namespace fgpar::native
