// Fuzz-style smoke tests for the frontend: malformed kernel sources must
// surface as structured diagnostics (ParseError with a source location, or a
// validation fgpar::Error), never as a crash, a raw std:: exception, or a
// stack overflow.  The corpus is derived deterministically from the 18
// Sequoia kernel sources: truncated prefixes plus single-byte mutations.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "kernels/sequoia.hpp"
#include "support/error.hpp"

namespace fgpar {
namespace {

// splitmix64: tiny deterministic generator so corpus contents are stable
// across platforms and standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

 private:
  std::uint64_t state_;
};

// Feeds one source through the parser and checks the only observable
// outcomes are success or a structured fgpar diagnostic.
void ExpectStructuredOutcome(const std::string& source,
                             const std::string& what) {
  try {
    (void)frontend::ParseKernel(source);
  } catch (const frontend::ParseError& e) {
    EXPECT_GE(e.line(), 1) << what;
    EXPECT_GE(e.column(), 1) << what;
    EXPECT_FALSE(std::string(e.what()).empty()) << what;
  } catch (const Error& e) {
    // Post-parse validation failure: structured, but no source position.
    EXPECT_FALSE(std::string(e.what()).empty()) << what;
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": escaped non-fgpar exception: " << e.what();
  } catch (...) {
    ADD_FAILURE() << what << ": escaped unknown exception";
  }
}

TEST(FrontendFuzz, TruncatedKernelSourcesAreStructuredErrors) {
  for (const kernels::SequoiaKernel& kernel : kernels::SequoiaKernels()) {
    const std::string& src = kernel.source;
    // Every prefix at a coarse stride, plus the length-0/1 extremes.
    for (std::size_t len = 0; len < src.size(); len += 7) {
      ExpectStructuredOutcome(src.substr(0, len),
                              kernel.id + " truncated to " +
                                  std::to_string(len) + " bytes");
    }
  }
}

TEST(FrontendFuzz, ByteMutatedKernelSourcesAreStructuredErrors) {
  // Mutation alphabet biased toward structurally meaningful bytes; the
  // embedded NUL and 0xFF are appended explicitly (a string literal with a
  // \0 would truncate).
  std::string alphabet = "{}[]();=.,+-*/%&|^<>!@#_0123456789ex \n";
  alphabet.push_back('\0');
  alphabet.push_back('\xff');
  std::uint64_t kernel_index = 0;
  for (const kernels::SequoiaKernel& kernel : kernels::SequoiaKernels()) {
    Rng rng(0xF022EDull + kernel_index++);
    for (int round = 0; round < 64; ++round) {
      std::string mutated = kernel.source;
      const std::size_t pos = rng.Below(mutated.size());
      mutated[pos] = alphabet[rng.Below(alphabet.size())];
      ExpectStructuredOutcome(mutated, kernel.id + " mutated at byte " +
                                           std::to_string(pos) + " round " +
                                           std::to_string(round));
    }
  }
}

TEST(FrontendFuzz, OverflowingFloatLiteralIsAParseError) {
  const std::string src =
      "kernel k { param i64 n; array f64 a[8];\n"
      "  loop i = 0 .. n { a[i] = 1e400; } }";
  EXPECT_THROW((void)frontend::ParseKernel(src), frontend::ParseError);
  ExpectStructuredOutcome(src, "1e400 literal");
}

TEST(FrontendFuzz, OverflowingIntLiteralIsAParseError) {
  const std::string src =
      "kernel k { param i64 n; array i64 a[8];\n"
      "  loop i = 0 .. n { a[i] = 99999999999999999999999; } }";
  EXPECT_THROW((void)frontend::ParseKernel(src), frontend::ParseError);
}

TEST(FrontendFuzz, DeepParenthesisNestingIsBounded) {
  // 4096 levels would overflow the parser's recursion without the depth
  // guard; with it, this must be a ParseError mentioning the limit.
  std::string expr(4096, '(');
  expr += "1";
  expr += std::string(4096, ')');
  const std::string src =
      "kernel k { param i64 n; array i64 a[8];\n"
      "  loop i = 0 .. n { a[i] = " + expr + "; } }";
  try {
    (void)frontend::ParseKernel(src);
    FAIL() << "expected ParseError for 4096-deep parens";
  } catch (const frontend::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"),
              std::string::npos);
  }
}

TEST(FrontendFuzz, DeepUnaryChainIsBounded) {
  const std::string src =
      "kernel k { param i64 n; array i64 a[8];\n"
      "  loop i = 0 .. n { a[i] = " + std::string(4096, '-') + "1; } }";
  try {
    (void)frontend::ParseKernel(src);
    FAIL() << "expected ParseError for 4096-deep unary chain";
  } catch (const frontend::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"),
              std::string::npos);
  }
}

TEST(FrontendFuzz, DeepIfNestingIsBounded) {
  std::string body;
  for (int i = 0; i < 1024; ++i) {
    body += "if (n) { ";
  }
  body += "a[0] = 1; ";
  for (int i = 0; i < 1024; ++i) {
    body += "} ";
  }
  const std::string src =
      "kernel k { param i64 n; array i64 a[8];\n"
      "  loop i = 0 .. n { " + body + "} }";
  try {
    (void)frontend::ParseKernel(src);
    FAIL() << "expected ParseError for 1024-deep if tower";
  } catch (const frontend::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"),
              std::string::npos);
  }
}

TEST(FrontendFuzz, ModerateNestingStillParses) {
  // The guard must not reject reasonable programs: 64 levels is fine.
  std::string expr(64, '(');
  expr += "1";
  expr += std::string(64, ')');
  const std::string src =
      "kernel k { param i64 n; array i64 a[8];\n"
      "  loop i = 0 .. n { a[i] = " + expr + "; } }";
  EXPECT_NO_THROW((void)frontend::ParseKernel(src));
}

TEST(FrontendFuzz, EveryCanonicalKernelStillParses) {
  for (const kernels::SequoiaKernel& kernel : kernels::SequoiaKernels()) {
    EXPECT_NO_THROW((void)kernels::ParseSequoia(kernel)) << kernel.id;
  }
}

}  // namespace
}  // namespace fgpar
