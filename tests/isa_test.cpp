// Unit tests for the ISA: opcode metadata, assembler, program, disassembler.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/opcode.hpp"
#include "isa/program.hpp"
#include "support/error.hpp"

namespace fgpar::isa {
namespace {

TEST(Opcode, EveryOpcodeHasAName) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    EXPECT_FALSE(OpcodeName(static_cast<Opcode>(i)).empty());
  }
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(IsBranch(Opcode::kJmp));
  EXPECT_TRUE(IsBranch(Opcode::kBz));
  EXPECT_FALSE(IsBranch(Opcode::kCall));
  EXPECT_TRUE(IsLoad(Opcode::kLdF));
  EXPECT_TRUE(IsStore(Opcode::kStIX));
  EXPECT_FALSE(IsLoad(Opcode::kStI));
  EXPECT_TRUE(IsQueueOp(Opcode::kEnqI));
  EXPECT_TRUE(IsQueueOp(Opcode::kDeqF));
  EXPECT_TRUE(IsEnqueue(Opcode::kEnqF));
  EXPECT_FALSE(IsEnqueue(Opcode::kDeqF));
  EXPECT_TRUE(IsDequeue(Opcode::kDeqI));
  EXPECT_TRUE(IsFpQueueOp(Opcode::kEnqF));
  EXPECT_FALSE(IsFpQueueOp(Opcode::kEnqI));
}

TEST(Assembler, ResolvesForwardBranch) {
  Assembler a;
  Label skip = a.NewLabel();
  a.LiI(Gpr{1}, 5);
  a.Jmp(skip);
  a.LiI(Gpr{1}, 7);  // skipped
  a.Bind(skip);
  a.Halt();
  Program p = a.Finish();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(1).op, Opcode::kJmp);
  EXPECT_EQ(p.at(1).imm, 3);
}

TEST(Assembler, ResolvesBackwardBranch) {
  Assembler a;
  Label top = a.NewLabel();
  a.Bind(top);
  a.SubI(Gpr{1}, Gpr{1}, Gpr{2});
  a.Bnz(Gpr{1}, top);
  a.Halt();
  Program p = a.Finish();
  EXPECT_EQ(p.at(1).imm, 0);
}

TEST(Assembler, NamedLabelsBecomeSymbols) {
  Assembler a;
  Label main = a.NewNamedLabel("main");
  Label f2 = a.NewNamedLabel("F2");
  a.Bind(main);
  a.Halt();
  a.Bind(f2);
  a.Ret();
  Program p = a.Finish();
  EXPECT_EQ(p.EntryOf("main"), 0);
  EXPECT_EQ(p.EntryOf("F2"), 1);
  EXPECT_TRUE(p.HasSymbol("F2"));
  EXPECT_FALSE(p.HasSymbol("F3"));
  EXPECT_THROW(p.EntryOf("F3"), Error);
}

TEST(Assembler, DuplicateNamedLabelThrows) {
  Assembler a;
  a.NewNamedLabel("x");
  EXPECT_THROW(a.NewNamedLabel("x"), Error);
}

TEST(Assembler, UnboundLabelReferenceThrows) {
  Assembler a;
  Label never = a.NewLabel();
  a.Jmp(never);
  EXPECT_THROW(a.Finish(), Error);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a;
  Label l = a.NewLabel();
  a.Bind(l);
  EXPECT_THROW(a.Bind(l), Error);
}

TEST(Assembler, LiLabelLoadsEntryPc) {
  Assembler a;
  Label fn = a.NewNamedLabel("fn");
  a.LiLabel(Gpr{3}, fn);
  a.Halt();
  a.Bind(fn);
  a.Ret();
  Program p = a.Finish();
  EXPECT_EQ(p.at(0).op, Opcode::kLiI);
  EXPECT_EQ(p.at(0).imm, p.EntryOf("fn"));
}

TEST(Assembler, QueueOperandEncoding) {
  Assembler a;
  a.EnqI(2, Gpr{5});
  a.DeqI(1, Gpr{6});
  a.EnqF(3, Fpr{7});
  a.DeqF(0, Fpr{8});
  a.Halt();
  Program p = a.Finish();
  EXPECT_EQ(p.at(0).queue, 2);
  EXPECT_EQ(p.at(0).src1, 5);
  EXPECT_EQ(p.at(1).queue, 1);
  EXPECT_EQ(p.at(1).dst, 6);
  EXPECT_EQ(p.at(2).queue, 3);
  EXPECT_EQ(p.at(2).src1, 7);
  EXPECT_EQ(p.at(3).queue, 0);
  EXPECT_EQ(p.at(3).dst, 8);
}

TEST(Assembler, CommentsAttachToNextInstruction) {
  Assembler a;
  a.Comment("set up accumulator");
  a.LiF(Fpr{0}, 0.0);
  a.Halt();
  Program p = a.Finish();
  EXPECT_EQ(p.CommentAt(0), "set up accumulator");
  EXPECT_EQ(p.CommentAt(1), "");
}

TEST(Program, PcOutOfRangeThrows) {
  Assembler a;
  a.Halt();
  Program p = a.Finish();
  EXPECT_THROW(p.at(5), Error);
  EXPECT_THROW(p.at(-1), Error);
}

TEST(Disasm, RendersRepresentativeShapes) {
  Assembler a;
  a.AddF(Fpr{3}, Fpr{1}, Fpr{2});
  a.LiI(Gpr{4}, -17);
  a.LdFX(Fpr{0}, Gpr{1}, Gpr{2});
  a.StI(Gpr{9}, Gpr{8}, 12);
  a.EnqF(1, Fpr{6});
  a.Halt();
  Program p = a.Finish();
  EXPECT_EQ(Disassemble(p.at(0)), "addf f3, f1, f2");
  EXPECT_EQ(Disassemble(p.at(1)), "lii r4, -17");
  EXPECT_EQ(Disassemble(p.at(2)), "ldfx f0, [r1 + r2]");
  EXPECT_EQ(Disassemble(p.at(3)), "sti [r8 + 12], r9");
  EXPECT_EQ(Disassemble(p.at(4)), "enqf q1, f6");
}

TEST(Disasm, ProgramListingIncludesSymbolsAndComments) {
  Assembler a;
  Label f = a.NewNamedLabel("F1");
  a.Comment("entry");
  a.Bind(f);
  a.Halt();
  Program p = a.Finish();
  const std::string listing = DisassembleProgram(p);
  EXPECT_NE(listing.find("F1:"), std::string::npos);
  EXPECT_NE(listing.find("; entry"), std::string::npos);
}

}  // namespace
}  // namespace fgpar::isa
