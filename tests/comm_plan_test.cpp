// Unit tests for the communication planner, per-core plan builder, and the
// static pairing checker (Sections III-D through III-G).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "analysis/index.hpp"
#include "compiler/check.hpp"
#include "compiler/comm.hpp"
#include "compiler/partition.hpp"
#include "compiler/plan.hpp"
#include "frontend/parser.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

struct Pipeline {
  ir::Kernel kernel;
  PartitionResult partition;
  std::unique_ptr<analysis::KernelIndex> index;
  CommPlan comm;

  explicit Pipeline(const char* source, int cores)
      : kernel(frontend::ParseKernel(source)),
        partition([&] {
          CompileOptions options;
          options.num_cores = cores;
          return PartitionKernel(kernel, options, nullptr);
        }()) {
    index = std::make_unique<analysis::KernelIndex>(partition.kernel);
    comm = BuildCommPlan(*index, partition);
  }
};

constexpr const char* kTwoChains = R"(
kernel chains {
  param i64 n;
  param f64 c;
  array f64 a[32];
  array f64 o1[32];
  array f64 o2[32];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. n {
    f64 t1 = a[i] * c + 1.0;
    f64 t2 = t1 * t1 - a[i];
    o1[i] = t2;
    o2[i] = sqrt(abs(t1)) * 2.0;
    sum = sum + t1;
  }
  after {
    out = sum;
  }
}
)";

TEST(Comm, TransfersHaveValidEndpoints) {
  Pipeline p(kTwoChains, 4);
  const int cores = static_cast<int>(p.partition.partitions.size());
  for (const Transfer& t : p.comm.transfers) {
    EXPECT_GE(t.src_core, 0);
    EXPECT_LT(t.src_core, cores);
    EXPECT_GE(t.dst_core, 0);
    EXPECT_LT(t.dst_core, cores);
    EXPECT_NE(t.src_core, t.dst_core);
    // Producer statement really is owned by the source core.
    EXPECT_EQ(p.partition.core_of.at(t.producer_stmt), t.src_core);
  }
}

TEST(Comm, AtMostOneTransferPerTempAndDestination) {
  Pipeline p(kTwoChains, 4);
  std::set<std::pair<ir::TempId, int>> seen;
  for (const Transfer& t : p.comm.transfers) {
    EXPECT_TRUE(seen.insert({t.temp, t.dst_core}).second)
        << "duplicate transfer of temp " << t.temp << " to core " << t.dst_core;
  }
}

TEST(Comm, CarriedTempsNeverTransferPerIteration) {
  Pipeline p(kTwoChains, 4);
  for (const Transfer& t : p.comm.transfers) {
    EXPECT_FALSE(p.partition.kernel.temp(t.temp).carried)
        << "carried temp crossed cores per-iteration";
  }
}

TEST(Comm, LiveOutForEpilogueConsumedTemp) {
  Pipeline p(kTwoChains, 4);
  // "sum" is read by the epilogue; if its defs landed off the primary, a
  // live-out must exist; either way the epilogue's input is reachable.
  const auto& defs = p.index->DefsOf(/*sum=*/0);
  ASSERT_FALSE(defs.empty());
  const int def_core = p.partition.core_of.at(defs.front());
  bool has_live_out = false;
  for (const LiveOut& lo : p.comm.live_outs) {
    has_live_out |= lo.temp == 0 && lo.src_core == def_core;
  }
  EXPECT_EQ(has_live_out, def_core != 0);
}

TEST(Comm, SecondaryArgsCoverLoopBounds) {
  Pipeline p(kTwoChains, 4);
  // Every secondary core needs "n" (the loop bound param, symbol 0).
  for (int c = 1; c < static_cast<int>(p.partition.partitions.size()); ++c) {
    const auto it = p.comm.args.find(c);
    ASSERT_NE(it, p.comm.args.end());
    EXPECT_TRUE(std::find(it->second.begin(), it->second.end(), 0) !=
                it->second.end());
    // Ascending symbol-id order (the queue-FIFO contract with the primary).
    EXPECT_TRUE(std::is_sorted(it->second.begin(), it->second.end()));
  }
}

TEST(Comm, ReplicatedIfsCoverOwnedGuardedStmts) {
  Pipeline p(R"(
kernel guarded {
  param i64 n;
  array f64 a[32];
  array f64 o[32];
  array f64 q[32];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0;
    f64 w = a[i] + 3.0;
    if (v < 1.5) {
      o[i] = v + w;
      q[i] = v - w;
    }
  }
}
)",
             3);
  for (const auto& [stmt_id, core] : p.partition.core_of) {
    const analysis::StmtEntry& entry = p.index->ByStmtId(stmt_id);
    for (const analysis::PathStep& step : entry.path) {
      const auto& replicated = p.comm.replicated_ifs.at(core);
      EXPECT_TRUE(std::find(replicated.begin(), replicated.end(), step.if_stmt) !=
                  replicated.end())
          << "core " << core << " owns s" << stmt_id
          << " but does not replicate if s" << step.if_stmt;
    }
  }
}

// ---- plan construction ----

int CountItems(const std::vector<PlanItem>& items, PlanItem::Kind kind) {
  int count = 0;
  for (const PlanItem& item : items) {
    count += item.kind == kind ? 1 : 0;
    if (item.kind == PlanItem::Kind::kIf) {
      count += CountItems(item.then_items, kind);
      count += CountItems(item.else_items, kind);
    }
  }
  return count;
}

TEST(Plan, EveryTransferAppearsExactlyOncePerSide) {
  Pipeline p(kTwoChains, 4);
  ProgramPlan plan = BuildProgramPlan(*p.index, p.partition, p.comm);
  int enqs = 0;
  int deqs = 0;
  for (const CorePlan& core : plan.cores) {
    enqs += CountItems(core.body, PlanItem::Kind::kEnq);
    deqs += CountItems(core.body, PlanItem::Kind::kDeq);
  }
  EXPECT_EQ(enqs, static_cast<int>(plan.comm.transfers.size()));
  EXPECT_EQ(deqs, static_cast<int>(plan.comm.transfers.size()));
}

TEST(Plan, OwnedStatementsAllPlaced) {
  Pipeline p(kTwoChains, 4);
  ProgramPlan plan = BuildProgramPlan(*p.index, p.partition, p.comm);
  int stmts = 0;
  for (const CorePlan& core : plan.cores) {
    stmts += CountItems(core.body, PlanItem::Kind::kStmt);
  }
  EXPECT_EQ(stmts, static_cast<int>(p.partition.core_of.size()));
}

TEST(Plan, PairingCheckAcceptsBuiltPlans) {
  for (int cores : {2, 3, 4}) {
    Pipeline p(kTwoChains, cores);
    ProgramPlan plan = BuildProgramPlan(*p.index, p.partition, p.comm);
    EXPECT_NO_THROW(CheckCommunicationPairing(p.partition.kernel, plan));
  }
}

// ---- the checker itself ----

TEST(Check, DetectsMissingDequeue) {
  Pipeline p(kTwoChains, 2);
  ProgramPlan plan = BuildProgramPlan(*p.index, p.partition, p.comm);
  // Remove one dequeue item somewhere.
  bool removed = false;
  for (CorePlan& core : plan.cores) {
    for (std::size_t i = 0; i < core.body.size(); ++i) {
      if (core.body[i].kind == PlanItem::Kind::kDeq) {
        core.body.erase(core.body.begin() + static_cast<std::ptrdiff_t>(i));
        removed = true;
        break;
      }
    }
    if (removed) {
      break;
    }
  }
  ASSERT_TRUE(removed);
  EXPECT_THROW(CheckCommunicationPairing(p.partition.kernel, plan), Error);
}

TEST(Check, DetectsReorderedDequeues) {
  // Hand-built plan: core 0 enqueues transfers 0 then 1 to core 1 on the
  // same (source, class) queue; core 1 dequeues them in the wrong order.
  ir::Kernel kernel = frontend::ParseKernel(R"(
kernel tiny {
  array f64 o[4];
  loop i = 0 .. 4 {
    o[i] = 1.0;
  }
}
)");
  ProgramPlan plan;
  Transfer t0;
  t0.id = 0;
  t0.temp = 0;
  t0.type = ir::ScalarType::kF64;
  t0.src_core = 0;
  t0.dst_core = 1;
  Transfer t1 = t0;
  t1.id = 1;
  t1.temp = 1;
  plan.comm.transfers = {t0, t1};

  CorePlan sender;
  sender.core = 0;
  PlanItem enq0;
  enq0.kind = PlanItem::Kind::kEnq;
  enq0.transfer = 0;
  PlanItem enq1 = enq0;
  enq1.transfer = 1;
  sender.body = {enq0, enq1};

  CorePlan receiver;
  receiver.core = 1;
  PlanItem deq0;
  deq0.kind = PlanItem::Kind::kDeq;
  deq0.transfer = 0;
  PlanItem deq1 = deq0;
  deq1.transfer = 1;
  receiver.body = {deq1, deq0};  // wrong order

  plan.cores = {sender, receiver};
  EXPECT_THROW(CheckCommunicationPairing(kernel, plan), Error);

  // The corrected order passes.
  plan.cores[1].body = {deq0, deq1};
  EXPECT_NO_THROW(CheckCommunicationPairing(kernel, plan));
}

TEST(Check, DetectsEnqueueUnderWrongBranch) {
  Pipeline p(R"(
kernel wrongbranch {
  param i64 n;
  array f64 a[32];
  array f64 o1[32];
  array f64 o2[32];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0;
    f64 w = sqrt(abs(v)) + a[i];
    if (v < 1.5) {
      o1[i] = w * 2.0;
    } else {
      o2[i] = w * 3.0;
    }
  }
}
)",
             2);
  ProgramPlan plan = BuildProgramPlan(*p.index, p.partition, p.comm);
  // Move a top-level enqueue into an if's then-branch: pairing must break
  // (the matching dequeue still executes on both paths).
  for (CorePlan& core : plan.cores) {
    std::size_t enq_pos = core.body.size();
    std::size_t if_pos = core.body.size();
    for (std::size_t i = 0; i < core.body.size(); ++i) {
      if (core.body[i].kind == PlanItem::Kind::kEnq && enq_pos == core.body.size()) {
        enq_pos = i;
      }
      if (core.body[i].kind == PlanItem::Kind::kIf && if_pos == core.body.size()) {
        if_pos = i;
      }
    }
    if (enq_pos < core.body.size() && if_pos < core.body.size()) {
      PlanItem enq = core.body[enq_pos];
      core.body.erase(core.body.begin() + static_cast<std::ptrdiff_t>(enq_pos));
      if (if_pos > enq_pos) {
        --if_pos;
      }
      core.body[if_pos].then_items.push_back(enq);
      EXPECT_THROW(CheckCommunicationPairing(p.partition.kernel, plan), Error);
      return;
    }
  }
  GTEST_SKIP() << "no suitable enqueue/if pair in this plan";
}

// ---- the capacity-deadlock checker ----

// Builds a 2-core plan where each core enqueues `burst` transfers to the
// other and then dequeues the other's burst.  Paired (every enq has a
// matching in-order deq) but wedges when capacity < burst: both senders
// fill their outgoing queue and block before reaching their dequeues.
ProgramPlan BurstExchangePlan(int burst, ir::ScalarType type) {
  ProgramPlan plan;
  CorePlan core0;
  core0.core = 0;
  CorePlan core1;
  core1.core = 1;
  int next_id = 0;
  std::vector<PlanItem> deqs0;
  std::vector<PlanItem> deqs1;
  const auto add_pair = [&](int src, int dst, CorePlan& sender,
                            std::vector<PlanItem>& receiver_deqs) {
    Transfer t;
    t.id = next_id;
    t.temp = next_id;
    t.type = type;
    t.src_core = src;
    t.dst_core = dst;
    ++next_id;
    plan.comm.transfers.push_back(t);
    PlanItem enq;
    enq.kind = PlanItem::Kind::kEnq;
    enq.transfer = t.id;
    PlanItem deq;
    deq.kind = PlanItem::Kind::kDeq;
    deq.transfer = t.id;
    sender.body.push_back(enq);
    receiver_deqs.push_back(deq);
  };
  for (int i = 0; i < burst; ++i) {
    add_pair(0, 1, core0, deqs1);
  }
  for (int i = 0; i < burst; ++i) {
    add_pair(1, 0, core1, deqs0);
  }
  // Each core's body is [its whole enqueue burst..., then its dequeues]:
  // both senders must finish their burst before either drains the other's.
  core0.body.insert(core0.body.end(), deqs0.begin(), deqs0.end());
  core1.body.insert(core1.body.end(), deqs1.begin(), deqs1.end());
  plan.cores = {core0, core1};
  return plan;
}

TEST(Capacity, CyclicWaitRejectedBelowRequiredCapacity) {
  const ProgramPlan plan = BurstExchangePlan(2, ir::ScalarType::kI64);
  EXPECT_EQ(RequiredQueueCapacity(plan), 2);
  EXPECT_NO_THROW(CheckQueueCapacity(plan, 2));
  EXPECT_NO_THROW(CheckQueueCapacity(plan, 20));
  try {
    CheckQueueCapacity(plan, 1);
    FAIL() << "capacity-1 deadlock not detected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("queue capacity deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("requires capacity >= 2"), std::string::npos) << msg;
    // The diagnostic names the blocked cores, direction, and register class.
    EXPECT_NE(msg.find("core 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("int queue 0->1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("int queue 1->0"), std::string::npos) << msg;
  }
}

TEST(Capacity, FpQueuesNamedInDiagnostic) {
  const ProgramPlan plan = BurstExchangePlan(3, ir::ScalarType::kF64);
  EXPECT_EQ(RequiredQueueCapacity(plan), 3);
  try {
    CheckQueueCapacity(plan, 2);
    FAIL() << "capacity-2 deadlock not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fp queue 0->1"), std::string::npos)
        << e.what();
  }
}

TEST(Capacity, OrderingDeadlockHasNoFiniteCapacity) {
  // Both cores dequeue before enqueuing: paired in sequence, but no slot
  // count can break the wait cycle.
  ProgramPlan plan = BurstExchangePlan(1, ir::ScalarType::kI64);
  for (CorePlan& core : plan.cores) {
    std::swap(core.body[0], core.body[1]);  // [enq, deq] -> [deq, enq]
  }
  EXPECT_EQ(RequiredQueueCapacity(plan), -1);
  try {
    CheckQueueCapacity(plan, 20);
    FAIL() << "ordering deadlock not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no finite capacity suffices"),
              std::string::npos)
        << e.what();
  }
}

TEST(Capacity, ZeroCapacityDisablesCheck) {
  const ProgramPlan plan = BurstExchangePlan(2, ir::ScalarType::kI64);
  EXPECT_NO_THROW(CheckQueueCapacity(plan, 0));
  EXPECT_NO_THROW(CheckQueueCapacity(plan, -1));
}

TEST(Capacity, BuiltPlansPassAtPaperCapacity) {
  for (int cores : {2, 3, 4}) {
    Pipeline p(kTwoChains, cores);
    ProgramPlan plan = BuildProgramPlan(*p.index, p.partition, p.comm);
    EXPECT_NO_THROW(CheckQueueCapacity(plan, 20));
    const int required = RequiredQueueCapacity(plan);
    EXPECT_GE(required, 1);
    EXPECT_LE(required, 20);
  }
}

TEST(Capacity, BranchMaskNamedWhenDeadlockIsConditional) {
  // The deadlocking burst only happens on the taken path of an if, so the
  // diagnostic must point at a specific branch mask.
  ProgramPlan plan = BurstExchangePlan(2, ir::ScalarType::kI64);
  const ir::Kernel kernel = frontend::ParseKernel(R"(
kernel masked {
  param i64 n;
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. n {
    f64 v = a[i];
    if (v < 1.0) {
      o[i] = v;
    }
  }
}
)");
  const ir::Stmt* if_stmt = nullptr;
  for (const ir::Stmt& stmt : kernel.loop().body) {
    if (stmt.kind == ir::StmtKind::kIf) {
      if_stmt = &stmt;
    }
  }
  ASSERT_NE(if_stmt, nullptr);
  for (CorePlan& core : plan.cores) {
    PlanItem wrapped;
    wrapped.kind = PlanItem::Kind::kIf;
    wrapped.stmt = if_stmt;
    wrapped.then_items = std::move(core.body);
    core.body = {wrapped};
  }
  EXPECT_NO_THROW(CheckQueueCapacity(plan, 2));
  try {
    CheckQueueCapacity(plan, 1);
    FAIL() << "conditional capacity deadlock not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("branch mask 1"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace fgpar::compiler
