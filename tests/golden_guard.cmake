# Golden-output guard, run as a ctest entry (cmake -P).
#
# Runs COMMAND and byte-compares its stdout against GOLDEN.  Optionally
# points FGPAR_BENCH_DIR at a scratch directory (BENCH_DIR) with
# FGPAR_BENCH_DETERMINISTIC=1 and FGPAR_SWEEP_THREADS=2 set, then
# byte-compares each produced artifact named in ARTIFACTS
# ("<file>=<golden>" pairs, <file> relative to BENCH_DIR).
#
# These tests are the refactoring safety net: the goldens were captured
# from the pre-pass-manager pipeline, so a pass reordering or codegen
# change that alters a single byte of compiler output fails here even if
# the result still verifies against the reference interpreter.
#
# WORKDIR (optional) runs COMMAND from that directory, so commands can
# name output files with build-dir-independent relative paths (used by the
# golden trace guard, whose stdout echoes the trace path).
#
# Usage:
#   cmake -DCOMMAND="<exe> <arg>..." -DGOLDEN=<file>
#         [-DBENCH_DIR=<dir>] [-DWORKDIR=<dir>]
#         [-DARTIFACTS="a.json=golden_a.json;..."]
#         -P golden_guard.cmake

if(NOT DEFINED COMMAND OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "golden_guard.cmake requires -DCOMMAND and -DGOLDEN")
endif()

if(DEFINED BENCH_DIR)
  file(MAKE_DIRECTORY "${BENCH_DIR}")
  set(ENV{FGPAR_BENCH_DIR} "${BENCH_DIR}")
  set(ENV{FGPAR_BENCH_DETERMINISTIC} "1")
  set(ENV{FGPAR_SWEEP_THREADS} "2")
endif()

separate_arguments(command_list UNIX_COMMAND "${COMMAND}")
set(workdir_args "")
if(DEFINED WORKDIR)
  file(MAKE_DIRECTORY "${WORKDIR}")
  set(workdir_args WORKING_DIRECTORY "${WORKDIR}")
endif()
execute_process(
  COMMAND ${command_list}
  ${workdir_args}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE stderr_text
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "command failed (${status}): ${COMMAND}\n${stderr_text}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  set(actual_path "${GOLDEN}.actual")
  if(DEFINED BENCH_DIR)
    get_filename_component(golden_name "${GOLDEN}" NAME)
    set(actual_path "${BENCH_DIR}/${golden_name}.actual")
  endif()
  file(WRITE "${actual_path}" "${actual}")
  message(FATAL_ERROR
    "stdout differs from golden ${GOLDEN}\n"
    "actual output written to ${actual_path}\n"
    "If the change is intended, re-capture the golden and say why in the "
    "commit message.")
endif()

if(DEFINED ARTIFACTS)
  foreach(pair IN LISTS ARTIFACTS)
    string(FIND "${pair}" "=" sep)
    string(SUBSTRING "${pair}" 0 ${sep} produced)
    math(EXPR after "${sep} + 1")
    string(SUBSTRING "${pair}" ${after} -1 golden_artifact)
    file(READ "${BENCH_DIR}/${produced}" actual_artifact)
    file(READ "${golden_artifact}" expected_artifact)
    if(NOT actual_artifact STREQUAL expected_artifact)
      message(FATAL_ERROR
        "artifact ${BENCH_DIR}/${produced} differs from golden "
        "${golden_artifact}")
    endif()
  endforeach()
endif()
