// Property tests of the simulator's functional semantics, independent of
// the compiler: random straight-line instruction sequences are executed on
// the machine and compared register-for-register against a direct C++
// reference model of the ISA.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Fpr;
using isa::Gpr;

/// Reference architectural state updated alongside program generation.
struct RefState {
  std::array<std::int64_t, 16> g{};
  std::array<double, 16> f{};
};

/// Generates one random instruction, emits it, and applies it to `ref`.
/// Returns false if the draw was discarded (e.g. division by zero risk).
bool EmitRandom(Rng& rng, Assembler& a, RefState& ref) {
  const auto gr = [&](int lo = 0) {
    return static_cast<std::uint8_t>(rng.NextInt(lo, 15));
  };
  // Destinations avoid r0/f0 so a couple of stable values always exist.
  const std::uint8_t d = gr(1);
  const std::uint8_t s1 = gr();
  const std::uint8_t s2 = gr();
  switch (rng.NextBelow(18)) {
    case 0:
      a.AddI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = static_cast<std::int64_t>(static_cast<std::uint64_t>(ref.g[s1]) +
                                           static_cast<std::uint64_t>(ref.g[s2]));
      return true;
    case 1:
      a.SubI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = static_cast<std::int64_t>(static_cast<std::uint64_t>(ref.g[s1]) -
                                           static_cast<std::uint64_t>(ref.g[s2]));
      return true;
    case 2:
      a.MulI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = static_cast<std::int64_t>(static_cast<std::uint64_t>(ref.g[s1]) *
                                           static_cast<std::uint64_t>(ref.g[s2]));
      return true;
    case 3:
      if (ref.g[s2] == 0 || (ref.g[s1] == INT64_MIN && ref.g[s2] == -1)) {
        return false;
      }
      a.DivI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = ref.g[s1] / ref.g[s2];
      return true;
    case 4:
      a.AndI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = ref.g[s1] & ref.g[s2];
      return true;
    case 5:
      a.XorI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = ref.g[s1] ^ ref.g[s2];
      return true;
    case 6:
      a.ShlI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(ref.g[s1]) << (ref.g[s2] & 63));
      return true;
    case 7:
      a.ShrI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = ref.g[s1] >> (ref.g[s2] & 63);
      return true;
    case 8:
      a.CltI(Gpr{d}, Gpr{s1}, Gpr{s2});
      ref.g[d] = ref.g[s1] < ref.g[s2] ? 1 : 0;
      return true;
    case 9: {
      const std::int64_t imm = rng.NextInt(-1000, 1000);
      a.LiI(Gpr{d}, imm);
      ref.g[d] = imm;
      return true;
    }
    case 10:
      a.AddF(Fpr{d}, Fpr{s1}, Fpr{s2});
      ref.f[d] = ref.f[s1] + ref.f[s2];
      return true;
    case 11:
      a.SubF(Fpr{d}, Fpr{s1}, Fpr{s2});
      ref.f[d] = ref.f[s1] - ref.f[s2];
      return true;
    case 12:
      a.MulF(Fpr{d}, Fpr{s1}, Fpr{s2});
      ref.f[d] = ref.f[s1] * ref.f[s2];
      return true;
    case 13:
      a.DivF(Fpr{d}, Fpr{s1}, Fpr{s2});
      ref.f[d] = ref.f[s1] / ref.f[s2];
      return true;
    case 14:
      a.SqrtF(Fpr{d}, Fpr{s1});
      ref.f[d] = std::sqrt(ref.f[s1]);
      return true;
    case 15:
      a.MinF(Fpr{d}, Fpr{s1}, Fpr{s2});
      ref.f[d] = std::fmin(ref.f[s1], ref.f[s2]);
      return true;
    case 16:
      a.ItoF(Fpr{d}, Gpr{s1});
      ref.f[d] = static_cast<double>(ref.g[s1]);
      return true;
    case 17:
      a.CltF(Gpr{d}, Fpr{s1}, Fpr{s2});
      ref.g[d] = ref.f[s1] < ref.f[s2] ? 1 : 0;
      return true;
  }
  return false;
}

class IsaSemanticsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsaSemanticsProperty, MachineMatchesReferenceModel) {
  Rng rng(GetParam());
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  RefState ref;
  // Seed registers with known values.
  for (int r = 0; r < 16; ++r) {
    const std::int64_t iv = rng.NextInt(-50, 50);
    const double fv = rng.NextDouble(0.25, 4.0);
    a.LiI(Gpr{static_cast<std::uint8_t>(r)}, iv);
    a.LiF(Fpr{static_cast<std::uint8_t>(r)}, fv);
    ref.g[static_cast<std::size_t>(r)] = iv;
    ref.f[static_cast<std::size_t>(r)] = fv;
  }
  int emitted = 0;
  while (emitted < 300) {
    emitted += EmitRandom(rng, a, ref) ? 1 : 0;
  }
  a.Halt();

  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  machine.StartCoreAt(0, "main");
  machine.Run();

  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(machine.core(0).gpr(r), ref.g[static_cast<std::size_t>(r)])
        << "gpr " << r << " (seed " << GetParam() << ")";
    const double expected = ref.f[static_cast<std::size_t>(r)];
    const double actual = machine.core(0).fpr(r);
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(actual)) << "fpr " << r;
    } else {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(actual),
                std::bit_cast<std::uint64_t>(expected))
          << "fpr " << r << " (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaSemanticsProperty,
                         ::testing::Range<std::uint64_t>(1000, 1020));

// Timing sanity property: total cycles are at least the instruction count
// (single issue) and monotone in added work.
TEST(IsaTiming, CyclesBoundedBelowByInstructions) {
  Rng rng(4242);
  Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  RefState ref;
  for (int r = 0; r < 16; ++r) {
    a.LiI(Gpr{static_cast<std::uint8_t>(r)}, rng.NextInt(1, 9));
    a.LiF(Fpr{static_cast<std::uint8_t>(r)}, rng.NextDouble(0.5, 2.0));
    ref.g[static_cast<std::size_t>(r)] = 0;  // unused here
  }
  int emitted = 0;
  while (emitted < 200) {
    emitted += EmitRandom(rng, a, ref) ? 1 : 0;
  }
  a.Halt();
  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;
  Machine machine(config, a.Finish());
  machine.StartCoreAt(0, "main");
  const RunResult result = machine.Run();
  EXPECT_GE(result.cycles + 1, result.instructions);
}

}  // namespace
}  // namespace fgpar::sim
