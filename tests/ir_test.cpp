// Tests for the IR: builder, validator, printer, interpreter.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/error.hpp"

namespace fgpar::ir {
namespace {

// Builds: y[i] = alpha * x[i] + y[i] over [0, n)
Kernel BuildAxpy(std::int64_t size) {
  KernelBuilder kb("axpy");
  Val alpha = kb.ParamF64("alpha");
  Val n = kb.ParamI64("n");
  ArrayHandle x = kb.ArrayF64("x", size);
  ArrayHandle y = kb.ArrayF64("y", size);
  kb.StartLoop("i", kb.ConstI(0), n);
  kb.Store(y, kb.Iv(), alpha * kb.Load(x, kb.Iv()) + kb.Load(y, kb.Iv()));
  return kb.Finish();
}

TEST(Builder, TypesArePropagated) {
  KernelBuilder kb("t");
  Val a = kb.ConstF(1.0);
  Val b = kb.ConstI(2);
  EXPECT_EQ(a.type(), ScalarType::kF64);
  EXPECT_EQ(b.type(), ScalarType::kI64);
  EXPECT_EQ((a + a).type(), ScalarType::kF64);
  EXPECT_EQ((a < a).type(), ScalarType::kI64);  // comparisons are i64
  EXPECT_EQ(kb.ToF64(b).type(), ScalarType::kF64);
  EXPECT_EQ(kb.ToI64(a).type(), ScalarType::kI64);
  EXPECT_EQ(kb.ToF64(a).id(), a.id());  // no-op cast is elided
}

TEST(Builder, MixedTypeArithmeticRejected) {
  KernelBuilder kb("t");
  Val a = kb.ConstF(1.0);
  Val b = kb.ConstI(2);
  EXPECT_THROW(a + b, Error);
}

TEST(Builder, IntOnlyOperatorsRejectF64) {
  KernelBuilder kb("t");
  Val a = kb.ConstF(1.0);
  EXPECT_THROW(a % a, Error);
  EXPECT_THROW(a & a, Error);
  EXPECT_THROW(kb.ConstF(1.0) << kb.ConstF(2.0), Error);
}

TEST(Builder, SqrtRequiresF64) {
  KernelBuilder kb("t");
  EXPECT_THROW(kb.Sqrt(kb.ConstI(4)), Error);
}

TEST(Builder, DuplicateNamesRejected) {
  KernelBuilder kb("t");
  kb.ParamF64("x");
  EXPECT_THROW(kb.ArrayF64("x", 8), Error);
  EXPECT_THROW(kb.DeclTemp("x", ScalarType::kF64), Error);
}

TEST(Builder, StatementsOutsideLoopRejected) {
  KernelBuilder kb("t");
  ArrayHandle a = kb.ArrayF64("a", 8);
  EXPECT_THROW(kb.Store(a, kb.ConstI(0), kb.ConstF(1.0)), Error);
}

TEST(Builder, StoreTypeMismatchRejected) {
  KernelBuilder kb("t");
  ArrayHandle a = kb.ArrayF64("a", 8);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  EXPECT_THROW(kb.Store(a, kb.Iv(), kb.ConstI(1)), Error);
}

TEST(Builder, FinishedKernelValidates) {
  Kernel k = BuildAxpy(16);
  EXPECT_TRUE(ValidateKernel(k).empty());
  EXPECT_EQ(k.name(), "axpy");
  EXPECT_EQ(k.loop().body.size(), 1u);
}

TEST(Validate, DoubleAssignmentOfPlainTempCaught) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kF64);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.Assign(t, kb.ConstF(1.0));
  kb.Assign(t, kb.ConstF(2.0));
  Kernel k = kb.Finish();
  const auto problems = ValidateKernel(k);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("more than once"), std::string::npos);
}

TEST(Validate, CarriedTempMayBeReassigned) {
  KernelBuilder kb("t");
  TempHandle sum = kb.DeclCarriedF64("sum", 0.0);
  ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.Assign(sum, kb.Read(sum) + kb.ConstF(1.0));
  kb.EndLoop();
  kb.StoreScalar(out, kb.Read(sum));
  Kernel k = kb.Finish();
  EXPECT_TRUE(ValidateKernel(k).empty());
}

TEST(Validate, UseBeforeDefCaught) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kF64);
  ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.StoreScalar(out, kb.Read(t));  // use
  kb.Assign(t, kb.ConstF(1.0));     // def after use
  Kernel k = kb.Finish();
  EXPECT_FALSE(ValidateKernel(k).empty());
}

TEST(Validate, UseOutsideDefiningBranchCaught) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kF64);
  ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.If(kb.Iv() < kb.ConstI(2), [&] { kb.Assign(t, kb.ConstF(1.0)); });
  kb.StoreScalar(out, kb.Read(t));  // not dominated
  Kernel k = kb.Finish();
  EXPECT_FALSE(ValidateKernel(k).empty());
}

TEST(Validate, UseInsideSameBranchAllowed) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kF64);
  ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.If(kb.Iv() < kb.ConstI(2), [&] {
    kb.Assign(t, kb.ConstF(1.0));
    kb.StoreScalar(out, kb.Read(t));
  });
  Kernel k = kb.Finish();
  EXPECT_TRUE(ValidateKernel(k).empty());
}

TEST(Validate, NestedBranchUseDominatedByOuterDefAllowed) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kF64);
  ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.Assign(t, kb.ConstF(1.0));
  kb.If(kb.Iv() < kb.ConstI(2), [&] {
    kb.If(kb.Iv() < kb.ConstI(1), [&] { kb.StoreScalar(out, kb.Read(t)); });
  });
  Kernel k = kb.Finish();
  EXPECT_TRUE(ValidateKernel(k).empty());
}

TEST(Validate, LoopBoundsMayNotReferenceTemps) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kI64);
  kb.StartLoop("i", kb.ConstI(0), kb.Read(t));
  kb.Assign(t, kb.ConstI(3));
  Kernel k = kb.Finish();
  EXPECT_FALSE(ValidateKernel(k).empty());
}

TEST(Validate, EpilogueMayNotUseInductionVariable) {
  KernelBuilder kb("t");
  ScalarHandle out = kb.ScalarI64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.StoreScalar(out, kb.ConstI(1));
  kb.EndLoop();
  kb.StoreScalar(out, kb.Iv());
  Kernel k = kb.Finish();
  EXPECT_FALSE(ValidateKernel(k).empty());
}

TEST(Validate, EpilogueMayNotReadConditionalTemp) {
  KernelBuilder kb("t");
  TempHandle t = kb.DeclTemp("tmp", ScalarType::kF64);
  ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.If(kb.Iv() < kb.ConstI(2), [&] { kb.Assign(t, kb.ConstF(1.0)); });
  kb.EndLoop();
  kb.StoreScalar(out, kb.Read(t));
  Kernel k = kb.Finish();
  EXPECT_FALSE(ValidateKernel(k).empty());
}

TEST(Printer, RendersAxpy) {
  Kernel k = BuildAxpy(16);
  const std::string text = PrintKernel(k);
  EXPECT_NE(text.find("kernel axpy"), std::string::npos);
  EXPECT_NE(text.find("param f64 alpha;"), std::string::npos);
  EXPECT_NE(text.find("array f64 x[16];"), std::string::npos);
  EXPECT_NE(text.find("y[i] = ((alpha * x[i]) + y[i]);"), std::string::npos);
}

TEST(Layout, AssignsDisjointAlignedAddresses) {
  Kernel k = BuildAxpy(10);
  DataLayout layout(k, 64, 8);
  SymbolId x = -1;
  SymbolId y = -1;
  for (const Symbol& s : k.symbols()) {
    if (s.name == "x") x = s.id;
    if (s.name == "y") y = s.id;
  }
  const std::uint64_t ax = layout.AddressOf(x);
  const std::uint64_t ay = layout.AddressOf(y);
  EXPECT_EQ(ax % 8, 0u);
  EXPECT_EQ(ay % 8, 0u);
  EXPECT_GE(ay, ax + 10);  // no overlap (plus guard/alignment)
  EXPECT_GT(layout.end(), ay + 10);
}

TEST(Layout, ParamsHaveNoAddress) {
  Kernel k = BuildAxpy(4);
  DataLayout layout(k);
  EXPECT_THROW(layout.AddressOf(0), Error);  // alpha is symbol 0
}

TEST(ParamEnv, TypedAccessAndCompleteness) {
  Kernel k = BuildAxpy(4);
  ParamEnv env(k);
  EXPECT_THROW(env.CheckComplete(k), Error);
  env.SetF64(0, 2.5);
  env.SetI64(1, 4);
  env.CheckComplete(k);
  EXPECT_DOUBLE_EQ(env.GetF64(0), 2.5);
  EXPECT_EQ(env.GetI64(1), 4);
  EXPECT_THROW(env.SetI64(0, 1), Error);  // alpha is f64
}

TEST(Interp, AxpyProducesExpectedValues) {
  Kernel k = BuildAxpy(8);
  DataLayout layout(k);
  ParamEnv env(k);
  env.SetF64(0, 3.0);  // alpha
  env.SetI64(1, 8);    // n
  std::vector<std::uint64_t> memory(layout.end(), 0);
  SymbolId x = 2;
  SymbolId y = 3;
  for (int i = 0; i < 8; ++i) {
    memory[layout.AddressOf(x) + static_cast<std::uint64_t>(i)] =
        std::bit_cast<std::uint64_t>(static_cast<double>(i));
    memory[layout.AddressOf(y) + static_cast<std::uint64_t>(i)] =
        std::bit_cast<std::uint64_t>(1.0);
  }
  Interpreter interp(k, layout, env, memory);
  const InterpStats stats = interp.Run();
  EXPECT_EQ(stats.iterations, 8u);
  for (int i = 0; i < 8; ++i) {
    const double yi = std::bit_cast<double>(
        memory[layout.AddressOf(y) + static_cast<std::uint64_t>(i)]);
    EXPECT_DOUBLE_EQ(yi, 3.0 * i + 1.0);
  }
}

TEST(Interp, ReductionWithCarriedTemp) {
  KernelBuilder kb("dot");
  Val n = kb.ParamI64("n");
  ArrayHandle a = kb.ArrayF64("a", 16);
  ArrayHandle b = kb.ArrayF64("b", 16);
  ScalarHandle out = kb.ScalarF64("out");
  TempHandle sum = kb.DeclCarriedF64("sum", 0.0);
  kb.StartLoop("i", kb.ConstI(0), n);
  kb.Assign(sum, kb.Read(sum) + kb.Load(a, kb.Iv()) * kb.Load(b, kb.Iv()));
  kb.EndLoop();
  kb.StoreScalar(out, kb.Read(sum));
  Kernel k = kb.Finish();
  CheckValid(k);

  DataLayout layout(k);
  ParamEnv env(k);
  env.SetI64(0, 16);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  for (int i = 0; i < 16; ++i) {
    memory[layout.AddressOf(1) + static_cast<std::uint64_t>(i)] =
        std::bit_cast<std::uint64_t>(2.0);
    memory[layout.AddressOf(2) + static_cast<std::uint64_t>(i)] =
        std::bit_cast<std::uint64_t>(0.5);
  }
  Interpreter interp(k, layout, env, memory);
  interp.Run();
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(memory[layout.AddressOf(3)]), 16.0);
}

TEST(Interp, ConditionalBranching) {
  KernelBuilder kb("cond");
  ArrayHandle out = kb.ArrayI64("out", 10);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(10));
  kb.If(
      (kb.Iv() % kb.ConstI(2)) == kb.ConstI(0),
      [&] { kb.Store(out, kb.Iv(), kb.ConstI(100)); },
      [&] { kb.Store(out, kb.Iv(), kb.ConstI(200)); });
  Kernel k = kb.Finish();
  CheckValid(k);

  DataLayout layout(k);
  ParamEnv env(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  Interpreter(k, layout, env, memory).Run();
  for (int i = 0; i < 10; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(
        memory[layout.AddressOf(0) + static_cast<std::uint64_t>(i)]);
    EXPECT_EQ(v, i % 2 == 0 ? 100 : 200);
  }
}

TEST(Interp, SelectEvaluatesBothArms) {
  KernelBuilder kb("sel");
  ArrayHandle out = kb.ArrayF64("out", 4);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  Val cond = kb.Iv() < kb.ConstI(2);
  kb.Store(out, kb.Iv(), kb.Select(cond, kb.ConstF(1.5), kb.ConstF(-1.5)));
  Kernel k = kb.Finish();
  DataLayout layout(k);
  ParamEnv env(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  Interpreter(k, layout, env, memory).Run();
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(memory[layout.AddressOf(0)]), 1.5);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(memory[layout.AddressOf(0) + 3]), -1.5);
}

TEST(Interp, ArrayOutOfBoundsFaults) {
  KernelBuilder kb("oob");
  ArrayHandle a = kb.ArrayF64("a", 4);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(8));  // runs past the array
  kb.Store(a, kb.Iv(), kb.ConstF(0.0));
  Kernel k = kb.Finish();
  DataLayout layout(k);
  ParamEnv env(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  Interpreter interp(k, layout, env, memory);
  EXPECT_THROW(interp.Run(), Error);
}

TEST(Interp, ZeroIterationLoopLeavesTempsAtInit) {
  KernelBuilder kb("empty");
  TempHandle t = kb.DeclCarriedI64("acc", 42);
  ScalarHandle out = kb.ScalarI64("out");
  kb.StartLoop("i", kb.ConstI(5), kb.ConstI(5));
  kb.Assign(t, kb.Read(t) + kb.ConstI(1));
  kb.EndLoop();
  kb.StoreScalar(out, kb.Read(t));
  Kernel k = kb.Finish();
  DataLayout layout(k);
  ParamEnv env(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  Interpreter interp(k, layout, env, memory);
  const InterpStats stats = interp.Run();
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_EQ(static_cast<std::int64_t>(memory[layout.AddressOf(0)]), 42);
}

TEST(Interp, IntegerSemanticsMatchIsa) {
  // Shifts mask to 6 bits, shr is arithmetic, f2i truncates toward zero —
  // the same rules the simulator implements.
  KernelBuilder kb("sem");
  ArrayHandle out = kb.ArrayI64("out", 4);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(1));
  kb.Store(out, kb.ConstI(0), kb.ConstI(-16) >> kb.ConstI(2));
  kb.Store(out, kb.ConstI(1), kb.ConstI(1) << kb.ConstI(66));  // masked: << 2
  kb.Store(out, kb.ConstI(2), kb.ToI64(kb.ConstF(-2.9)));
  kb.Store(out, kb.ConstI(3), kb.ConstI(-7) % kb.ConstI(3));
  Kernel k = kb.Finish();
  DataLayout layout(k);
  ParamEnv env(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  Interpreter(k, layout, env, memory).Run();
  const std::uint64_t base = layout.AddressOf(0);
  EXPECT_EQ(static_cast<std::int64_t>(memory[base + 0]), -4);
  EXPECT_EQ(static_cast<std::int64_t>(memory[base + 1]), 4);
  EXPECT_EQ(static_cast<std::int64_t>(memory[base + 2]), -2);
  EXPECT_EQ(static_cast<std::int64_t>(memory[base + 3]), -1);
}

TEST(Kernel, TraversalHelpers) {
  KernelBuilder kb("trav");
  Val p = kb.ParamF64("p");
  ArrayHandle a = kb.ArrayF64("a", 8);
  TempHandle t = kb.DeclTemp("t", ScalarType::kF64);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(8));
  kb.Assign(t, kb.Load(a, kb.Iv()) * p);
  Val expr = kb.Read(t) + kb.Read(t) * p;
  kb.Store(a, kb.Iv(), expr);
  Kernel k = kb.Finish();

  const Stmt& store = k.loop().body[1];
  const auto temps = k.TempsReadBy(store.value);
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_EQ(temps[0], 0);
  const auto syms = k.SymbolsReadBy(k.loop().body[0].value);
  ASSERT_EQ(syms.size(), 1u);
  EXPECT_EQ(k.symbol(syms[0]).name, "a");
  EXPECT_TRUE(k.UsesIv(store.index));
  EXPECT_EQ(k.ExprDepth(store.value), 3);      // (t + (t * p))
  EXPECT_EQ(k.ComputeOpCount(store.value), 2); // + and *
}

}  // namespace
}  // namespace fgpar::ir
