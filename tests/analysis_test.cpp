// Unit tests for src/analysis: control paths, affine subscript analysis,
// the kernel index, the cost model, and profile feedback.
#include <gtest/gtest.h>

#include "analysis/affine.hpp"
#include "analysis/control.hpp"
#include "analysis/cost.hpp"
#include "analysis/index.hpp"
#include "analysis/profile.hpp"
#include "frontend/parser.hpp"
#include "support/error.hpp"
#include "ir/builder.hpp"

namespace fgpar::analysis {
namespace {

// ---- control paths ----

TEST(Control, PrefixRelation) {
  const ControlPath empty;
  const ControlPath a = {{1, true}};
  const ControlPath ab = {{1, true}, {5, false}};
  EXPECT_TRUE(IsPrefix(empty, a));
  EXPECT_TRUE(IsPrefix(a, ab));
  EXPECT_TRUE(IsPrefix(ab, ab));
  EXPECT_FALSE(IsPrefix(ab, a));
  const ControlPath other = {{1, false}};
  EXPECT_FALSE(IsPrefix(other, ab));
}

TEST(Control, MutualExclusion) {
  const ControlPath then_path = {{1, true}};
  const ControlPath else_path = {{1, false}};
  const ControlPath nested_then = {{1, true}, {5, true}};
  const ControlPath nested_else = {{1, true}, {5, false}};
  EXPECT_TRUE(MutuallyExclusive(then_path, else_path));
  EXPECT_TRUE(MutuallyExclusive(nested_then, nested_else));
  EXPECT_TRUE(MutuallyExclusive(else_path, nested_then));
  EXPECT_FALSE(MutuallyExclusive(then_path, nested_then));
  EXPECT_FALSE(MutuallyExclusive({}, then_path));
}

TEST(Control, CommonPrefix) {
  const ControlPath a = {{1, true}, {5, false}, {9, true}};
  const ControlPath b = {{1, true}, {5, false}, {12, true}};
  const ControlPath common = CommonPrefix(a, b);
  ASSERT_EQ(common.size(), 2u);
  EXPECT_EQ(common[1].if_stmt, 5);
}

// ---- affine subscripts ----

struct IndexFixture {
  ir::KernelBuilder kb{"idx"};
  ir::Val p = kb.ParamI64("p");
  ir::Val q = kb.ParamI64("q");
  ir::ArrayHandle data = kb.ArrayI64("data", 64);

  IndexFixture() { kb.StartLoop("i", kb.ConstI(0), kb.ConstI(8)); }
  LinearIndex Analyze(ir::Val v) {
    return AnalyzeIndex(kb.kernel_under_construction(), v.id());
  }
};

TEST(Affine, RecognizesBasicForms) {
  IndexFixture f;
  const LinearIndex iv = f.Analyze(f.kb.Iv());
  EXPECT_TRUE(iv.affine);
  EXPECT_EQ(iv.coeff, 1);
  EXPECT_EQ(iv.offset, 0);

  const LinearIndex shifted = f.Analyze(f.kb.Iv() + f.kb.ConstI(3));
  EXPECT_EQ(shifted.coeff, 1);
  EXPECT_EQ(shifted.offset, 3);

  const LinearIndex scaled =
      f.Analyze(f.kb.ConstI(3) * f.kb.Iv() - f.kb.ConstI(2));
  EXPECT_EQ(scaled.coeff, 3);
  EXPECT_EQ(scaled.offset, -2);

  const LinearIndex negated = f.Analyze(-f.kb.Iv());
  EXPECT_EQ(negated.coeff, -1);
}

TEST(Affine, ParamsBecomeResidues) {
  IndexFixture f;
  const LinearIndex a = f.Analyze(f.kb.Iv() + f.p);
  const LinearIndex b = f.Analyze(f.kb.Iv() + f.p);
  const LinearIndex c = f.Analyze(f.kb.Iv() + f.q);
  EXPECT_TRUE(a.affine);
  EXPECT_NE(a.residue, 0u);
  EXPECT_EQ(a.residue, b.residue);  // same structure, same fingerprint
  EXPECT_NE(a.residue, c.residue);  // different param
  // p + i and i + p fingerprint identically (commutative combine).
  const LinearIndex d = f.Analyze(f.p + f.kb.Iv());
  EXPECT_EQ(a.residue, d.residue);
  EXPECT_EQ(a.coeff, d.coeff);
}

TEST(Affine, SubtractionCancelsIdenticalResidues) {
  IndexFixture f;
  const LinearIndex v = f.Analyze(f.kb.Iv() + f.p - f.p);
  EXPECT_TRUE(v.affine);
  EXPECT_EQ(v.residue, 0u);
  EXPECT_EQ(v.coeff, 1);
}

TEST(Affine, GathersAreNotAffine) {
  IndexFixture f;
  const LinearIndex v = f.Analyze(f.kb.Load(f.data, f.kb.Iv()));
  EXPECT_FALSE(v.affine);
}

TEST(Affine, CompareSameCoefficient) {
  IndexFixture f;
  const LinearIndex i = f.Analyze(f.kb.Iv());
  const LinearIndex i1 = f.Analyze(f.kb.Iv() + f.kb.ConstI(1));
  const LinearIndex i2 = f.Analyze(f.kb.Iv() * f.kb.ConstI(2));
  const LinearIndex i21 = f.Analyze(f.kb.Iv() * f.kb.ConstI(2) + f.kb.ConstI(1));

  EXPECT_EQ(CompareIndices(i, i), Overlap::kSameIterOnly);
  EXPECT_EQ(CompareIndices(i, i1), Overlap::kMayConflict);  // distance 1
  EXPECT_EQ(CompareIndices(i2, i21), Overlap::kNever);      // parity differs
  EXPECT_TRUE(SameAddressSameIteration(i, i));
  EXPECT_FALSE(SameAddressSameIteration(i, i1));
}

TEST(Affine, CompareConstantsAndMixed) {
  IndexFixture f;
  const LinearIndex c3 = f.Analyze(f.kb.ConstI(3));
  const LinearIndex c4 = f.Analyze(f.kb.ConstI(4));
  const LinearIndex i = f.Analyze(f.kb.Iv());
  EXPECT_EQ(CompareIndices(c3, c4), Overlap::kNever);
  EXPECT_EQ(CompareIndices(c3, c3), Overlap::kMayConflict);  // every iteration
  EXPECT_EQ(CompareIndices(c3, i), Overlap::kMayConflict);   // differing coeff
}

TEST(Affine, DifferentResiduesConservative) {
  IndexFixture f;
  const LinearIndex a = f.Analyze(f.kb.Iv() + f.p);
  const LinearIndex b = f.Analyze(f.kb.Iv() + f.q);
  EXPECT_EQ(CompareIndices(a, b), Overlap::kMayConflict);
}

// ---- kernel index ----

TEST(Index, RecordsPathsDefsUsesAndAccesses) {
  ir::Kernel k = frontend::ParseKernel(R"(
kernel idx {
  array f64 a[16];
  array f64 o[16];
  loop i = 0 .. 16 {
    f64 t = a[i] * 2.0;
    if (t < 1.0) {
      o[i] = t;
    }
  }
}
)");
  const KernelIndex index(k);
  ASSERT_EQ(index.entries().size(), 3u);  // assign, if, store

  const StmtEntry& assign = index.entries()[0];
  EXPECT_EQ(assign.temp_written, 0);
  ASSERT_EQ(assign.accesses.size(), 1u);
  EXPECT_FALSE(assign.accesses[0].is_write);
  EXPECT_TRUE(assign.accesses[0].index.affine);

  const StmtEntry& if_entry = index.entries()[1];
  EXPECT_TRUE(if_entry.is_if);
  ASSERT_EQ(if_entry.temps_read.size(), 1u);

  const StmtEntry& store = index.entries()[2];
  EXPECT_EQ(store.path.size(), 1u);
  EXPECT_TRUE(store.path[0].then_branch);
  ASSERT_EQ(store.accesses.size(), 1u);
  EXPECT_TRUE(store.accesses[0].is_write);

  EXPECT_EQ(index.DefsOf(0).size(), 1u);
  EXPECT_EQ(index.UsesOf(0).size(), 2u);  // the if condition and the store
  EXPECT_TRUE(index.HasStmt(store.id));
  EXPECT_THROW(index.ByStmtId(999), fgpar::Error);
}

TEST(Index, EpilogueEntriesFlagged) {
  ir::Kernel k = frontend::ParseKernel(R"(
kernel ep {
  scalar f64 out;
  carried f64 s = 0.0;
  loop i = 0 .. 4 {
    s = s + 1.0;
  }
  after {
    out = s;
  }
}
)");
  const KernelIndex index(k);
  ASSERT_EQ(index.entries().size(), 2u);
  EXPECT_FALSE(index.entries()[0].in_epilogue);
  EXPECT_TRUE(index.entries()[1].in_epilogue);
}

// ---- cost model ----

TEST(Cost, OrdersOperationsSensibly) {
  ir::KernelBuilder kb("cost");
  ir::ArrayHandle a = kb.ArrayF64("a", 8);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(8));
  ir::Val load = kb.Load(a, kb.Iv());
  ir::Val mul = load * load;
  ir::Val div = load / load;
  ir::Val root = kb.Sqrt(load);
  ir::Kernel k = kb.Finish();

  const CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, nullptr);
  const double c_mul = cost.ExprCost(k, mul.id());
  const double c_div = cost.ExprCost(k, div.id());
  const double c_sqrt = cost.ExprCost(k, root.id());
  EXPECT_LT(c_mul, c_div);
  EXPECT_LT(c_mul, c_sqrt);
  // Loads are costed at L1 latency without a profile.
  sim::CacheConfig cache;
  EXPECT_DOUBLE_EQ(cost.LoadCost(0), static_cast<double>(cache.l1_latency));
}

TEST(Cost, ProfileOverridesLoadLatency) {
  ir::KernelBuilder kb("prof");
  ir::ArrayHandle a = kb.ArrayF64("a", 8);
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(8));
  ir::Val load = kb.Load(a, kb.Iv());
  ir::Kernel k = kb.Finish();
  (void)load;

  ProfileData profile;
  profile.SetLatency(0, 123.0, 100);
  const CostModel cost(sim::CoreTiming{}, sim::CacheConfig{}, &profile);
  EXPECT_DOUBLE_EQ(cost.LoadCost(0), 123.0);
}

// ---- profile collection ----

TEST(Profile, CollectsPerSymbolLatencies) {
  ir::Kernel k = frontend::ParseKernel(R"(
kernel prof {
  array f64 hot[8];
  array f64 cold[512];
  array f64 o[512];
  loop i = 0 .. 512 {
    o[i] = hot[i - (i / 8) * 8] + cold[i];
  }
}
)");
  ir::DataLayout layout(k);
  ir::ParamEnv params(k);
  std::vector<std::uint64_t> memory(layout.end(), 0);
  sim::CacheConfig cache;
  const ProfileData profile = ProfileData::Collect(k, layout, params, memory, cache);

  // Both arrays were accessed 512 times...
  EXPECT_EQ(profile.AccessCount(0), 512u);
  EXPECT_EQ(profile.AccessCount(1), 512u);
  EXPECT_EQ(profile.AccessCount(3), 0u);  // "o" is symbol 2; 3 doesn't exist...
  // ...but the 8-element hot array lives in cache while the 512-element
  // streaming array keeps missing.
  const double hot_latency = profile.LoadLatency(0, 0.0);
  const double cold_latency = profile.LoadLatency(1, 0.0);
  EXPECT_LT(hot_latency, cold_latency);
  EXPECT_DOUBLE_EQ(profile.LoadLatency(99, 42.0), 42.0);  // fallback
}

TEST(Profile, CollectionDoesNotMutateMemory) {
  ir::Kernel k = frontend::ParseKernel(R"(
kernel pure {
  array f64 o[8];
  loop i = 0 .. 8 {
    o[i] = 1.0;
  }
}
)");
  ir::DataLayout layout(k);
  ir::ParamEnv params(k);
  std::vector<std::uint64_t> memory(layout.end(), 7);
  const std::vector<std::uint64_t> before = memory;
  ProfileData::Collect(k, layout, params, memory, sim::CacheConfig{});
  EXPECT_EQ(memory, before);
}

}  // namespace
}  // namespace fgpar::analysis
