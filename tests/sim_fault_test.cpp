// Resilience-layer tests: deterministic fault injection, the stall
// watchdog, structured stall/deadlock reports, hardened queue
// preconditions, and the harness's graceful sequential fallback.
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "isa/assembler.hpp"
#include "sim/fault.hpp"
#include "sim/hw_queue.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Fpr;
using isa::Gpr;

MachineConfig TwoCores() {
  MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 16;
  return config;
}

/// Sender streams `count` values to the receiver, which accumulates them.
isa::Program StreamProgram(int count) {
  Assembler a;
  isa::Label sender = a.NewNamedLabel("sender");
  isa::Label receiver = a.NewNamedLabel("receiver");
  a.Bind(sender);
  a.LiI(Gpr{1}, 3);
  for (int i = 0; i < count; ++i) {
    a.EnqI(1, Gpr{1});
  }
  a.Halt();
  a.Bind(receiver);
  a.LiI(Gpr{2}, 0);
  for (int i = 0; i < count; ++i) {
    a.DeqI(0, Gpr{3});
    a.AddI(Gpr{2}, Gpr{2}, Gpr{3});
  }
  a.Halt();
  return a.Finish();
}

struct StreamRun {
  RunResult result;
  std::unique_ptr<Machine> machine;
};

StreamRun RunStream(const MachineConfig& config, const isa::Program& program) {
  StreamRun out;
  out.machine = std::make_unique<Machine>(config, program);
  out.machine->StartCoreAt(0, "sender");
  out.machine->StartCoreAt(1, "receiver");
  out.result = out.machine->Run();
  return out;
}

// ---- determinism ----

TEST(Fault, ScheduleIsDeterministicAcrossMachines) {
  const isa::Program program = StreamProgram(40);
  MachineConfig config = TwoCores();
  config.faults.seed = 7;
  config.faults.queue_jitter_prob = 0.3;
  config.faults.queue_reject_prob = 0.2;
  config.faults.core_freeze_prob = 0.01;
  config.faults.core_freeze_cycles = 9;

  const StreamRun run1 = RunStream(config, program);
  const FaultStats s1 = run1.machine->fault_injector().stats();
  const StreamRun run2 = RunStream(config, program);
  const FaultStats s2 = run2.machine->fault_injector().stats();

  EXPECT_EQ(run1.result.cycles, run2.result.cycles);
  EXPECT_EQ(run1.result.instructions, run2.result.instructions);
  EXPECT_EQ(s1.latency_jitters, s2.latency_jitters);
  EXPECT_EQ(s1.jitter_cycles_added, s2.jitter_cycles_added);
  EXPECT_EQ(s1.enqueue_rejects, s2.enqueue_rejects);
  EXPECT_EQ(s1.core_freezes, s2.core_freezes);
  EXPECT_GT(s1.TotalEvents(), 0u);
}

TEST(Fault, DisabledInjectorMatchesFaultFreeMachine) {
  const isa::Program program = StreamProgram(40);
  const StreamRun clean = RunStream(TwoCores(), program);
  MachineConfig config = TwoCores();
  config.faults.seed = 123;  // seed alone enables nothing
  const StreamRun with_default_faults = RunStream(config, program);
  EXPECT_EQ(clean.result.cycles, with_default_faults.result.cycles);
  EXPECT_FALSE(with_default_faults.machine->fault_injector().enabled());
  EXPECT_EQ(with_default_faults.machine->fault_injector().stats().TotalEvents(),
            0u);
}

// ---- each fault kind ----

TEST(Fault, LatencyJitterDelaysButPreservesValues) {
  const isa::Program program = StreamProgram(20);
  const StreamRun clean = RunStream(TwoCores(), program);

  MachineConfig config = TwoCores();
  config.faults.queue_jitter_prob = 1.0;
  config.faults.queue_jitter_max_cycles = 16;
  const StreamRun jittered = RunStream(config, program);
  EXPECT_EQ(jittered.machine->fault_injector().stats().latency_jitters, 20u);
  EXPECT_GT(jittered.machine->fault_injector().stats().jitter_cycles_added, 0u);
  EXPECT_GT(jittered.result.cycles, clean.result.cycles);
  EXPECT_EQ(jittered.machine->core(1).gpr(2), 20 * 3);  // values intact
}

TEST(Fault, EnqueueRejectionStallsSenderButCompletes) {
  const isa::Program program = StreamProgram(20);
  MachineConfig config = TwoCores();
  config.faults.queue_reject_prob = 0.5;
  const StreamRun run = RunStream(config, program);
  EXPECT_GT(run.machine->fault_injector().stats().enqueue_rejects, 0u);
  EXPECT_GT(run.machine->core(0).stats().stall_queue_full, 0u);
  EXPECT_EQ(run.machine->core(1).gpr(2), 20 * 3);  // transient: values still flow
}

TEST(Fault, PayloadFlipCorruptsExactlyOneBit) {
  const isa::Program program = StreamProgram(1);
  MachineConfig config = TwoCores();
  config.faults.payload_flip_prob = 1.0;
  const StreamRun run = RunStream(config, program);
  EXPECT_EQ(run.machine->fault_injector().stats().payload_flips, 1u);
  const std::uint64_t received =
      static_cast<std::uint64_t>(run.machine->core(1).gpr(2));
  const std::uint64_t diff = received ^ 3u;
  EXPECT_NE(diff, 0u);
  EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
}

TEST(Fault, MemoryLatencyInflationSlowsLoads) {
  // Each load feeds an add so the scoreboard exposes its latency.
  Assembler a;
  a.LiI(Gpr{1}, 64);
  a.LiI(Gpr{2}, 42);
  a.StI(Gpr{2}, Gpr{1}, 0);
  a.LiI(Gpr{4}, 0);
  for (int i = 0; i < 10; ++i) {
    a.LdI(Gpr{3}, Gpr{1}, 0);
    a.AddI(Gpr{4}, Gpr{4}, Gpr{3});
  }
  a.Halt();
  const isa::Program program = a.Finish();

  MachineConfig config = TwoCores();
  config.num_cores = 1;
  Machine clean(config, program);
  clean.StartCoreAtPc(0, 0);
  const RunResult clean_result = clean.Run();

  config.faults.mem_fault_prob = 1.0;
  config.faults.mem_fault_extra_cycles = 50;
  Machine faulty(config, program);
  faulty.StartCoreAtPc(0, 0);
  const RunResult faulty_result = faulty.Run();
  EXPECT_GT(faulty.fault_injector().stats().mem_inflations, 0u);
  EXPECT_GT(faulty_result.cycles, clean_result.cycles + 100);
  EXPECT_EQ(faulty.core(0).gpr(4), 420);  // timing fault only, data intact
}

TEST(Fault, CoreFreezeStopsIssueButCompletes) {
  const isa::Program program = StreamProgram(20);
  const StreamRun clean = RunStream(TwoCores(), program);
  MachineConfig config = TwoCores();
  config.faults.core_freeze_prob = 0.2;
  config.faults.core_freeze_cycles = 25;
  const StreamRun frozen = RunStream(config, program);
  EXPECT_GT(frozen.machine->fault_injector().stats().core_freezes, 0u);
  EXPECT_GT(frozen.result.cycles, clean.result.cycles);
  EXPECT_EQ(frozen.machine->core(1).gpr(2), 20 * 3);
}

// ---- stall watchdog ----

TEST(Watchdog, TripsDuringLongTransferWait) {
  // The receiver waits ~200 cycles for an in-flight value: future events
  // exist (this is NOT a provable deadlock), but a tight watchdog fires.
  MachineConfig config = TwoCores();
  config.queue.transfer_latency = 200;
  config.stall_watchdog_cycles = 50;
  const isa::Program program = StreamProgram(1);
  Machine m(config, program);
  m.StartCoreAt(0, "sender");
  m.StartCoreAt(1, "receiver");
  try {
    m.Run();
    FAIL() << "expected StallError";
  } catch (const StallError& e) {
    const StallReport& report = e.report();
    EXPECT_FALSE(report.provable_deadlock);
    EXPECT_GE(report.stalled_cycles, 50u);
    ASSERT_EQ(report.cores.size(), 2u);
    EXPECT_EQ(report.cores[1].wait, StallReport::CoreState::Wait::kDeqEmpty);
    EXPECT_EQ(report.cores[1].remote_core, 0);
    EXPECT_FALSE(report.cores[1].queue_is_fp);
    EXPECT_EQ(report.cores[1].queue_in_flight, 1);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stall watchdog tripped"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("int queue 0->1"), std::string::npos) << msg;
  }
}

TEST(Watchdog, GenerousThresholdDoesNotTrip) {
  MachineConfig config = TwoCores();
  config.queue.transfer_latency = 200;
  config.stall_watchdog_cycles = 1000;
  const isa::Program program = StreamProgram(1);
  Machine m(config, program);
  m.StartCoreAt(0, "sender");
  m.StartCoreAt(1, "receiver");
  EXPECT_NO_THROW(m.Run());
}

TEST(Watchdog, DeadlockReportNamesCoreQueueAndClass) {
  // Both cores dequeue from each other's fp queue: a provable deadlock
  // whose report must name the blocked cores, direction, and class.
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.DeqF(1, Fpr{1});
  a.Halt();
  a.Bind(core1);
  a.DeqF(0, Fpr{1});
  a.Halt();
  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  try {
    m.Run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(e.report().provable_deadlock);
    EXPECT_EQ(e.report().cores[0].wait, StallReport::CoreState::Wait::kDeqEmpty);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hardware queue deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fp queue 1->0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fp queue 0->1"), std::string::npos) << msg;
  }
}

// ---- hardened queue preconditions ----

TEST(QueueGuards, DequeueFromEmptyThrowsDiagnostic) {
  HardwareQueue q(/*capacity=*/2, /*transfer_latency=*/5);
  try {
    q.Dequeue(10);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("dequeue from empty hardware queue"),
              std::string::npos)
        << e.what();
  }
}

TEST(QueueGuards, DequeueBeforeArrivalThrowsDiagnostic) {
  HardwareQueue q(2, 5);
  q.Enqueue(99, /*now=*/10);  // arrives at 15
  try {
    q.Dequeue(12);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dequeue before arrival"), std::string::npos) << msg;
    EXPECT_NE(msg.find("15"), std::string::npos) << msg;
  }
}

TEST(QueueGuards, EnqueueIntoFullThrowsDiagnostic) {
  HardwareQueue q(1, 5);
  q.Enqueue(1, 0);
  try {
    q.Enqueue(2, 1);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("enqueue into full hardware queue"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("capacity 1"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace fgpar::sim

// ---- harness fallback (end-to-end) ----

namespace fgpar::harness {
namespace {

constexpr const char* kSmallKernel = R"(
kernel resilience {
  param i64 n;
  array f64 a[64];
  array f64 o1[64];
  array f64 o2[64];
  loop i = 0 .. n {
    f64 t1 = a[i] * 1.5 + 1.0;
    f64 t2 = t1 * t1 - a[i];
    o1[i] = t2;
    o2[i] = sqrt(abs(t1)) * 2.0;
  }
}
)";

WorkloadInit SeededInit(std::int64_t trip) {
  return [trip](std::uint64_t seed, const ir::Kernel& kernel,
                const ir::DataLayout& layout, ir::ParamEnv& params,
                std::vector<std::uint64_t>& memory) {
    Rng rng(seed);
    for (const ir::Symbol& sym : kernel.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        params.SetI64(sym.id, trip);
      } else if (sym.kind == ir::SymbolKind::kArray) {
        const std::uint64_t base = layout.AddressOf(sym.id);
        for (std::int64_t i = 0; i < sym.array_size; ++i) {
          memory[base + static_cast<std::uint64_t>(i)] =
              std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0));
        }
      }
    }
  };
}

RunConfig FaultyConfig() {
  RunConfig config;
  config.compile.num_cores = 2;
  config.tune_by_simulation = false;
  config.stall_watchdog_cycles = 100000;
  // Aggressive corruption: payload flips make verification fail with near
  // certainty on every attempt.
  config.faults.payload_flip_prob = 0.2;
  return config;
}

TEST(Fallback, CorruptedParallelRunFallsBackToSequential) {
  KernelRunner runner(frontend::ParseKernel(kSmallKernel), SeededInit(60));
  RunConfig config = FaultyConfig();
  config.fallback.max_retries = 2;
  const KernelRun run = runner.Run(config);  // must not throw
  EXPECT_TRUE(run.fallback_used);
  EXPECT_EQ(run.retries, 3);  // 1 attempt + 2 retries, all failed
  EXPECT_FALSE(run.failure_reason.empty());
  EXPECT_EQ(run.cores_used, 1);
  EXPECT_EQ(run.par_cycles, run.seq_cycles);
  EXPECT_DOUBLE_EQ(run.speedup, 1.0);
  EXPECT_GT(run.fault_stats.payload_flips, 0u);
}

TEST(Fallback, DisabledFallbackRethrows) {
  KernelRunner runner(frontend::ParseKernel(kSmallKernel), SeededInit(60));
  RunConfig config = FaultyConfig();
  config.fallback.max_retries = 1;
  config.fallback.fall_back_to_sequential = false;
  EXPECT_THROW(runner.Run(config), Error);
}

TEST(Fallback, TimingOnlyFaultsVerifyWithoutFallback) {
  // Jitter, rejection, freezes, and slow memory perturb timing but never
  // data: the parallel run still verifies against the golden model.
  KernelRunner runner(frontend::ParseKernel(kSmallKernel), SeededInit(60));
  RunConfig config;
  config.compile.num_cores = 2;
  config.tune_by_simulation = false;
  config.stall_watchdog_cycles = 1000000;
  config.faults.queue_jitter_prob = 0.1;
  config.faults.queue_reject_prob = 0.1;
  config.faults.mem_fault_prob = 0.02;
  config.faults.core_freeze_prob = 0.001;
  const KernelRun run = runner.Run(config);
  EXPECT_FALSE(run.fallback_used);
  EXPECT_EQ(run.retries, 0);
  EXPECT_GT(run.fault_stats.TotalEvents(), 0u);
  EXPECT_GT(run.par_cycles, 0u);
}

TEST(Fallback, FaultInjectedRunsAreReproducible) {
  KernelRunner runner(frontend::ParseKernel(kSmallKernel), SeededInit(60));
  RunConfig config = FaultyConfig();
  const KernelRun r1 = runner.Run(config);
  const KernelRun r2 = runner.Run(config);
  EXPECT_EQ(r1.fallback_used, r2.fallback_used);
  EXPECT_EQ(r1.retries, r2.retries);
  EXPECT_EQ(r1.par_cycles, r2.par_cycles);
  EXPECT_EQ(r1.seq_cycles, r2.seq_cycles);
  EXPECT_EQ(r1.failure_reason, r2.failure_reason);
  EXPECT_EQ(r1.fault_stats.payload_flips, r2.fault_stats.payload_flips);
  EXPECT_EQ(r1.fault_stats.latency_jitters, r2.fault_stats.latency_jitters);
}

TEST(Fallback, RunSeedChangesWorkloadDeterministically) {
  KernelRunner runner(frontend::ParseKernel(kSmallKernel), SeededInit(60));
  RunConfig config;
  config.compile.num_cores = 2;
  config.tune_by_simulation = false;
  const KernelRun base = runner.Run(config);
  config.seed = 0xABCDEF;
  const KernelRun reseeded1 = runner.Run(config);
  const KernelRun reseeded2 = runner.Run(config);
  // Same seed: bit-identical run.  (Different data may or may not change
  // cycle counts, so only reproducibility is asserted.)
  EXPECT_EQ(reseeded1.seq_cycles, reseeded2.seq_cycles);
  EXPECT_EQ(reseeded1.par_cycles, reseeded2.par_cycles);
  EXPECT_GT(base.seq_cycles, 0u);
}

}  // namespace
}  // namespace fgpar::harness
