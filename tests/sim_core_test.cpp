// Unit tests for single-core execution: functional semantics and the
// scoreboard timing model.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Fpr;
using isa::Gpr;

MachineConfig OneCore() {
  MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 16;
  return config;
}

Machine RunProgram(const MachineConfig& config, Assembler& a,
                   RunResult* result = nullptr) {
  Machine m(config, a.Finish());
  m.StartCoreAtPc(0, 0);
  RunResult r = m.Run();
  if (result != nullptr) {
    *result = r;
  }
  return m;
}

TEST(Core, IntegerArithmetic) {
  Assembler a;
  a.LiI(Gpr{1}, 21);
  a.LiI(Gpr{2}, -4);
  a.AddI(Gpr{3}, Gpr{1}, Gpr{2});
  a.SubI(Gpr{4}, Gpr{1}, Gpr{2});
  a.MulI(Gpr{5}, Gpr{1}, Gpr{2});
  a.DivI(Gpr{6}, Gpr{1}, Gpr{2});
  a.RemI(Gpr{7}, Gpr{1}, Gpr{2});
  a.MinI(Gpr{8}, Gpr{1}, Gpr{2});
  a.MaxI(Gpr{9}, Gpr{1}, Gpr{2});
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(3), 17);
  EXPECT_EQ(m.core(0).gpr(4), 25);
  EXPECT_EQ(m.core(0).gpr(5), -84);
  EXPECT_EQ(m.core(0).gpr(6), -5);
  EXPECT_EQ(m.core(0).gpr(7), 1);
  EXPECT_EQ(m.core(0).gpr(8), -4);
  EXPECT_EQ(m.core(0).gpr(9), 21);
}

TEST(Core, BitwiseAndShifts) {
  Assembler a;
  a.LiI(Gpr{1}, 0b1100);
  a.LiI(Gpr{2}, 0b1010);
  a.AndI(Gpr{3}, Gpr{1}, Gpr{2});
  a.OrI(Gpr{4}, Gpr{1}, Gpr{2});
  a.XorI(Gpr{5}, Gpr{1}, Gpr{2});
  a.LiI(Gpr{6}, 2);
  a.ShlI(Gpr{7}, Gpr{1}, Gpr{6});
  a.LiI(Gpr{8}, -16);
  a.ShrI(Gpr{9}, Gpr{8}, Gpr{6});
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(3), 0b1000);
  EXPECT_EQ(m.core(0).gpr(4), 0b1110);
  EXPECT_EQ(m.core(0).gpr(5), 0b0110);
  EXPECT_EQ(m.core(0).gpr(7), 0b110000);
  EXPECT_EQ(m.core(0).gpr(9), -4);  // arithmetic shift
}

TEST(Core, Comparisons) {
  Assembler a;
  a.LiI(Gpr{1}, 3);
  a.LiI(Gpr{2}, 5);
  a.CltI(Gpr{3}, Gpr{1}, Gpr{2});
  a.CltI(Gpr{4}, Gpr{2}, Gpr{1});
  a.CeqI(Gpr{5}, Gpr{1}, Gpr{1});
  a.CneI(Gpr{6}, Gpr{1}, Gpr{1});
  a.CleI(Gpr{7}, Gpr{1}, Gpr{1});
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(3), 1);
  EXPECT_EQ(m.core(0).gpr(4), 0);
  EXPECT_EQ(m.core(0).gpr(5), 1);
  EXPECT_EQ(m.core(0).gpr(6), 0);
  EXPECT_EQ(m.core(0).gpr(7), 1);
}

TEST(Core, FloatingPointArithmetic) {
  Assembler a;
  a.LiF(Fpr{1}, 9.0);
  a.LiF(Fpr{2}, 2.0);
  a.AddF(Fpr{3}, Fpr{1}, Fpr{2});
  a.SubF(Fpr{4}, Fpr{1}, Fpr{2});
  a.MulF(Fpr{5}, Fpr{1}, Fpr{2});
  a.DivF(Fpr{6}, Fpr{1}, Fpr{2});
  a.SqrtF(Fpr{7}, Fpr{1});
  a.NegF(Fpr{8}, Fpr{1});
  a.AbsF(Fpr{9}, Fpr{8});
  a.LiF(Fpr{10}, 3.0);
  a.FmaF(Fpr{10}, Fpr{1}, Fpr{2});  // 3 + 9*2
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(3), 11.0);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(4), 7.0);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(5), 18.0);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(6), 4.5);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(7), 3.0);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(8), -9.0);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(9), 9.0);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(10), 21.0);
}

TEST(Core, Conversions) {
  Assembler a;
  a.LiI(Gpr{1}, -7);
  a.ItoF(Fpr{1}, Gpr{1});
  a.LiF(Fpr{2}, 2.9);
  a.FtoI(Gpr{2}, Fpr{2});
  a.LiF(Fpr{3}, -2.9);
  a.FtoI(Gpr{3}, Fpr{3});
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(1), -7.0);
  EXPECT_EQ(m.core(0).gpr(2), 2);   // truncation toward zero
  EXPECT_EQ(m.core(0).gpr(3), -2);
}

TEST(Core, LoadsAndStores) {
  Assembler a;
  a.LiI(Gpr{1}, 100);  // base
  a.LiI(Gpr{2}, 42);
  a.StI(Gpr{2}, Gpr{1}, 3);     // mem[103] = 42
  a.LdI(Gpr{3}, Gpr{1}, 3);
  a.LiI(Gpr{4}, 5);             // index
  a.LiF(Fpr{1}, 2.5);
  a.StFX(Fpr{1}, Gpr{1}, Gpr{4});  // mem[105] = 2.5
  a.LdFX(Fpr{2}, Gpr{1}, Gpr{4});
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(3), 42);
  EXPECT_DOUBLE_EQ(m.core(0).fpr(2), 2.5);
  EXPECT_EQ(m.memory().ReadI64(103), 42);
  EXPECT_DOUBLE_EQ(m.memory().ReadF64(105), 2.5);
}

TEST(Core, LoopWithBranches) {
  // sum = 0; for (i = 10; i != 0; --i) sum += i;  => 55
  Assembler a;
  a.LiI(Gpr{1}, 10);
  a.LiI(Gpr{2}, 0);
  a.LiI(Gpr{3}, 1);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.AddI(Gpr{2}, Gpr{2}, Gpr{1});
  a.SubI(Gpr{1}, Gpr{1}, Gpr{3});
  a.Bnz(Gpr{1}, top);
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(2), 55);
}

TEST(Core, CallAndReturn) {
  Assembler a;
  isa::Label fn = a.NewNamedLabel("fn");
  a.LiI(Gpr{1}, 1);
  a.Call(fn);
  a.Call(fn);
  a.Halt();
  a.Bind(fn);
  a.AddI(Gpr{1}, Gpr{1}, Gpr{1});
  a.Ret();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(1), 4);
}

TEST(Core, IndirectCallThroughRegister) {
  Assembler a;
  isa::Label fn = a.NewNamedLabel("fn");
  a.LiLabel(Gpr{5}, fn);
  a.CallR(Gpr{5});
  a.Halt();
  a.Bind(fn);
  a.LiI(Gpr{1}, 99);
  a.Ret();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).gpr(1), 99);
}

TEST(Core, DivideByZeroThrows) {
  Assembler a;
  a.LiI(Gpr{1}, 1);
  a.LiI(Gpr{2}, 0);
  a.DivI(Gpr{3}, Gpr{1}, Gpr{2});
  a.Halt();
  Machine m(OneCore(), a.Finish());
  m.StartCoreAtPc(0, 0);
  EXPECT_THROW(m.Run(), Error);
}

TEST(Core, ReturnWithEmptyStackThrows) {
  Assembler a;
  a.Ret();
  Machine m(OneCore(), a.Finish());
  m.StartCoreAtPc(0, 0);
  EXPECT_THROW(m.Run(), Error);
}

// ---- timing model ----

TEST(CoreTiming, DependentChainIsSlowerThanIndependentOps) {
  MachineConfig config = OneCore();
  // Dependent chain of fp adds: each must wait fp_alu cycles for the prior.
  Assembler dep;
  dep.LiF(Fpr{1}, 1.0);
  for (int i = 0; i < 16; ++i) {
    dep.AddF(Fpr{1}, Fpr{1}, Fpr{1});
  }
  dep.Halt();
  RunResult dep_result;
  RunProgram(config, dep, &dep_result);

  // Independent adds: pipelined, ~1 per cycle.
  Assembler indep;
  indep.LiF(Fpr{1}, 1.0);
  for (int i = 0; i < 16; ++i) {
    indep.AddF(Fpr{static_cast<std::uint8_t>(2 + i)}, Fpr{1}, Fpr{1});
  }
  indep.Halt();
  RunResult indep_result;
  RunProgram(config, indep, &indep_result);

  EXPECT_GT(dep_result.core0_halt_cycle, indep_result.core0_halt_cycle * 3);
}

TEST(CoreTiming, UnpipelinedDivideOccupiesIssueStage) {
  MachineConfig config = OneCore();
  Assembler a;
  a.LiF(Fpr{1}, 1.0);
  a.LiF(Fpr{2}, 3.0);
  // Two *independent* divides: if divide were pipelined they would overlap.
  a.DivF(Fpr{3}, Fpr{1}, Fpr{2});
  a.DivF(Fpr{4}, Fpr{2}, Fpr{1});
  a.Halt();
  RunResult r;
  RunProgram(config, a, &r);
  EXPECT_GE(r.core0_halt_cycle,
            2 * static_cast<std::uint64_t>(config.timing.fp_div));
}

TEST(CoreTiming, CacheHitsMakeRepeatedLoadsFaster) {
  MachineConfig config = OneCore();
  Assembler a;
  a.LiI(Gpr{1}, 0);
  for (int i = 0; i < 8; ++i) {
    a.LdF(Fpr{2}, Gpr{1}, 0);
    a.AddF(Fpr{3}, Fpr{2}, Fpr{2});  // consume the load each time
  }
  a.Halt();
  RunResult r;
  Machine m = RunProgram(config, a, &r);
  // One cold miss + seven L1 hits is far below eight misses.
  EXPECT_LT(r.core0_halt_cycle,
            static_cast<std::uint64_t>(8 * config.cache.mem_latency));
  EXPECT_EQ(m.memory().misses(), 1u);
}

TEST(CoreTiming, StatsCountInstructionCategories) {
  Assembler a;
  a.LiI(Gpr{1}, 0);
  a.LdI(Gpr{2}, Gpr{1}, 0);
  a.StI(Gpr{2}, Gpr{1}, 1);
  a.Halt();
  Machine m = RunProgram(OneCore(), a);
  EXPECT_EQ(m.core(0).stats().instructions, 4u);
  EXPECT_EQ(m.core(0).stats().loads, 1u);
  EXPECT_EQ(m.core(0).stats().stores, 1u);
}

}  // namespace
}  // namespace fgpar::sim
