// Tests for the harness: the verifying runner, configuration plumbing, and
// cross-machine correctness (SMT topologies, tuned vs static compilation).
#include <gtest/gtest.h>

#include <bit>

#include "harness/random_kernel.hpp"
#include "harness/runner.hpp"
#include "frontend/parser.hpp"
#include "ir/builder.hpp"
#include "ir/validate.hpp"
#include "kernels/sequoia.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fgpar::harness {
namespace {

WorkloadInit SimpleInit(std::int64_t trip) {
  return [trip](std::uint64_t /*seed*/, const ir::Kernel& kernel,
                const ir::DataLayout& layout, ir::ParamEnv& params,
                std::vector<std::uint64_t>& memory) {
    Rng rng(42);
    for (const ir::Symbol& sym : kernel.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        if (sym.type == ir::ScalarType::kI64) {
          params.SetI64(sym.id, trip);
        } else {
          params.SetF64(sym.id, rng.NextDouble(0.5, 2.0));
        }
      } else if (sym.kind == ir::SymbolKind::kArray) {
        const std::uint64_t base = layout.AddressOf(sym.id);
        for (std::int64_t i = 0; i < sym.array_size; ++i) {
          memory[base + static_cast<std::uint64_t>(i)] =
              sym.type == ir::ScalarType::kF64
                  ? std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0))
                  : static_cast<std::uint64_t>(rng.NextInt(0, sym.array_size - 1));
        }
      }
    }
  };
}

constexpr const char* kKernel = R"(
kernel hk {
  param i64 n;
  param f64 c;
  array f64 a[64];
  array f64 o[64];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. n {
    f64 v = a[i] * c + 1.0;
    o[i] = v * v;
    sum = sum + v;
  }
  after {
    out = sum;
  }
}
)";

TEST(Runner, MeasureSequentialAgreesWithRun) {
  KernelRunner runner(frontend::ParseKernel(kKernel), SimpleInit(40));
  RunConfig config;
  config.compile.num_cores = 2;
  const std::uint64_t seq = runner.MeasureSequential(config);
  const KernelRun run = runner.Run(config);
  EXPECT_EQ(seq, run.seq_cycles);
}

TEST(Runner, MissingParamFailsLoudly) {
  KernelRunner runner(frontend::ParseKernel(kKernel),
                      [](std::uint64_t, const ir::Kernel&, const ir::DataLayout&,
                         ir::ParamEnv&, std::vector<std::uint64_t>&) {
                        // deliberately sets nothing
                      });
  RunConfig config;
  EXPECT_THROW(runner.Run(config), Error);
}

TEST(Runner, InvalidKernelRejectedAtConstruction) {
  ir::KernelBuilder kb("bad");
  ir::TempHandle t = kb.DeclTemp("t", ir::ScalarType::kF64);
  ir::ScalarHandle out = kb.ScalarF64("out");
  kb.StartLoop("i", kb.ConstI(0), kb.ConstI(4));
  kb.StoreScalar(out, kb.Read(t));  // use before def
  kb.Assign(t, kb.ConstF(1.0));
  ir::Kernel bad = kb.Finish();
  EXPECT_THROW(KernelRunner(bad, SimpleInit(4)), Error);
}

TEST(Runner, SpeedupConsistentWithCycleCounts) {
  KernelRunner runner(frontend::ParseKernel(kKernel), SimpleInit(40));
  RunConfig config;
  config.compile.num_cores = 4;
  const KernelRun run = runner.Run(config);
  EXPECT_DOUBLE_EQ(run.speedup, static_cast<double>(run.seq_cycles) /
                                    static_cast<double>(run.par_cycles));
}

TEST(Runner, TunedNeverSlowerThanStaticOnTrainingWorkload) {
  KernelRunner runner(frontend::ParseKernel(kKernel), SimpleInit(40));
  RunConfig static_config;
  static_config.compile.num_cores = 4;
  static_config.tune_by_simulation = false;
  RunConfig tuned_config = static_config;
  tuned_config.tune_by_simulation = true;
  const KernelRun s = runner.Run(static_config);
  const KernelRun t = runner.Run(tuned_config);
  // The tuner picks by measured cycles on exactly this workload/hardware,
  // over a candidate set that includes the static choice.
  EXPECT_LE(t.par_cycles, s.par_cycles);
}

// SMT topologies must not change results, only timing.
class SmtCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(SmtCorrectness, KernelsBitExactOnSmtMachines) {
  const kernels::SequoiaKernel& spec =
      kernels::SequoiaKernels()[static_cast<std::size_t>(GetParam())];
  KernelRunner runner(kernels::ParseSequoia(spec), kernels::SequoiaInit(spec));
  for (int tpc : {2, 4}) {
    RunConfig config;
    config.compile.num_cores = 4;
    config.threads_per_core = tpc;
    const KernelRun run = runner.Run(config);  // throws on mismatch
    EXPECT_GT(run.par_cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(SomeKernels, SmtCorrectness,
                         ::testing::Values(0, 2, 5, 11, 15, 17));

TEST(Runner, FullyDeterministicAcrossRuns) {
  // The whole stack — workload, compiler, simulator — is deterministic:
  // two identical runs must agree cycle-for-cycle.
  KernelRunner runner(frontend::ParseKernel(kKernel), SimpleInit(40));
  RunConfig config;
  config.compile.num_cores = 4;
  const KernelRun a = runner.Run(config);
  const KernelRun b = runner.Run(config);
  EXPECT_EQ(a.seq_cycles, b.seq_cycles);
  EXPECT_EQ(a.par_cycles, b.par_cycles);
  EXPECT_EQ(a.par_instructions, b.par_instructions);
  EXPECT_EQ(a.par_queue_transfers, b.par_queue_transfers);
  EXPECT_EQ(a.com_ops, b.com_ops);
}

TEST(RandomKernels, DeterministicInSeed) {
  const RandomKernelCase a = GenerateRandomKernel(123);
  const RandomKernelCase b = GenerateRandomKernel(123);
  EXPECT_EQ(ir::ValidateKernel(a.kernel).size(), 0u);
  EXPECT_EQ(a.kernel.stmt_count(), b.kernel.stmt_count());
  EXPECT_EQ(a.kernel.temps().size(), b.kernel.temps().size());
}

TEST(RandomKernels, VariantsWithoutConditionalsOrReductions) {
  const RandomKernelCase plain =
      GenerateRandomKernel(7, /*with_conditionals=*/false, /*with_reduction=*/false);
  bool has_if = false;
  ir::Kernel::VisitStmts(plain.kernel.loop().body, [&](const ir::Stmt& s) {
    has_if |= s.kind == ir::StmtKind::kIf;
  });
  EXPECT_FALSE(has_if);
  for (const ir::Temp& t : plain.kernel.temps()) {
    EXPECT_FALSE(t.carried);
  }
}

}  // namespace
}  // namespace fgpar::harness
