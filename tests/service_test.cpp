// Unit tests for the fgpard service layer: wire protocol round-trips, the
// content-addressed compile cache (key separation, crash-safe persistence,
// corrupt-entry eviction), and ServiceCore's request semantics — cache-hit
// byte-identity, the graceful-degradation ladder, and quarantine.
//
// Everything here drives ServiceCore in-process with plain strings; the
// socket transport is covered end-to-end by the `service_slo` ctest
// (fgpar-load against a real daemon, including kill -9 + restart).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/cache.hpp"
#include "service/core.hpp"
#include "service/protocol.hpp"
#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace fgpar::service {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// A small reduction kernel: the carried sum forces cross-core queue
/// traffic every iteration, so queue latency dominates the parallel
/// schedule — which is what the degradation-ladder test exploits.
constexpr char kSumKernel[] = R"(
kernel svcsum {
  param i64 n;
  array f64 a[64];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. n {
    sum = sum + a[i] * 2.0;
  }
  after {
    out = sum;
  }
}
)";

Request MakeCompileRun(std::uint64_t id, int cores = 2,
                       std::int64_t trip = 48) {
  Request request;
  request.op = Op::kCompileRun;
  request.id = id;
  request.kernel = kSumKernel;
  request.config.cores = cores;
  request.config.trip = trip;
  return request;
}

std::uint64_t Counter(const ServiceCore& core, const std::string& name) {
  const auto counters = core.Counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServiceProtocol, RequestRoundTrip) {
  Request request = MakeCompileRun(42, /*cores=*/8, /*trip=*/100);
  request.config.latency = 9;
  request.config.capacity = 33;
  request.config.smt = 2;
  request.config.speculate = true;
  request.config.throughput = true;
  request.config.tune = true;
  request.config.seed = 0xDEADBEEF;

  const Request parsed = ParseRequest(EncodeRequest(request));
  EXPECT_EQ(parsed.op, Op::kCompileRun);
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.kernel, request.kernel);
  EXPECT_EQ(parsed.config.CanonicalString(),
            request.config.CanonicalString());
}

TEST(ServiceProtocol, TierRoundTripsAndRejectsUnknownNames) {
  Request request = MakeCompileRun(1);
  request.config.tier = sim::RunTier::kThreaded;
  EXPECT_EQ(ParseRequest(EncodeRequest(request)).config.tier,
            sim::RunTier::kThreaded);
  request.config.tier = sim::RunTier::kSlow;
  EXPECT_EQ(ParseRequest(EncodeRequest(request)).config.tier,
            sim::RunTier::kSlow);
  // An unknown tier name is a validation error (a structured 400 at the
  // daemon), never a silent fallback to auto.
  EXPECT_THROW(
      (void)ParseRequest(
          "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":1,"
          "\"kernel\":\"kernel k {}\",\"config\":{\"tier\":\"warp\"}}"),
      Error);
}

TEST(ServiceProtocol, ParseRequestRejectsHostileInput) {
  const auto reject = [](const std::string& payload) {
    EXPECT_THROW((void)ParseRequest(payload), Error) << payload;
  };
  reject("not json at all");
  reject("{\"schema\":\"wrong-schema\",\"op\":\"health\",\"id\":1}");
  reject("{\"schema\":\"fgpar-rpc-v1\",\"op\":\"explode\",\"id\":1}");
  reject("{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":1}");
  reject(
      "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":1,"
      "\"kernel\":\"\"}");
  // Every config bound, one violation each.
  for (const char* config :
       {"{\"cores\": 0}", "{\"cores\": 65}", "{\"latency\": -1}",
        "{\"latency\": 10001}", "{\"capacity\": 0}", "{\"smt\": 9}",
        "{\"trip\": 0}", "{\"trip\": 10000001}"}) {
    reject(std::string("{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\","
                       "\"id\":1,\"kernel\":\"kernel k {}\",\"config\":") +
           config + "}");
  }
}

TEST(ServiceProtocol, FrameRoundTrip) {
  const std::string buffer =
      EncodeFrame("first payload") + EncodeFrame("{\"second\":2}");
  std::size_t pos = 0;
  EXPECT_EQ(DecodeFrame(buffer, pos).value(), "first payload");
  EXPECT_EQ(DecodeFrame(buffer, pos).value(), "{\"second\":2}");
  EXPECT_EQ(pos, buffer.size());
  EXPECT_FALSE(DecodeFrame(buffer, pos).has_value());  // nothing left
}

TEST(ServiceProtocol, IncompleteFrameIsNotConsumed) {
  const std::string frame = EncodeFrame("payload");
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::size_t pos = 0;
    EXPECT_FALSE(DecodeFrame(frame.substr(0, len), pos).has_value());
    EXPECT_EQ(pos, 0u);  // a partial frame must not advance the cursor
  }
}

TEST(ServiceProtocol, OversizedFrameThrowsInsteadOfAllocating) {
  std::string header(4, '\0');
  const std::uint32_t huge = kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  std::size_t pos = 0;
  EXPECT_THROW((void)DecodeFrame(header, pos), Error);
}

TEST(ServiceProtocol, ErrorResponsesAreStructured) {
  const std::string payload = BuildErrorResponse(
      7, Op::kCompileRun, kRejected, "overloaded", "queue full",
      {{"queue_depth", 16}, {"queue_capacity", 16}});
  const JsonValue doc = ParseJson(payload);
  EXPECT_EQ(doc.Get("schema").AsString(), kRpcSchema);
  EXPECT_EQ(doc.Get("id").AsU64(), 7u);
  EXPECT_EQ(doc.Get("op").AsString(), "compile_run");
  EXPECT_EQ(doc.Get("status").AsString(), "error");
  EXPECT_EQ(doc.Get("code").AsI64(), kRejected);
  EXPECT_EQ(doc.Get("error").Get("kind").AsString(), "overloaded");
  EXPECT_EQ(doc.Get("error").Get("queue_depth").AsU64(), 16u);
}

// ---------------------------------------------------------------------------
// Cache keying: distinct jobs must never share a key.

TEST(ServiceCache, EveryConfigFieldSeparatesTheKey) {
  // One variant per field; all canonical strings (and hence keys) must be
  // pairwise distinct — a collision would serve one job's result for
  // another.
  std::vector<RunRequestConfig> variants(10);
  variants.reserve(12);
  variants[1].cores = 8;
  variants[2].latency = 6;
  variants[3].capacity = 21;
  variants[4].smt = 2;
  variants[5].speculate = true;
  variants[6].throughput = true;
  variants[7].tune = true;
  variants[8].trip = 401;
  variants[9].seed = 0x5EED + 1;
  variants.emplace_back().merge = 1;
  variants.emplace_back().merge = 2;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(variants[i].CanonicalString(), variants[j].CanonicalString())
          << "variants " << i << " and " << j;
      EXPECT_FALSE(CompileCache::KeyFor("kernel k {}",
                                        variants[i].CanonicalString()) ==
                   CompileCache::KeyFor("kernel k {}",
                                        variants[j].CanonicalString()))
          << "variants " << i << " and " << j;
    }
  }
}

TEST(ServiceProtocol, MergeShapeRoundTripsAndRejectsUnknownNames) {
  // The JSON field carries the shape name, the struct the TunePoint code.
  Request request = MakeCompileRun(1);
  request.config.merge = 1;
  EXPECT_EQ(ParseRequest(EncodeRequest(request)).config.merge, 1);
  request.config.merge = 2;
  EXPECT_EQ(ParseRequest(EncodeRequest(request)).config.merge, 2);
  // Omitting the field keeps the affinity default — old clients stay valid.
  EXPECT_EQ(ParseRequest("{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\","
                         "\"id\":1,\"kernel\":\"kernel k {}\","
                         "\"config\":{}}")
                .config.merge,
            0);
  // An unknown shape name is a structured 400, never a silent default.
  EXPECT_THROW(
      (void)ParseRequest(
          "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":1,"
          "\"kernel\":\"kernel k {}\",\"config\":{\"merge\":\"fastest\"}}"),
      Error);
  // throughput:true is the back-compat spelling of merge=throughput;
  // combining it with multi_pair asks for two different merge drivers.
  EXPECT_THROW(
      (void)ParseRequest(
          "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":1,"
          "\"kernel\":\"kernel k {}\","
          "\"config\":{\"throughput\":true,\"merge\":\"multi_pair\"}}"),
      Error);
}

TEST(ServiceProtocol, BackendRoundTripsAndRejectsUnknownNames) {
  Request request = MakeCompileRun(2);
  request.config.backend = compiler::BackendKind::kNative;
  EXPECT_EQ(ParseRequest(EncodeRequest(request)).config.backend,
            compiler::BackendKind::kNative);
  request.config.backend = compiler::BackendKind::kSim;
  EXPECT_EQ(ParseRequest(EncodeRequest(request)).config.backend,
            compiler::BackendKind::kSim);
  // An unknown backend name is a validation error (structured 400), never
  // a silent fallback to sim.
  EXPECT_THROW(
      (void)ParseRequest(
          "{\"schema\":\"fgpar-rpc-v1\",\"op\":\"compile_run\",\"id\":1,"
          "\"kernel\":\"kernel k {}\",\"config\":{\"backend\":\"gpu\"}}"),
      Error);
}

TEST(ServiceCache, BackendIsPartOfTheKey) {
  // The opposite contract from `tier`: a native run carries measured
  // wall-clock result fields a sim entry lacks, so backend variants must
  // never share a cache entry.
  RunRequestConfig sim_config;
  RunRequestConfig native_config;
  native_config.backend = compiler::BackendKind::kNative;
  EXPECT_NE(sim_config.CanonicalString(), native_config.CanonicalString());
  EXPECT_FALSE(
      CompileCache::KeyFor(kSumKernel, sim_config.CanonicalString()) ==
      CompileCache::KeyFor(kSumKernel, native_config.CanonicalString()));
}

TEST(ServiceCache, TierNeverChangesTheKey) {
  // Run tiers are bit-identical by contract, so the tier is the one config
  // field deliberately excluded from the cache key: a tier-only variant
  // of a request must be served from the same entry.
  RunRequestConfig base;
  for (const sim::RunTier tier :
       {sim::RunTier::kSlow, sim::RunTier::kFast, sim::RunTier::kThreaded}) {
    RunRequestConfig variant;
    variant.tier = tier;
    EXPECT_EQ(base.CanonicalString(), variant.CanonicalString());
    EXPECT_TRUE(CompileCache::KeyFor(kSumKernel, base.CanonicalString()) ==
                CompileCache::KeyFor(kSumKernel, variant.CanonicalString()));
  }
}

TEST(ServiceCache, WhitespaceDistinctSourcesAreDistinctKeys) {
  // The service hashes raw source bytes — it never argues that a
  // normalization is semantics-preserving.
  const std::string config = RunRequestConfig{}.CanonicalString();
  const CacheKey a = CompileCache::KeyFor("kernel k { }", config);
  const CacheKey b = CompileCache::KeyFor("kernel k {  }", config);
  const CacheKey c = CompileCache::KeyFor("kernel k { }\n", config);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(b == c);
}

// ---------------------------------------------------------------------------
// Cache persistence and corruption recovery.

TEST(ServiceCache, PersistedEntriesSurviveRestartByteIdentical) {
  const std::string path = TempPath("svc_cache_replay.fgc");
  std::filesystem::remove(path);
  const CacheKey k1 = CompileCache::KeyFor("kernel a {}", "cfg-a");
  const CacheKey k2 = CompileCache::KeyFor("kernel b {}", "cfg-b");
  {
    CompileCache cache(path);
    cache.Insert(k1, "{\"result\":\"alpha\"}");
    cache.Insert(k2, "{\"result\":\"beta\",\n  \"n\": 2}");
  }
  // A new instance (the kill -9 + restart path) replays the file.
  CompileCache revived(path);
  EXPECT_EQ(revived.stats().loaded, 2u);
  EXPECT_EQ(revived.stats().corrupt_evicted, 0u);
  EXPECT_EQ(revived.Lookup(k1).value(), "{\"result\":\"alpha\"}");
  EXPECT_EQ(revived.Lookup(k2).value(), "{\"result\":\"beta\",\n  \"n\": 2}");
}

TEST(ServiceCache, CorruptedEntryIsEvictedAndRecomputed) {
  const std::string path = TempPath("svc_cache_corrupt.fgc");
  std::filesystem::remove(path);
  const CacheKey intact = CompileCache::KeyFor("kernel a {}", "cfg-a");
  const CacheKey torn = CompileCache::KeyFor("kernel b {}", "cfg-b");
  {
    CompileCache cache(path);
    cache.Insert(intact, "payload kept");
    cache.Insert(torn, "payload torn");
  }
  // Flip one hex digit in the last entry's payload: the per-entry
  // checksum must catch it.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 3u);  // header + two entries
  std::string& last = lines.back();
  ASSERT_EQ(last.rfind("entry ", 0), 0u);
  last.back() = last.back() == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::trunc);
    for (const std::string& line : lines) {
      out << line << '\n';
    }
  }

  CompileCache revived(path);
  EXPECT_EQ(revived.stats().loaded, 1u);
  EXPECT_EQ(revived.stats().corrupt_evicted, 1u);
  EXPECT_EQ(revived.Lookup(intact).value(), "payload kept");
  // The torn entry is gone — the daemon recomputes instead of serving
  // garbage — and the recomputed result persists again.
  EXPECT_FALSE(revived.Lookup(torn).has_value());
  revived.Insert(torn, "payload recomputed");
  CompileCache third(path);
  EXPECT_EQ(third.Lookup(torn).value(), "payload recomputed");
}

TEST(ServiceCache, GarbageFileLoadsAsEmptyWithoutThrowing) {
  const std::string path = TempPath("svc_cache_garbage.fgc");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "this is not a cache file\nentry nope\n";
  }
  CompileCache cache(path);
  EXPECT_EQ(cache.stats().loaded, 0u);
  EXPECT_GE(cache.stats().corrupt_evicted, 1u);
}

TEST(ServiceCache, FirstInsertWinsAndCapacityEvictsFifo) {
  CompileCache cache("", /*max_entries=*/2);
  const CacheKey a = CompileCache::KeyFor("a", "c");
  const CacheKey b = CompileCache::KeyFor("b", "c");
  const CacheKey c = CompileCache::KeyFor("c", "c");
  cache.Insert(a, "first");
  cache.Insert(a, "second");  // no-op: first result wins
  EXPECT_EQ(cache.Lookup(a).value(), "first");
  cache.Insert(b, "b");
  cache.Insert(c, "c");  // capacity 2: evicts a (oldest)
  EXPECT_FALSE(cache.Lookup(a).has_value());
  EXPECT_EQ(cache.Lookup(b).value(), "b");
  EXPECT_EQ(cache.Lookup(c).value(), "c");
  EXPECT_EQ(cache.stats().capacity_evicted, 1u);
}

// ---------------------------------------------------------------------------
// ServiceCore request semantics.

TEST(ServiceCore, CacheHitIsByteIdenticalAcrossRestart) {
  const std::string path = TempPath("svc_core_cache.fgc");
  std::filesystem::remove(path);
  ServiceConfig config;
  config.cache_path = path;
  const std::string payload = EncodeRequest(MakeCompileRun(7));

  std::string cold;
  {
    ServiceCore core(config);
    cold = core.HandleFrame(payload);
    EXPECT_EQ(core.HandleFrame(payload), cold);  // warm hit, same process
    EXPECT_EQ(Counter(core, "cache_hits"), 1u);
    EXPECT_EQ(Counter(core, "executed"), 1u);
  }
  // Fresh core on the same cache file = the post-kill -9 daemon.  The
  // replayed response must be byte-identical without executing anything.
  ServiceCore revived(config);
  EXPECT_EQ(revived.HandleFrame(payload), cold);
  EXPECT_EQ(Counter(revived, "cache_hits"), 1u);
  EXPECT_EQ(Counter(revived, "executed"), 0u);

  const JsonValue doc = ParseJson(cold);
  EXPECT_EQ(doc.Get("code").AsI64(), kOk);
  EXPECT_EQ(doc.Get("id").AsU64(), 7u);
  EXPECT_EQ(doc.Get("result").Get("kernel").AsString(), "svcsum");
  EXPECT_FALSE(doc.Get("result").Get("degraded").AsBool());
}

TEST(ServiceCore, CachedBodyIsReenvelopedPerRequestId) {
  ServiceConfig config;  // memory-only cache
  ServiceCore core(config);
  const std::string first = core.Handle(MakeCompileRun(1));
  const std::string second = core.Handle(MakeCompileRun(2));
  EXPECT_NE(first, second);  // ids differ…
  const JsonValue a = ParseJson(first);
  const JsonValue b = ParseJson(second);
  EXPECT_EQ(a.Get("id").AsU64(), 1u);
  EXPECT_EQ(b.Get("id").AsU64(), 2u);
  // …but the deterministic result payload is the same cached bytes.
  EXPECT_EQ(a.Get("result").Get("counters").Get("seq_cycles").AsU64(),
            b.Get("result").Get("counters").Get("seq_cycles").AsU64());
  EXPECT_EQ(Counter(core, "cache_hits"), 1u);
  EXPECT_EQ(Counter(core, "executed"), 1u);
}

TEST(ServiceCore, TierNeverChangesTheResponseBytes) {
  // Cold responses computed under different tiers must be byte-identical
  // (the simulator's cross-tier bit-identity surfacing at the wire), and a
  // tier-only variant of an already-served request must be a cache hit.
  const auto with_tier = [](std::uint64_t id, sim::RunTier tier) {
    Request request = MakeCompileRun(id);
    request.config.tier = tier;
    return request;
  };

  ServiceCore threaded_core{ServiceConfig{}};  // memory-only caches
  ServiceCore slow_core{ServiceConfig{}};
  const std::string cold_threaded =
      threaded_core.Handle(with_tier(9, sim::RunTier::kThreaded));
  const std::string cold_slow =
      slow_core.Handle(with_tier(9, sim::RunTier::kSlow));
  EXPECT_EQ(cold_threaded, cold_slow)
      << "pinning a tier may change how fast a cold request simulates, "
         "never what it returns";

  // Same core, same request, different tier: served from cache.
  EXPECT_EQ(threaded_core.Handle(with_tier(9, sim::RunTier::kFast)),
            cold_threaded);
  EXPECT_EQ(Counter(threaded_core, "cache_hits"), 1u);
  EXPECT_EQ(Counter(threaded_core, "executed"), 1u);
}

TEST(ServiceCore, BadKernelIs400NeverQuarantined) {
  ServiceCore core(ServiceConfig{});
  Request request = MakeCompileRun(3);
  request.kernel = "this is not a kernel";
  const JsonValue doc = ParseJson(core.Handle(request));
  EXPECT_EQ(doc.Get("code").AsI64(), kBadRequest);
  EXPECT_EQ(doc.Get("error").Get("kind").AsString(), "bad_kernel");
  EXPECT_EQ(Counter(core, "quarantine_entries"), 0u);
  // Same broken kernel again: still 400, still re-parsed (parse errors
  // are cheap and the client may fix the source).
  EXPECT_EQ(ParseJson(core.Handle(request)).Get("code").AsI64(), kBadRequest);
}

TEST(ServiceCore, MalformedFrameIs400WithIdZero) {
  ServiceCore core(ServiceConfig{});
  const JsonValue doc = ParseJson(core.HandleFrame("{\"half\": "));
  EXPECT_EQ(doc.Get("code").AsI64(), kBadRequest);
  EXPECT_EQ(doc.Get("id").AsU64(), 0u);
  EXPECT_EQ(doc.Get("error").Get("kind").AsString(), "bad_request");
  EXPECT_EQ(Counter(core, "bad_requests"), 1u);
}

TEST(ServiceCore, DrillFailureQuarantinesWithReproBundle) {
  const std::string quarantine_dir = TempPath("svc_quarantine");
  std::filesystem::remove_all(quarantine_dir);
  ServiceConfig config;
  config.drill_crash_every = 1;  // every executed run fails
  config.quarantine_dir = quarantine_dir;
  ServiceCore core(config);

  const Request request = MakeCompileRun(9);
  const JsonValue doc = ParseJson(core.Handle(request));
  EXPECT_EQ(doc.Get("code").AsI64(), kInternal);
  EXPECT_EQ(doc.Get("error").Get("kind").AsString(), "quarantined");
  const std::string message = doc.Get("error").Get("message").AsString();
  EXPECT_NE(message.find("injected drill failure"), std::string::npos);
  EXPECT_NE(message.find("repro_fgpard_"), std::string::npos);
  EXPECT_EQ(Counter(core, "quarantined"), 1u);
  EXPECT_EQ(Counter(core, "executed"), 1u);
  EXPECT_FALSE(std::filesystem::is_empty(quarantine_dir));

  // A repeat offender is refused without re-running: executed stays 1 and
  // the quarantine count does not grow.
  const JsonValue again = ParseJson(core.Handle(request));
  EXPECT_EQ(again.Get("code").AsI64(), kInternal);
  EXPECT_EQ(Counter(core, "executed"), 1u);
  EXPECT_EQ(Counter(core, "quarantined"), 1u);
}

TEST(ServiceCore, DegradationLadderSequentialThen408) {
  // An elementwise kernel partitions across cores, so values cross the
  // inter-core queues; with a pathological 2000-cycle transfer latency
  // and a single-slot queue the parallel schedule is far slower than
  // sequential.  A budget between the two exercises the ladder: the full
  // run overruns, the sequential-only retry fits, and the response is a
  // 200 with degraded=true.
  Request request = MakeCompileRun(11, /*cores=*/4, /*trip=*/48);
  request.kernel = R"(
kernel svcsaxpy {
  param i64 n;
  param f64 a;
  array f64 x[64];
  array f64 y[64];
  array f64 o[64];
  loop i = 0 .. n {
    o[i] = a * x[i] + y[i];
  }
}
)";
  request.config.latency = 2000;
  request.config.capacity = 1;

  std::uint64_t seq_cycles = 0;
  std::uint64_t par_cycles = 0;
  {
    ServiceCore probe(ServiceConfig{});
    const JsonValue doc = ParseJson(probe.Handle(request));
    ASSERT_EQ(doc.Get("code").AsI64(), kOk);
    const JsonValue& counters = doc.Get("result").Get("counters");
    ASSERT_GT(counters.Get("cores_used").AsU64(), 1u)
        << "kernel must actually parallelize for the ladder drill";
    seq_cycles = counters.Get("seq_cycles").AsU64();
    par_cycles = counters.Get("par_cycles").AsU64();
  }
  ASSERT_GT(par_cycles, 2 * seq_cycles)
      << "queue latency should dominate the parallel schedule";

  ServiceConfig config;
  config.cycle_budget = seq_cycles + (par_cycles - seq_cycles) / 2;
  ServiceCore core(config);
  const JsonValue degraded = ParseJson(core.Handle(request));
  EXPECT_EQ(degraded.Get("code").AsI64(), kOk);
  EXPECT_TRUE(degraded.Get("result").Get("degraded").AsBool());
  EXPECT_EQ(degraded.Get("result").Get("counters").Get("cores_used").AsU64(),
            1u);
  EXPECT_EQ(Counter(core, "degraded"), 1u);
  // Degraded results reflect this daemon's budget, not the request's
  // content — they are never cached.
  (void)core.Handle(request);
  EXPECT_EQ(Counter(core, "cache_hits"), 0u);
  EXPECT_EQ(Counter(core, "cache_misses"), 2u);

  // Bottom rung: a budget even sequential execution cannot meet is a
  // structured 408, not a hang and not a crash.
  ServiceConfig strangled;
  strangled.cycle_budget = 1;
  ServiceCore tight(strangled);
  const JsonValue timeout = ParseJson(tight.Handle(request));
  EXPECT_EQ(timeout.Get("code").AsI64(), kDeadline);
  EXPECT_EQ(timeout.Get("error").Get("kind").AsString(), "deadline");
}

TEST(ServiceCore, ExpiredDeadlineWhileQueuedIs408) {
  ServiceConfig config;
  config.request_deadline_seconds = 0.05;
  ServiceCore core(config);
  const auto admitted =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const JsonValue doc = ParseJson(core.Handle(MakeCompileRun(5), admitted));
  EXPECT_EQ(doc.Get("code").AsI64(), kDeadline);
  EXPECT_EQ(Counter(core, "executed"), 0u);  // never burned a worker
}

TEST(ServiceCore, RejectionsAreStructured) {
  ServiceCore core(ServiceConfig{});
  const Request request = MakeCompileRun(13);
  const JsonValue overloaded =
      ParseJson(core.RejectOverloaded(request, 16, 16));
  EXPECT_EQ(overloaded.Get("code").AsI64(), kRejected);
  EXPECT_EQ(overloaded.Get("error").Get("kind").AsString(), "overloaded");
  EXPECT_EQ(overloaded.Get("error").Get("queue_capacity").AsU64(), 16u);
  const JsonValue draining = ParseJson(core.RejectDraining(request));
  EXPECT_EQ(draining.Get("error").Get("kind").AsString(), "draining");
  const JsonValue bad_frame = ParseJson(core.RejectBadFrame("too big"));
  EXPECT_EQ(bad_frame.Get("code").AsI64(), kBadRequest);
  EXPECT_EQ(Counter(core, "rejected_overloaded"), 1u);
  EXPECT_EQ(Counter(core, "rejected_draining"), 1u);
  EXPECT_EQ(Counter(core, "bad_frames"), 1u);
}

TEST(ServiceCore, HealthAndStatsWorkWhileSaturated) {
  ServiceConfig config;
  config.queue_depth = 4;
  ServiceCore core(config);
  core.set_queue_depth_probe([] { return std::size_t{3}; });

  Request health;
  health.op = Op::kHealth;
  health.id = 21;
  const JsonValue h = ParseJson(core.Handle(health));
  EXPECT_EQ(h.Get("code").AsI64(), kOk);
  EXPECT_EQ(h.Get("health").Get("queue_depth").AsU64(), 3u);
  EXPECT_EQ(h.Get("health").Get("queue_capacity").AsU64(), 4u);
  EXPECT_EQ(h.Get("health").Get("version").AsString(), BuildVersionString());
  EXPECT_FALSE(h.Get("health").Get("draining").AsBool());

  Request stats;
  stats.op = Op::kStats;
  stats.id = 22;
  const JsonValue s = ParseJson(core.Handle(stats));
  EXPECT_EQ(s.Get("code").AsI64(), kOk);
  // The health request above already counted.
  EXPECT_GE(s.Get("stats").Get("requests_total").AsU64(), 1u);

  Request shutdown;
  shutdown.op = Op::kShutdown;
  shutdown.id = 23;
  EXPECT_FALSE(core.shutdown_requested());
  EXPECT_EQ(ParseJson(core.Handle(shutdown)).Get("code").AsI64(), kOk);
  EXPECT_TRUE(core.shutdown_requested());
  const JsonValue after = ParseJson(core.Handle(health));
  EXPECT_TRUE(after.Get("health").Get("draining").AsBool());
}

}  // namespace
}  // namespace fgpar::service
