// Multi-core machine tests: queue communication between cores, blocking,
// deadlock detection, and the Figure 11 transfer-latency behaviour.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace fgpar::sim {
namespace {

using isa::Assembler;
using isa::Fpr;
using isa::Gpr;

MachineConfig TwoCores() {
  MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 16;
  return config;
}

TEST(Machine, ValueTravelsBetweenCores) {
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.LiI(Gpr{1}, 1234);
  a.EnqI(1, Gpr{1});
  a.Halt();
  a.Bind(core1);
  a.DeqI(0, Gpr{2});
  a.Halt();

  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  m.Run();
  EXPECT_EQ(m.core(1).gpr(2), 1234);
  EXPECT_EQ(m.core(0).stats().enqueues, 1u);
  EXPECT_EQ(m.core(1).stats().dequeues, 1u);
}

TEST(Machine, FloatQueueCarriesExactBits) {
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.LiF(Fpr{1}, -0.1);
  a.EnqF(1, Fpr{1});
  a.Halt();
  a.Bind(core1);
  a.DeqF(0, Fpr{2});
  a.Halt();

  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  m.Run();
  EXPECT_DOUBLE_EQ(m.core(1).fpr(2), -0.1);
}

TEST(Machine, EarlyDequeueStallsUntilArrival) {
  // Figure 11: the receiver issues its dequeue before the sender's enqueue;
  // it must stall until enqueue-time + transfer latency.
  MachineConfig config = TwoCores();
  config.queue.transfer_latency = 50;

  Assembler a;
  isa::Label sender = a.NewNamedLabel("sender");
  isa::Label receiver = a.NewNamedLabel("receiver");
  a.Bind(sender);
  a.LiI(Gpr{1}, 7);
  a.EnqI(1, Gpr{1});
  a.Halt();
  a.Bind(receiver);
  a.DeqI(0, Gpr{2});
  a.Halt();

  Machine m(config, a.Finish());
  m.StartCoreAt(0, "sender");
  m.StartCoreAt(1, "receiver");
  RunResult r = m.Run();
  // Sender enqueues at cycle 1; receiver cannot complete before cycle 51.
  EXPECT_GE(r.cycles, 51u);
  EXPECT_GT(m.core(1).stats().stall_queue_empty, 40u);
  EXPECT_EQ(m.core(1).gpr(2), 7);
}

TEST(Machine, LateDequeueDoesNotStall) {
  // Figure 11, core 3: a dequeue issued after arrival proceeds immediately.
  MachineConfig config = TwoCores();
  config.queue.transfer_latency = 5;

  Assembler a;
  isa::Label sender = a.NewNamedLabel("sender");
  isa::Label receiver = a.NewNamedLabel("receiver");
  a.Bind(sender);
  a.LiI(Gpr{1}, 7);
  a.EnqI(1, Gpr{1});
  a.Halt();
  a.Bind(receiver);
  // Busy-work long past the arrival time before dequeuing.
  a.LiI(Gpr{3}, 0);
  a.LiI(Gpr{4}, 1);
  for (int i = 0; i < 40; ++i) {
    a.AddI(Gpr{3}, Gpr{3}, Gpr{4});
  }
  a.DeqI(0, Gpr{2});
  a.Halt();

  Machine m(config, a.Finish());
  m.StartCoreAt(0, "sender");
  m.StartCoreAt(1, "receiver");
  m.Run();
  EXPECT_EQ(m.core(1).stats().stall_queue_empty, 0u);
  EXPECT_EQ(m.core(1).gpr(2), 7);
}

TEST(Machine, EnqueueBlocksWhenQueueFull) {
  MachineConfig config = TwoCores();
  config.queue.capacity = 2;

  Assembler a;
  isa::Label sender = a.NewNamedLabel("sender");
  isa::Label receiver = a.NewNamedLabel("receiver");
  a.Bind(sender);
  a.LiI(Gpr{1}, 1);
  for (int i = 0; i < 6; ++i) {
    a.EnqI(1, Gpr{1});
  }
  a.Halt();
  a.Bind(receiver);
  // Delay, then drain all six values.
  a.LiI(Gpr{3}, 0);
  a.LiI(Gpr{4}, 1);
  for (int i = 0; i < 100; ++i) {
    a.AddI(Gpr{3}, Gpr{3}, Gpr{4});
  }
  for (int i = 0; i < 6; ++i) {
    a.DeqI(0, Gpr{2});
  }
  a.Halt();

  Machine m(config, a.Finish());
  m.StartCoreAt(0, "sender");
  m.StartCoreAt(1, "receiver");
  m.Run();
  EXPECT_GT(m.core(0).stats().stall_queue_full, 0u);
  EXPECT_EQ(m.core(0).stats().enqueues, 6u);
  EXPECT_EQ(m.core(1).stats().dequeues, 6u);
}

TEST(Machine, PingPongRoundTrip) {
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.LiI(Gpr{1}, 10);
  a.EnqI(1, Gpr{1});
  a.DeqI(1, Gpr{2});  // receives 11
  a.Halt();
  a.Bind(core1);
  a.DeqI(0, Gpr{1});
  a.LiI(Gpr{3}, 1);
  a.AddI(Gpr{1}, Gpr{1}, Gpr{3});
  a.EnqI(0, Gpr{1});
  a.Halt();

  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  m.Run();
  EXPECT_EQ(m.core(0).gpr(2), 11);
}

TEST(Machine, DeadlockDetectedWhenBothCoresDequeue) {
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.DeqI(1, Gpr{1});
  a.Halt();
  a.Bind(core1);
  a.DeqI(0, Gpr{1});
  a.Halt();

  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  EXPECT_THROW(m.Run(), DeadlockError);
}

TEST(Machine, DeadlockDetectedOnEnqueueToHaltedReceiver) {
  MachineConfig config = TwoCores();
  config.queue.capacity = 1;
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.LiI(Gpr{1}, 1);
  a.EnqI(1, Gpr{1});
  a.EnqI(1, Gpr{1});  // queue full, receiver already halted
  a.Halt();
  a.Bind(core1);
  a.Halt();

  Machine m(config, a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  EXPECT_THROW(m.Run(), DeadlockError);
}

TEST(Machine, DeadlockMessageNamesStuckCores) {
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.DeqI(1, Gpr{1});
  a.Halt();
  a.Bind(core1);
  a.DeqI(0, Gpr{1});
  a.Halt();
  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  try {
    m.Run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("core 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deqi"), std::string::npos);
  }
}

TEST(Machine, QueueMatrixChannelAccounting) {
  Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");
  a.Bind(core0);
  a.LiI(Gpr{1}, 1);
  a.LiF(Fpr{1}, 2.0);
  a.EnqI(1, Gpr{1});
  a.EnqF(1, Fpr{1});
  a.DeqI(1, Gpr{2});
  a.Halt();
  a.Bind(core1);
  a.DeqI(0, Gpr{1});
  a.DeqF(0, Fpr{1});
  a.EnqI(0, Gpr{1});
  a.Halt();

  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "core0");
  m.StartCoreAt(1, "core1");
  m.Run();
  // 0->1 (int+fp on the same channel) and 1->0: two directional channels.
  EXPECT_EQ(m.queues().UsedChannelCount(), 2);
  EXPECT_EQ(m.queues().TotalTransfers(), 3u);
}

TEST(Machine, FourCoreAllToAll) {
  MachineConfig config;
  config.num_cores = 4;
  config.memory_words = 1 << 16;
  // Every core sends its id to every other core, then sums what it receives.
  Assembler a;
  std::vector<isa::Label> entries;
  for (int c = 0; c < 4; ++c) {
    entries.push_back(a.NewNamedLabel("core" + std::to_string(c)));
  }
  for (int c = 0; c < 4; ++c) {
    a.Bind(entries[static_cast<std::size_t>(c)]);
    a.LiI(Gpr{1}, c);
    for (int other = 0; other < 4; ++other) {
      if (other != c) {
        a.EnqI(other, Gpr{1});
      }
    }
    a.LiI(Gpr{2}, 0);
    for (int other = 0; other < 4; ++other) {
      if (other != c) {
        a.DeqI(other, Gpr{3});
        a.AddI(Gpr{2}, Gpr{2}, Gpr{3});
      }
    }
    a.Halt();
  }

  Machine m(config, a.Finish());
  for (int c = 0; c < 4; ++c) {
    m.StartCoreAt(c, "core" + std::to_string(c));
  }
  m.Run();
  EXPECT_EQ(m.core(0).gpr(2), 1 + 2 + 3);
  EXPECT_EQ(m.core(1).gpr(2), 0 + 2 + 3);
  EXPECT_EQ(m.core(2).gpr(2), 0 + 1 + 3);
  EXPECT_EQ(m.core(3).gpr(2), 0 + 1 + 2);
  EXPECT_EQ(m.queues().UsedChannelCount(), 12);
}

TEST(Machine, TransferLatencyOfZeroRejected) {
  MachineConfig config = TwoCores();
  config.queue.transfer_latency = 0;
  Assembler a;
  a.Halt();
  EXPECT_THROW(Machine(config, a.Finish()), Error);
}

TEST(Machine, SharedMemoryVisibleAcrossCores) {
  Assembler a;
  isa::Label writer = a.NewNamedLabel("writer");
  isa::Label reader = a.NewNamedLabel("reader");
  a.Bind(writer);
  a.LiI(Gpr{1}, 500);
  a.LiI(Gpr{2}, 777);
  a.StI(Gpr{2}, Gpr{1}, 0);
  a.LiI(Gpr{3}, 1);
  a.EnqI(1, Gpr{3});  // signal "data ready"
  a.Halt();
  a.Bind(reader);
  a.DeqI(0, Gpr{3});  // wait for the signal
  a.LiI(Gpr{1}, 500);
  a.LdI(Gpr{4}, Gpr{1}, 0);
  a.Halt();

  Machine m(TwoCores(), a.Finish());
  m.StartCoreAt(0, "writer");
  m.StartCoreAt(1, "reader");
  m.Run();
  EXPECT_EQ(m.core(1).gpr(4), 777);
}

}  // namespace
}  // namespace fgpar::sim
