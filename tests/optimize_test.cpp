// Unit tests for the scalar optimizer passes: constant folding and dead
// temporary elimination.
#include <gtest/gtest.h>

#include "compiler/optimize.hpp"
#include "frontend/parser.hpp"
#include "ir/interp.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fgpar::compiler {
namespace {

ir::Kernel Parse(const char* source) { return frontend::ParseKernel(source); }

std::vector<std::uint64_t> Interpret(const ir::Kernel& k) {
  ir::DataLayout layout(k);
  ir::ParamEnv env(k);
  Rng rng(9);
  for (const ir::Symbol& sym : k.symbols()) {
    if (sym.kind == ir::SymbolKind::kParam) {
      if (sym.type == ir::ScalarType::kI64) {
        env.SetI64(sym.id, 12);
      } else {
        env.SetF64(sym.id, 1.5);
      }
    }
  }
  std::vector<std::uint64_t> memory(layout.end(), 0);
  for (const ir::Symbol& sym : k.symbols()) {
    if (sym.kind == ir::SymbolKind::kArray) {
      const std::uint64_t base = layout.AddressOf(sym.id);
      for (std::int64_t i = 0; i < sym.array_size; ++i) {
        memory[base + static_cast<std::uint64_t>(i)] =
            sym.type == ir::ScalarType::kF64
                ? std::bit_cast<std::uint64_t>(rng.NextDouble(0.5, 2.0))
                : static_cast<std::uint64_t>(rng.NextInt(0, sym.array_size - 1));
      }
    }
  }
  ir::Interpreter(k, layout, env, memory).Run();
  return memory;
}

TEST(Fold, ConstantSubtreesCollapse) {
  ir::Kernel k = Parse(R"(
kernel fold {
  array f64 o[16];
  loop i = 0 .. 16 {
    o[i] = (2.0 * 3.0 + 1.0) * f64(i) + sqrt(4.0) - abs(-2.5);
  }
}
)");
  const auto before = Interpret(k);
  const int folded = FoldConstants(k);
  EXPECT_GT(folded, 0);
  ir::CheckValid(k);
  EXPECT_EQ(Interpret(k), before);
  // The printed form should now contain the folded 7.0.
  EXPECT_NE(ir::PrintKernel(k).find("7.0"), std::string::npos);
}

TEST(Fold, IntegerSemanticsMatchInterpreter) {
  ir::Kernel k = Parse(R"(
kernel foldint {
  array i64 o[8];
  loop i = 0 .. 8 {
    o[i] = ((-16) >> 2) + (1 << 66) + i64(-2.9) + (7 % 3) + min(3, -5) + i;
  }
}
)");
  const auto before = Interpret(k);
  EXPECT_GT(FoldConstants(k), 0);
  EXPECT_EQ(Interpret(k), before);
}

TEST(Fold, DivisionByZeroTrapPreserved) {
  ir::Kernel k = Parse(R"(
kernel trap {
  array i64 o[4];
  loop i = 0 .. 4 {
    o[i] = 1 / (i - i);
  }
}
)");
  FoldConstants(k);  // i - i is not constant, but even if simplified the
                     // trap must stay: 1 / 0 is never folded.
  EXPECT_THROW(Interpret(k), Error);
}

TEST(Fold, LoopBoundsFold) {
  ir::Kernel k = Parse(R"(
kernel bounds {
  array f64 o[16];
  loop i = 2 + 2 .. 2 * 8 {
    o[i] = 1.0;
  }
}
)");
  FoldConstants(k);
  EXPECT_EQ(k.expr(k.loop().lower).kind, ir::ExprKind::kConstI);
  EXPECT_EQ(k.expr(k.loop().lower).const_i, 4);
  EXPECT_EQ(k.expr(k.loop().upper).const_i, 16);
}

TEST(Dce, RemovesOrphanedChains) {
  ir::Kernel k = Parse(R"(
kernel dce {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    f64 dead1 = a[i] * 2.0;
    f64 dead2 = dead1 + 1.0;
    f64 live = a[i] + 3.0;
    o[i] = live;
  }
}
)");
  const auto before = Interpret(k);
  const int removed = EliminateDeadTemps(k);
  EXPECT_EQ(removed, 2);  // dead2, then dead1 on the next sweep
  ir::CheckValid(k);
  EXPECT_EQ(Interpret(k), before);
  int assigns = 0;
  ir::Kernel::VisitStmts(k.loop().body, [&](const ir::Stmt& s) {
    assigns += s.kind == ir::StmtKind::kAssignTemp ? 1 : 0;
  });
  EXPECT_EQ(assigns, 1);
}

TEST(Dce, KeepsCarriedTempsAndEpilogueInputs) {
  ir::Kernel k = Parse(R"(
kernel keep {
  array f64 a[8];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. 8 {
    f64 live_out = a[i] * 2.0;
    sum = sum + 1.0;
  }
  after {
    out = sum + live_out;
  }
}
)");
  EXPECT_EQ(EliminateDeadTemps(k), 0);  // live_out is read by the epilogue
  ir::CheckValid(k);
}

TEST(Dce, GuardedDeadAssignRemoved) {
  ir::Kernel k = Parse(R"(
kernel guarded {
  array f64 a[8];
  array f64 o[8];
  loop i = 0 .. 8 {
    if (a[i] < 1.0) {
      f64 dead = a[i] * 9.0;
      o[i] = 1.0;
    } else {
      o[i] = 2.0;
    }
  }
}
)");
  const auto before = Interpret(k);
  EXPECT_EQ(EliminateDeadTemps(k), 1);
  EXPECT_EQ(Interpret(k), before);
}

}  // namespace
}  // namespace fgpar::compiler
