// Unit tests for the code generator (compiler/lower.cpp): program
// structure, the Section III-G dispatch protocol, register discipline, and
// the sequential baseline.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "frontend/parser.hpp"
#include "isa/disasm.hpp"
#include "support/error.hpp"

namespace fgpar::compiler {
namespace {

constexpr const char* kSimple = R"(
kernel simple {
  param i64 n;
  param f64 c;
  array f64 a[32];
  array f64 o1[32];
  array f64 o2[32];
  loop i = 0 .. n {
    o1[i] = a[i] * c + 1.0;
    o2[i] = sqrt(abs(a[i])) - c;
  }
}
)";

CompiledParallel Compile(const char* source, int cores) {
  ir::Kernel kernel = frontend::ParseKernel(source);
  ir::DataLayout layout(kernel);
  CompileOptions options;
  options.num_cores = cores;
  return CompileParallel(kernel, layout, options);
}

TEST(Lower, ParallelProgramHasEntrySymbols) {
  const CompiledParallel compiled = Compile(kSimple, 2);
  EXPECT_TRUE(compiled.program.HasSymbol("main"));
  EXPECT_TRUE(compiled.program.HasSymbol("driver"));
  for (int c = 1; c < compiled.cores_used; ++c) {
    EXPECT_TRUE(compiled.program.HasSymbol("F" + std::to_string(c)));
  }
  EXPECT_EQ(compiled.program.EntryOf("main"), 0);  // primary enters at pc 0
}

TEST(Lower, DriverIsTheDispatchLoop) {
  const CompiledParallel compiled = Compile(kSimple, 2);
  const isa::Program& p = compiled.program;
  std::int64_t pc = p.EntryOf("driver");
  // deq fn-ptr; branch-if-zero to halt; indirect call; loop back.
  EXPECT_EQ(p.at(pc).op, isa::Opcode::kDeqI);
  EXPECT_EQ(p.at(pc).queue, 0);  // from the primary
  EXPECT_EQ(p.at(pc + 1).op, isa::Opcode::kBz);
  EXPECT_EQ(p.at(pc + 2).op, isa::Opcode::kCallR);
  EXPECT_EQ(p.at(pc + 3).op, isa::Opcode::kJmp);
  EXPECT_EQ(p.at(pc + 3).imm, pc);
  EXPECT_EQ(p.at(p.at(pc + 1).imm).op, isa::Opcode::kHalt);
}

TEST(Lower, PrimaryDispatchesFunctionPointersBeforeArgs) {
  const CompiledParallel compiled = Compile(kSimple, 2);
  const isa::Program& p = compiled.program;
  // Somewhere before the loop, main enqueues the entry pc of F1 to core 1.
  const std::int64_t f1 = p.EntryOf("F1");
  bool found = false;
  for (std::int64_t pc = 0; pc + 1 < static_cast<std::int64_t>(p.size()); ++pc) {
    if (p.at(pc).op == isa::Opcode::kLiI && p.at(pc).imm == f1 &&
        p.at(pc + 1).op == isa::Opcode::kEnqI && p.at(pc + 1).queue == 1) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no fn-pointer dispatch found";
}

TEST(Lower, OutlinedFunctionsReturn) {
  const CompiledParallel compiled = Compile(kSimple, 2);
  const isa::Program& p = compiled.program;
  // F1 runs to a Ret (back into the driver loop), never into a Halt of its
  // own — termination is the driver's job.
  const std::int64_t f1 = p.EntryOf("F1");
  bool saw_ret = false;
  for (std::int64_t pc = f1; pc < static_cast<std::int64_t>(p.size()); ++pc) {
    if (p.at(pc).op == isa::Opcode::kRet) {
      saw_ret = true;
      break;
    }
    ASSERT_NE(p.at(pc).op, isa::Opcode::kHalt);
  }
  EXPECT_TRUE(saw_ret);
}

TEST(Lower, SequentialProgramHasNoQueueOps) {
  ir::Kernel kernel = frontend::ParseKernel(kSimple);
  ir::DataLayout layout(kernel);
  const isa::Program p = CompileSequential(kernel, layout, CompileOptions{});
  for (std::int64_t pc = 0; pc < static_cast<std::int64_t>(p.size()); ++pc) {
    EXPECT_FALSE(isa::IsQueueOp(p.at(pc).op))
        << "sequential code must not touch queues (pc " << pc << ")";
  }
  EXPECT_EQ(p.at(static_cast<std::int64_t>(p.size()) - 1).op,
            isa::Opcode::kHalt);
}

TEST(Lower, QueueOperandsStayInRange) {
  const CompiledParallel compiled = Compile(kSimple, 4);
  const isa::Program& p = compiled.program;
  for (std::int64_t pc = 0; pc < static_cast<std::int64_t>(p.size()); ++pc) {
    const isa::Instruction& instr = p.at(pc);
    if (isa::IsQueueOp(instr.op)) {
      EXPECT_GE(instr.queue, 0);
      EXPECT_LT(instr.queue, compiled.cores_used);
    }
  }
}

TEST(Lower, BranchTargetsStayInRange) {
  const CompiledParallel compiled = Compile(R"(
kernel branched {
  param i64 n;
  array f64 a[32];
  array f64 o[32];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0;
    if (v < 1.0) {
      o[i] = v;
    } else {
      o[i] = v * 3.0;
    }
  }
}
)",
                                            4);
  const isa::Program& p = compiled.program;
  for (std::int64_t pc = 0; pc < static_cast<std::int64_t>(p.size()); ++pc) {
    const isa::Instruction& instr = p.at(pc);
    if (isa::IsBranch(instr.op) || instr.op == isa::Opcode::kCall) {
      EXPECT_GE(instr.imm, 0);
      EXPECT_LT(instr.imm, static_cast<std::int64_t>(p.size()));
    }
  }
}

TEST(Lower, RegisterPressureFailureIsDiagnosed) {
  // A kernel with more simultaneously-live f64 temps than the register file
  // (52 dedicated + pool) must fail with a clear message, not silently
  // miscompile.
  std::string source = "kernel pressure {\n  array f64 a[8];\n  array f64 o[8];\n"
                       "  loop i = 0 .. 8 {\n";
  for (int t = 0; t < 80; ++t) {
    source += "    f64 t" + std::to_string(t) + " = a[i] * " +
              std::to_string(t) + ".5;\n";
  }
  source += "    o[i] = t0";
  for (int t = 1; t < 80; ++t) {
    source += " + t" + std::to_string(t);
  }
  source += ";\n  }\n}\n";
  ir::Kernel kernel = frontend::ParseKernel(source);
  ir::DataLayout layout(kernel);
  try {
    CompileSequential(kernel, layout, CompileOptions{});
    FAIL() << "expected register exhaustion";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("register"), std::string::npos);
  }
}

TEST(Lower, SequentiallyDeadTempsRecycleRegisters) {
  // 120 temps whose lifetimes never overlap (each one dies feeding the
  // next) compile fine: the allocator recycles registers at last use, so
  // only the peak number of simultaneously-live values matters.
  std::string source = "kernel chain {\n  array f64 a[8];\n  array f64 o[8];\n"
                       "  loop i = 0 .. 8 {\n    f64 t0 = a[i] * 1.5;\n";
  for (int t = 1; t < 120; ++t) {
    source += "    f64 t" + std::to_string(t) + " = t" + std::to_string(t - 1) +
              " * 1.01 + 0.25;\n";
  }
  source += "    o[i] = t119;\n  }\n}\n";
  ir::Kernel kernel = frontend::ParseKernel(source);
  ir::DataLayout layout(kernel);
  EXPECT_NO_THROW(CompileSequential(kernel, layout, CompileOptions{}));
  CompileOptions options;
  options.num_cores = 4;
  EXPECT_NO_THROW(CompileParallel(kernel, layout, options));
}

TEST(Lower, DisassemblyRoundTripsEveryInstruction) {
  const CompiledParallel compiled = Compile(kSimple, 4);
  // Smoke test: every emitted instruction disassembles without throwing.
  const std::string listing = isa::DisassembleProgram(compiled.program);
  EXPECT_GT(listing.size(), 100u);
  EXPECT_NE(listing.find("main:"), std::string::npos);
  EXPECT_NE(listing.find("driver:"), std::string::npos);
}

}  // namespace
}  // namespace fgpar::compiler
