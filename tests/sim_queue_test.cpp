// Unit + property tests for the hardware queue semantics (Section II).
#include <gtest/gtest.h>

#include <deque>

#include "sim/hw_queue.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fgpar::sim {
namespace {

TEST(HardwareQueue, FifoOrder) {
  HardwareQueue q(4, 1);
  q.Enqueue(10, 0);
  q.Enqueue(20, 0);
  q.Enqueue(30, 1);
  EXPECT_EQ(q.Dequeue(100), 10u);
  EXPECT_EQ(q.Dequeue(100), 20u);
  EXPECT_EQ(q.Dequeue(100), 30u);
  EXPECT_TRUE(q.empty());
}

TEST(HardwareQueue, TransferLatencyDelaysVisibility) {
  // Figure 11: value enqueued at T is visible at T + transfer latency.
  HardwareQueue q(4, 5);
  q.Enqueue(42, 100);
  EXPECT_FALSE(q.CanDequeue(100));
  EXPECT_FALSE(q.CanDequeue(104));
  EXPECT_TRUE(q.CanDequeue(105));
  EXPECT_EQ(q.Dequeue(105), 42u);
}

TEST(HardwareQueue, LateDequeueSeesValueImmediately) {
  // Figure 11, core 3 case: dequeue later than arrival proceeds at once.
  HardwareQueue q(4, 5);
  q.Enqueue(7, 10);
  EXPECT_TRUE(q.CanDequeue(1000));
}

TEST(HardwareQueue, CapacityIncludesInFlightValues) {
  HardwareQueue q(2, 50);
  q.Enqueue(1, 0);
  q.Enqueue(2, 0);
  EXPECT_FALSE(q.CanEnqueue());  // both values still in flight
  EXPECT_EQ(q.size(), 2);
}

TEST(HardwareQueue, EnqueueWhenFullThrows) {
  HardwareQueue q(1, 1);
  q.Enqueue(1, 0);
  EXPECT_THROW(q.Enqueue(2, 0), Error);
}

TEST(HardwareQueue, DequeueBeforeArrivalThrows) {
  HardwareQueue q(1, 10);
  q.Enqueue(1, 0);
  EXPECT_THROW(q.Dequeue(5), Error);
}

TEST(HardwareQueue, DequeueEmptyThrows) {
  HardwareQueue q(1, 1);
  EXPECT_THROW(q.Dequeue(100), Error);
}

TEST(HardwareQueue, StatsTrackTransfersAndOccupancy) {
  HardwareQueue q(8, 1);
  for (int i = 0; i < 5; ++i) {
    q.Enqueue(static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(q.max_occupancy(), 5);
  for (int i = 0; i < 5; ++i) {
    q.Dequeue(10);
  }
  EXPECT_EQ(q.total_transfers(), 5u);
  EXPECT_EQ(q.max_occupancy(), 5);  // high-water mark persists
}

TEST(HardwareQueue, RejectsNonPositiveCapacity) {
  EXPECT_THROW(HardwareQueue(0, 1), Error);
}

// Property: against a reference std::deque model, arbitrary interleavings of
// enqueue/dequeue at monotonically increasing cycles preserve FIFO content.
class QueueModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueModelProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  const int capacity = static_cast<int>(rng.NextInt(1, 20));
  const int latency = static_cast<int>(rng.NextInt(1, 50));
  HardwareQueue q(capacity, latency);
  struct Ref {
    std::uint64_t payload;
    std::uint64_t arrival;
  };
  std::deque<Ref> model;
  std::uint64_t now = 0;
  for (int step = 0; step < 500; ++step) {
    now += rng.NextBelow(8);
    if (rng.NextBool(0.55) && static_cast<int>(model.size()) < capacity) {
      const std::uint64_t payload = rng.NextU64();
      ASSERT_TRUE(q.CanEnqueue());
      q.Enqueue(payload, now);
      model.push_back(Ref{payload, now + static_cast<std::uint64_t>(latency)});
    } else if (!model.empty() && model.front().arrival <= now) {
      ASSERT_TRUE(q.CanDequeue(now));
      EXPECT_EQ(q.Dequeue(now), model.front().payload);
      model.pop_front();
    } else {
      EXPECT_FALSE(q.CanDequeue(now) && model.empty());
    }
    EXPECT_EQ(q.size(), static_cast<int>(model.size()));
    EXPECT_EQ(q.CanDequeue(now), !model.empty() && model.front().arrival <= now);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueModelProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace fgpar::sim
