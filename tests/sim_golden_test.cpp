// Golden cycle-count regression tests.
//
// Locks the exact simulated cycle counts of representative Sequoia kernels
// (sequential plus 2- and 4-core parallel) to the values produced by the
// reference scheduler.  Any change to the simulator's issue logic, queue
// timing, fast-path dispatch, or fast-forward machinery that drifts
// simulated time by even one cycle fails here loudly — simulated timing is
// part of the reproduction's contract, not an implementation detail.
//
// The table was recorded from the cycle-accurate reference implementation
// (the instrumented slow path).  To re-record after an *intentional* timing
// change, run with FGPAR_GOLDEN_PRINT=1 and paste the emitted table.
//
// The FastSlowEquivalence tests go further than the golden table: they run
// the same workload through both run loops (MachineConfig::force_slow_path)
// and require every observable — cycles, instruction counts, queue
// traffic, and each core's stall statistics — to match exactly, for all 18
// kernels and for hand-built queue-heavy machines where the fast path's
// issue-skip and multi-cycle fast-forward accounting actually engage.
//
// The TierEquivalence tests extend the same contract to the third run
// tier: every kernel is swept through slow, fast, and direct-threaded
// (RunConfig::force_tier) and all three must agree on every observable.
// They are also registered as a standalone ctest label
// (`ctest -L tier_equivalence`) so CI can gate on the sweep by name.
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "kernels/experiments.hpp"
#include "sim/machine.hpp"

namespace {

using namespace fgpar;

struct GoldenEntry {
  const char* id;             // Sequoia kernel id
  std::uint64_t seq_cycles;   // 1-core sequential, core-0 halt cycle
  std::uint64_t par2_cycles;  // 2-core fine-grained parallel
  std::uint64_t par4_cycles;  // 4-core fine-grained parallel
};

// Representative slice of the 18 kernels: the most independent kernel
// (irs-1), a gather-heavy interpolation (lammps-1), a carried-counter loop
// (lammps-4), a reduction (irs-3), the pathological load-balance case
// (umt2k-2), the paper's one slowdown (umt2k-6), and the speculation
// pattern (sphot-1).
constexpr GoldenEntry kGolden[] = {
    {"lammps-1", 101391ull, 82760ull, 57055ull},
    {"lammps-4", 66644ull, 71269ull, 48526ull},
    {"irs-1", 303557ull, 195412ull, 90432ull},
    {"irs-3", 27104ull, 18310ull, 18314ull},
    {"umt2k-2", 62531ull, 66671ull, 36699ull},
    {"umt2k-6", 94375ull, 99965ull, 90784ull},
    {"sphot-1", 60778ull, 42673ull, 34210ull},
};

struct Measured {
  std::uint64_t seq = 0;
  std::uint64_t par2 = 0;
  std::uint64_t par4 = 0;
};

Measured MeasureKernel(const std::string& id) {
  Measured m;
  kernels::ExperimentConfig config;
  config.cores = 2;
  const harness::KernelRun run2 =
      kernels::RunKernel(kernels::SequoiaKernelById(id), config);
  m.seq = run2.seq_cycles;
  m.par2 = run2.par_cycles;
  config.cores = 4;
  const harness::KernelRun run4 =
      kernels::RunKernel(kernels::SequoiaKernelById(id), config);
  EXPECT_EQ(run4.seq_cycles, m.seq) << id << ": sequential cycles must not "
                                       "depend on the parallel core count";
  m.par4 = run4.par_cycles;
  return m;
}

TEST(GoldenCycles, RepresentativeKernelsMatchReference) {
  const bool print = std::getenv("FGPAR_GOLDEN_PRINT") != nullptr;
  for (const GoldenEntry& golden : kGolden) {
    const Measured m = MeasureKernel(golden.id);
    if (print) {
      std::printf("    {\"%s\", %lluull, %lluull, %lluull},\n", golden.id,
                  static_cast<unsigned long long>(m.seq),
                  static_cast<unsigned long long>(m.par2),
                  static_cast<unsigned long long>(m.par4));
      continue;
    }
    EXPECT_EQ(m.seq, golden.seq_cycles) << golden.id << ": sequential cycles drifted";
    EXPECT_EQ(m.par2, golden.par2_cycles) << golden.id << ": 2-core cycles drifted";
    EXPECT_EQ(m.par4, golden.par4_cycles) << golden.id << ": 4-core cycles drifted";
  }
}

void ExpectRunsEqual(const harness::KernelRun& fast,
                     const harness::KernelRun& slow, const std::string& id) {
  EXPECT_EQ(fast.seq_cycles, slow.seq_cycles) << id;
  EXPECT_EQ(fast.par_cycles, slow.par_cycles) << id;
  EXPECT_EQ(fast.seq_instructions, slow.seq_instructions) << id;
  EXPECT_EQ(fast.par_instructions, slow.par_instructions) << id;
  EXPECT_EQ(fast.par_queue_transfers, slow.par_queue_transfers) << id;
  EXPECT_EQ(fast.max_queue_occupancy, slow.max_queue_occupancy) << id;
  EXPECT_EQ(fast.cores_used, slow.cores_used) << id;
  EXPECT_DOUBLE_EQ(fast.speedup, slow.speedup) << id;
}

TEST(FastSlowEquivalence, AllKernelsFourCores) {
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    const harness::KernelRun fast = kernels::RunKernel(spec, config);
    config.force_slow_path = true;
    const harness::KernelRun slow = kernels::RunKernel(spec, config);
    ExpectRunsEqual(fast, slow, spec.id);
  }
}

/// Runs `spec` under all three run tiers with otherwise-identical config
/// and requires every KernelRun observable to agree.  The sequential leg
/// of the threaded run is single-core and hot, so it genuinely executes
/// inside traces; the parallel leg exercises the machine-level
/// multi-core delegation to the fast loop.
void CheckKernelTierEquivalence(const kernels::SequoiaKernel& spec,
                                kernels::ExperimentConfig config) {
  config.force_tier = sim::RunTier::kSlow;
  const harness::KernelRun slow = kernels::RunKernel(spec, config);
  config.force_tier = sim::RunTier::kFast;
  const harness::KernelRun fast = kernels::RunKernel(spec, config);
  config.force_tier = sim::RunTier::kThreaded;
  const harness::KernelRun threaded = kernels::RunKernel(spec, config);
  ExpectRunsEqual(fast, slow, spec.id + std::string(" (fast vs slow)"));
  ExpectRunsEqual(threaded, slow, spec.id + std::string(" (threaded vs slow)"));
  // Pinned tiers must leave their marks: the threaded run translated and
  // entered traces; the lower tiers never touched the translator.
  EXPECT_GT(threaded.threaded_stats.trace_enters, 0u) << spec.id;
  EXPECT_EQ(fast.threaded_stats.trace_enters, 0u) << spec.id;
  EXPECT_EQ(slow.threaded_stats.trace_enters, 0u) << spec.id;
}

TEST(TierEquivalence, AllKernelsFourCores) {
  for (const kernels::SequoiaKernel& spec : kernels::SequoiaKernels()) {
    kernels::ExperimentConfig config;
    config.cores = 4;
    CheckKernelTierEquivalence(spec, config);
  }
}

TEST(TierEquivalence, RepresentativeKernelsTwoCores) {
  for (const GoldenEntry& golden : kGolden) {
    kernels::ExperimentConfig config;
    config.cores = 2;
    CheckKernelTierEquivalence(kernels::SequoiaKernelById(golden.id), config);
  }
}

TEST(TierEquivalence, SpeculationConfigAgrees) {
  // Control-flow speculation changes the compiled code (and thus which
  // blocks get hot); the tier contract must hold for that shape too.
  kernels::ExperimentConfig config;
  config.cores = 4;
  config.speculation = true;
  CheckKernelTierEquivalence(kernels::SequoiaKernelById("sphot-1"), config);
}

/// Two cores bouncing values through their queues: every fast-path
/// mechanism engages (issue-skip of the blocked core, the multi-cycle
/// fast-forward to a queue head's arrival, and its 2k-1 stall-accounting
/// compensation), so any accounting drift shows up in the per-core stats.
isa::Program PingPongProgram(std::int64_t rounds) {
  isa::Assembler a;
  isa::Label core0 = a.NewNamedLabel("core0");
  isa::Label core1 = a.NewNamedLabel("core1");

  a.Bind(core0);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top0 = a.NewLabel();
  a.Bind(top0);
  a.EnqI(1, isa::Gpr{1});
  a.DeqI(1, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top0);
  a.Halt();

  a.Bind(core1);
  a.LiI(isa::Gpr{1}, rounds);
  a.LiI(isa::Gpr{2}, 1);
  isa::Label top1 = a.NewLabel();
  a.Bind(top1);
  a.DeqI(0, isa::Gpr{3});
  a.EnqI(0, isa::Gpr{3});
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top1);
  a.Halt();
  return a.Finish();
}

void ExpectCoreStatsEqual(const sim::Machine& fast, const sim::Machine& slow) {
  ASSERT_EQ(fast.num_cores(), slow.num_cores());
  for (int c = 0; c < fast.num_cores(); ++c) {
    const sim::CoreStats& f = fast.core(c).stats();
    const sim::CoreStats& s = slow.core(c).stats();
    EXPECT_EQ(f.instructions, s.instructions) << "core " << c;
    EXPECT_EQ(f.enqueues, s.enqueues) << "core " << c;
    EXPECT_EQ(f.dequeues, s.dequeues) << "core " << c;
    EXPECT_EQ(f.loads, s.loads) << "core " << c;
    EXPECT_EQ(f.stores, s.stores) << "core " << c;
    EXPECT_EQ(f.stall_raw, s.stall_raw) << "core " << c;
    EXPECT_EQ(f.stall_queue_empty, s.stall_queue_empty) << "core " << c;
    EXPECT_EQ(f.stall_queue_full, s.stall_queue_full) << "core " << c;
  }
}

TEST(FastSlowEquivalence, PingPongStallStatsIdentical) {
  const isa::Program program = PingPongProgram(500);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.memory_words = 1 << 12;

  sim::Machine fast(config, program);
  fast.StartCoreAt(0, "core0");
  fast.StartCoreAt(1, "core1");
  const sim::RunResult fast_result = fast.Run();

  config.force_slow_path = true;
  sim::Machine slow(config, program);
  slow.StartCoreAt(0, "core0");
  slow.StartCoreAt(1, "core1");
  const sim::RunResult slow_result = slow.Run();

  EXPECT_EQ(fast_result.cycles, slow_result.cycles);
  EXPECT_EQ(fast_result.core0_halt_cycle, slow_result.core0_halt_cycle);
  EXPECT_EQ(fast_result.instructions, slow_result.instructions);
  ExpectCoreStatsEqual(fast, slow);
  EXPECT_EQ(fast.queues().TotalTransfers(), slow.queues().TotalTransfers());
  EXPECT_EQ(fast.queues().MaxOccupancy(), slow.queues().MaxOccupancy());
}

TEST(FastSlowEquivalence, PingPongUnderSmtIdentical) {
  // Both hardware threads share one physical core's issue slot: the SMT
  // round-robin arbitration must pick the same winners on both paths.
  const isa::Program program = PingPongProgram(200);
  sim::MachineConfig config;
  config.num_cores = 2;
  config.threads_per_core = 2;
  config.memory_words = 1 << 12;

  sim::Machine fast(config, program);
  fast.StartCoreAt(0, "core0");
  fast.StartCoreAt(1, "core1");
  const sim::RunResult fast_result = fast.Run();

  config.force_slow_path = true;
  sim::Machine slow(config, program);
  slow.StartCoreAt(0, "core0");
  slow.StartCoreAt(1, "core1");
  const sim::RunResult slow_result = slow.Run();

  EXPECT_EQ(fast_result.cycles, slow_result.cycles);
  EXPECT_EQ(fast_result.instructions, slow_result.instructions);
  ExpectCoreStatsEqual(fast, slow);
}

TEST(FastSlowEquivalence, SingleCoreLoopIdentical) {
  // Exercises the dedicated single-core fast loop (jump-to-next-issue)
  // against the reference: arithmetic, RAW stalls, and taken branches.
  isa::Assembler a;
  isa::Label main = a.NewNamedLabel("main");
  a.Bind(main);
  a.LiI(isa::Gpr{1}, 300);
  a.LiI(isa::Gpr{2}, 1);
  a.LiI(isa::Gpr{3}, 12345);
  isa::Label top = a.NewLabel();
  a.Bind(top);
  a.DivI(isa::Gpr{4}, isa::Gpr{3}, isa::Gpr{2});  // unpipelined
  a.MulI(isa::Gpr{5}, isa::Gpr{4}, isa::Gpr{2});  // RAW on the divide
  a.SubI(isa::Gpr{1}, isa::Gpr{1}, isa::Gpr{2});
  a.Bnz(isa::Gpr{1}, top);
  a.Halt();
  const isa::Program program = a.Finish();

  sim::MachineConfig config;
  config.num_cores = 1;
  config.memory_words = 1 << 12;

  sim::Machine fast(config, program);
  fast.StartCoreAt(0, "main");
  const sim::RunResult fast_result = fast.Run();

  config.force_slow_path = true;
  sim::Machine slow(config, program);
  slow.StartCoreAt(0, "main");
  const sim::RunResult slow_result = slow.Run();

  EXPECT_EQ(fast_result.cycles, slow_result.cycles);
  EXPECT_EQ(fast_result.core0_halt_cycle, slow_result.core0_halt_cycle);
  EXPECT_EQ(fast_result.instructions, slow_result.instructions);
  ExpectCoreStatsEqual(fast, slow);
}

}  // namespace
