// Unit tests for src/support.
#include <gtest/gtest.h>

#include <cmath>

#include "support/buildinfo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace fgpar {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    FGPAR_CHECK_MSG(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Stats, MeanAndGeoMean) {
  const double values[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 7.0 / 3.0);
  EXPECT_NEAR(GeoMean(values), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Min(values), 1.0);
  EXPECT_DOUBLE_EQ(Max(values), 4.0);
}

TEST(Stats, EmptyMeansAreZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
}

TEST(Stats, GeoMeanRejectsNonPositive) {
  const double values[] = {1.0, 0.0};
  EXPECT_THROW(GeoMean(values), Error);
}

TEST(Stats, RunningStatsTracksExtremes) {
  RunningStats s;
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(10.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Stats, FractionalRanksAverageTies) {
  // 10 is the smallest (rank 1); the two 20s span ranks 2-3 and each get
  // 2.5; 30 takes rank 4.
  const double values[] = {20.0, 10.0, 30.0, 20.0};
  const std::vector<double> ranks = FractionalRanks(values);
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 4.0);
  EXPECT_DOUBLE_EQ(ranks[3], 2.5);
}

TEST(Stats, SpearmanIsRankOnlyAndTieSafe) {
  // A strictly monotone (but wildly nonlinear) relation is a perfect rank
  // correlation; reversing one side negates it.
  const double x[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const double y[] = {1.0, 8.0, 27.0, 1e6, 1e9};
  const double rev[] = {1e9, 1e6, 27.0, 8.0, 1.0};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(x, y), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(x, rev), -1.0);
  // Ties on one side must not blow up or bias the sign.
  const double tied[] = {1.0, 2.0, 2.0, 3.0, 4.0};
  const double spearman = SpearmanCorrelation(tied, y);
  EXPECT_GT(spearman, 0.9);
  EXPECT_LE(spearman, 1.0);
  // Zero variance (all ranks equal) is defined as 0, not NaN.
  const double flat[] = {7.0, 7.0, 7.0, 7.0, 7.0};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(flat, y), 0.0);
}

TEST(Str, FormatFixed) {
  EXPECT_EQ(FormatFixed(1.32, 2), "1.32");
  EXPECT_EQ(FormatFixed(2.0, 2), "2.00");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

TEST(Str, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(Str, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Kernel", "Speedup"});
  t.AddRow({"lammps-1", "1.94"});
  t.AddSeparator();
  t.AddRow({"average", "2.05"});
  const std::string out = t.Render("Figure 12");
  EXPECT_NE(out.find("Figure 12"), std::string::npos);
  EXPECT_NE(out.find("lammps-1"), std::string::npos);
  EXPECT_NE(out.find("average"), std::string::npos);
  // every data line has the same width
  std::size_t width = 0;
  std::size_t pos = out.find('\n') + 1;  // skip title
  for (std::size_t next; (next = out.find('\n', pos)) != std::string::npos; pos = next + 1) {
    const std::size_t len = next - pos;
    if (width == 0) {
      width = len;
    }
    EXPECT_EQ(len, width);
  }
}

TEST(Table, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
}

TEST(BuildInfo, IdentityIsWellFormedAndSelfConsistent) {
  const std::string& version = BuildVersion();
  EXPECT_FALSE(version.empty());
  // "fgpar <version> (<compiler>, <build-type>, c++NN)"
  const std::string& line = BuildVersionString();
  EXPECT_EQ(line.rfind("fgpar " + version + " (", 0), 0u);
  EXPECT_EQ(line.back(), ')');
  // The hash is a pure function of the same fields: stable within a
  // build, 16 lowercase hex digits in text form.
  EXPECT_EQ(BuildConfigHash(), BuildConfigHash());
  const std::string hex = BuildConfigHashHex();
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

}  // namespace
}  // namespace fgpar
