// Tests for the host-parallel sweep engine, the deterministic JSON
// writer, and the BENCH_*.json artifact layer.
//
// The load-bearing property is determinism: a sweep's results — and the
// deterministic portion of any artifact built from them — must be
// byte-identical whether the grid ran on 1 host thread or many.
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bench_artifact.hpp"
#include "harness/sweep.hpp"
#include "kernels/experiments.hpp"
#include "support/json.hpp"

namespace {

using namespace fgpar;

TEST(Sweep, ResultsInIndexOrderAnyThreadCount) {
  const std::size_t count = 57;
  const auto square = [](std::size_t i) { return i * i; };
  const std::vector<std::size_t> one = harness::RunSweep(count, 1, square);
  for (int threads : {2, 3, 8, 64}) {
    const std::vector<std::size_t> many =
        harness::RunSweep(count, threads, square);
    EXPECT_EQ(many, one) << threads << " threads";
  }
}

TEST(Sweep, EveryIndexRunsExactlyOnce) {
  const std::size_t count = 101;
  std::vector<std::atomic<int>> hits(count);
  harness::detail::RunSweepIndices(count, 7, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Sweep, EmptyAndSingleElementGrids) {
  EXPECT_TRUE(harness::RunSweep(0, 8, [](std::size_t i) { return i; }).empty());
  const auto single = harness::RunSweep(1, 8, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 41u);
}

TEST(Sweep, FailuresAggregateWithPerPointAttribution) {
  // Two points fail; the sweep must still run every point, then throw one
  // SweepError naming both failures in index order — identically for the
  // inline and the multi-threaded path.
  for (int threads : {1, 4}) {
    std::vector<std::atomic<int>> hits(32);
    try {
      harness::RunSweep(32, threads, [&](std::size_t i) -> int {
        ++hits[i];
        if (i == 13 || i == 17) {
          throw std::runtime_error("point " + std::to_string(i) + " failed");
        }
        return static_cast<int>(i);
      });
      FAIL() << "expected a SweepError (threads=" << threads << ")";
    } catch (const harness::SweepError& e) {
      ASSERT_EQ(e.failures().size(), 2u) << "threads=" << threads;
      EXPECT_EQ(e.failures()[0].index, 13u);
      EXPECT_EQ(e.failures()[0].message, "point 13 failed");
      EXPECT_EQ(e.failures()[1].index, 17u);
      EXPECT_EQ(e.failures()[1].message, "point 17 failed");
      EXPECT_EQ(e.total_points(), 32u);
      const std::string what = e.what();
      EXPECT_NE(what.find("2 of 32 points"), std::string::npos) << what;
      EXPECT_NE(what.find("point 13: point 13 failed"), std::string::npos);
      EXPECT_NE(what.find("point 17: point 17 failed"), std::string::npos);
      // The original exceptions stay rethrowable with their concrete type.
      try {
        std::rethrow_exception(e.failures()[0].exception);
        FAIL() << "expected the original runtime_error";
      } catch (const std::runtime_error& orig) {
        EXPECT_STREQ(orig.what(), "point 13 failed");
      }
    }
    // A failure must not skip any other point.
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(Sweep, ResolveThreadsPrecedence) {
  // An explicit request wins over everything.
  EXPECT_EQ(harness::ResolveSweepThreads(3), 3);
  // Otherwise the environment variable decides...
  ASSERT_EQ(setenv("FGPAR_SWEEP_THREADS", "5", 1), 0);
  EXPECT_EQ(harness::ResolveSweepThreads(0), 5);
  EXPECT_EQ(harness::ResolveSweepThreads(2), 2);
  // ...unless it is not a positive integer, which falls through to the
  // hardware concurrency (>= 1).
  ASSERT_EQ(setenv("FGPAR_SWEEP_THREADS", "bogus", 1), 0);
  EXPECT_GE(harness::ResolveSweepThreads(0), 1);
  ASSERT_EQ(unsetenv("FGPAR_SWEEP_THREADS"), 0);
  EXPECT_GE(harness::ResolveSweepThreads(0), 1);
}

TEST(Json, WriterProducesStableDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("demo \"quoted\"\n");
  w.Key("values");
  w.BeginArray();
  w.Int(-3);
  w.UInt(18446744073709551615ull);
  w.Double(0.1);
  w.Bool(true);
  w.EndArray();
  w.Key("empty");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.Take(),
            "{\n"
            "  \"name\": \"demo \\\"quoted\\\"\\n\",\n"
            "  \"values\": [\n"
            "    -3,\n"
            "    18446744073709551615,\n"
            "    0.1,\n"
            "    true\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(Json, DoublesRoundTripShortest) {
  JsonWriter w;
  w.BeginArray();
  w.Double(1.0 / 3.0);
  w.Double(2.05);
  w.EndArray();
  // std::to_chars shortest round-trip form: parsing the text must yield
  // the exact same bits, and the text itself is host-independent.
  EXPECT_EQ(w.Take(), "[\n  0.3333333333333333,\n  2.05\n]\n");
}

using BenchArtifact = harness::BenchArtifact;

BenchArtifact ArtifactFromRuns(const std::vector<harness::KernelRun>& runs,
                               int threads, double wall) {
  harness::BenchArtifact artifact;
  artifact.name = "sweep_test";
  for (const harness::KernelRun& run : runs) {
    harness::BenchArtifact::Point point;
    point.label = run.kernel_name;
    point.params["cores"] = "2";
    harness::AddKernelRunFields(run, point);
    point.host["wall_seconds"] = wall;  // deliberately thread-dependent
    artifact.points.push_back(std::move(point));
  }
  artifact.host["sweep_threads"] = threads;
  artifact.host["wall_seconds"] = wall;
  return artifact;
}

TEST(Artifact, DeterministicAcrossSweepThreadCounts) {
  // The real pipeline, both serial and host-parallel: identical kernel
  // results, and byte-identical artifacts once host fields are excluded.
  kernels::ExperimentConfig config;
  config.cores = 2;
  config.sweep_threads = 1;
  const std::vector<harness::KernelRun> serial = kernels::RunAllKernels(config);
  config.sweep_threads = 4;
  const std::vector<harness::KernelRun> parallel =
      kernels::RunAllKernels(config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].kernel_name, parallel[i].kernel_name);
    EXPECT_EQ(serial[i].seq_cycles, parallel[i].seq_cycles);
    EXPECT_EQ(serial[i].par_cycles, parallel[i].par_cycles);
    EXPECT_DOUBLE_EQ(serial[i].speedup, parallel[i].speedup);
  }

  const BenchArtifact a = ArtifactFromRuns(serial, 1, 0.125);
  const BenchArtifact b = ArtifactFromRuns(parallel, 4, 99.5);
  EXPECT_EQ(a.ToJson(/*include_host=*/false), b.ToJson(/*include_host=*/false));
  // Sanity: the host fields do differ, so the exclusion is load-bearing.
  EXPECT_NE(a.ToJson(/*include_host=*/true), b.ToJson(/*include_host=*/true));
}

TEST(Artifact, WriteFileHonorsBenchDir) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
  ASSERT_EQ(setenv("FGPAR_BENCH_DIR", dir.c_str(), 1), 0);
  BenchArtifact artifact;
  artifact.name = "sweep_test_write";
  const std::string path = artifact.WriteFile();
  EXPECT_EQ(path, dir + "/BENCH_sweep_test_write.json");
  std::remove(path.c_str());
  ASSERT_EQ(unsetenv("FGPAR_BENCH_DIR"), 0);
}

}  // namespace
