// End-to-end edge cases the main e2e suite doesn't stress: integer-typed
// kernels, epilogue conditionals, select-heavy code, deep nesting with
// speculation, tiny trip counts with live-outs, negative data, and SMT
// machines — all through the bit-exact triple check.
#include <gtest/gtest.h>

#include <bit>

#include "frontend/parser.hpp"
#include "harness/runner.hpp"
#include "support/rng.hpp"

namespace fgpar::harness {
namespace {

WorkloadInit Init(std::int64_t trip, double lo = 0.5, double hi = 2.0,
                  std::uint64_t seed = 0xE2E) {
  return [=](std::uint64_t /*run_seed*/, const ir::Kernel& kernel,
             const ir::DataLayout& layout, ir::ParamEnv& params,
             std::vector<std::uint64_t>& memory) {
    Rng rng(seed);
    for (const ir::Symbol& sym : kernel.symbols()) {
      if (sym.kind == ir::SymbolKind::kParam) {
        if (sym.type == ir::ScalarType::kI64) {
          params.SetI64(sym.id, trip);
        } else {
          params.SetF64(sym.id, rng.NextDouble(lo, hi));
        }
      } else if (sym.kind == ir::SymbolKind::kArray) {
        const std::uint64_t base = layout.AddressOf(sym.id);
        for (std::int64_t i = 0; i < sym.array_size; ++i) {
          memory[base + static_cast<std::uint64_t>(i)] =
              sym.type == ir::ScalarType::kF64
                  ? std::bit_cast<std::uint64_t>(rng.NextDouble(lo, hi))
                  : static_cast<std::uint64_t>(rng.NextInt(0, sym.array_size - 1));
        }
      }
    }
  };
}

void Check(const char* source, const WorkloadInit& init, int cores,
           bool speculation = false, int threads_per_core = 1) {
  KernelRunner runner(frontend::ParseKernel(source), init);
  RunConfig config;
  config.compile.num_cores = cores;
  config.compile.speculation = speculation;
  config.threads_per_core = threads_per_core;
  const KernelRun run = runner.Run(config);  // throws on mismatch
  EXPECT_GT(run.seq_cycles, 0u);
}

TEST(E2eEdge, IntegerOnlyKernel) {
  Check(R"(
kernel ints {
  param i64 n;
  array i64 a[64];
  array i64 o[64];
  array i64 h[64];
  scalar i64 checksum;
  carried i64 acc = 7;
  loop i = 0 .. n {
    i64 v = a[i] * 3 + (i << 2);
    i64 w = (v ^ a[i]) & 1023;
    i64 g = a[h[i]] % 17;
    o[i] = v + w - g + max(v, w) + min(g, 5);
    acc = acc + (v >> 3);
  }
  after {
    checksum = acc;
  }
}
)",
        Init(50), 4);
}

TEST(E2eEdge, EpilogueConditional) {
  Check(R"(
kernel epiif {
  param i64 n;
  array f64 a[64];
  scalar f64 out;
  carried f64 sum = 0.0;
  loop i = 0 .. n {
    sum = sum + a[i];
  }
  after {
    if (sum < 30.0) {
      out = sum * 2.0;
    } else {
      out = sum - 1.0;
    }
  }
}
)",
        Init(50), 3);
}

TEST(E2eEdge, SelectHeavyKernel) {
  Check(R"(
kernel selects {
  param i64 n;
  array f64 a[64];
  array f64 b[64];
  array f64 o[64];
  loop i = 0 .. n {
    f64 x = a[i] * 2.0;
    f64 y = b[i] + 1.0;
    f64 lo = select(x < y, x, y);
    f64 hi = select(x < y, y, x);
    o[i] = select(i % 3 == 0, lo * hi, hi - lo);
  }
}
)",
        Init(50), 4);
}

TEST(E2eEdge, DeeplyNestedConditionalsWithSpeculation) {
  const char* source = R"(
kernel deepnest {
  param i64 n;
  array f64 a[64];
  array f64 o[64];
  loop i = 0 .. n {
    f64 v = a[i] * 2.0;
    if (v < 2.0) {
      @speculate if (v < 1.0) {
        f64 t1 = sqrt(abs(v)) + 1.0;
        o[i] = t1;
      } else {
        f64 t2 = v * v - 1.0;
        o[i] = t2;
      }
    } else {
      if (v < 3.0) {
        o[i] = v * 10.0;
      } else {
        o[i] = v * 20.0;
      }
    }
  }
}
)";
  Check(source, Init(50), 4, /*speculation=*/false);
  Check(source, Init(50), 4, /*speculation=*/true);
}

TEST(E2eEdge, NegativeDataAndSpecialValues) {
  // Negative values exercise sign-sensitive paths (abs, shifts, fmin/fmax
  // ordering, trunc-toward-zero casts).
  Check(R"(
kernel negatives {
  param i64 n;
  array f64 a[64];
  array f64 o[64];
  array i64 q[64];
  loop i = 0 .. n {
    f64 v = a[i] - 1.6;
    o[i] = abs(v) + min(v, -v) * max(v, 0.25);
    q[i] = i64(v * 3.0);
  }
}
)",
        Init(50, -2.0, 2.0), 4);
}

TEST(E2eEdge, LiveOutOfPlainTempAfterShortLoop) {
  Check(R"(
kernel shortloop {
  param i64 n;
  array f64 a[64];
  scalar f64 last;
  loop i = 0 .. n {
    f64 v = a[i] * 4.0;
    a[i] = v + 1.0;
  }
  after {
    last = v;
  }
}
)",
        Init(1), 3);  // a single iteration still transfers the live-out
}

TEST(E2eEdge, ManyParamsCrossTheQueues) {
  Check(R"(
kernel params {
  param i64 n;
  param f64 c1;
  param f64 c2;
  param f64 c3;
  param f64 c4;
  param f64 c5;
  array f64 a[64];
  array f64 o[64];
  loop i = 0 .. n {
    o[i] = ((a[i]*c1 + c2) * c3 + c4) / (a[i] + c5);
  }
}
)",
        Init(50), 4);
}

TEST(E2eEdge, SmtMachineWithConditionals) {
  Check(R"(
kernel smtcond {
  param i64 n;
  array f64 a[64];
  array f64 o[64];
  scalar f64 out;
  carried f64 acc = 0.0;
  loop i = 0 .. n {
    f64 v = a[i] * a[i];
    if (v < 1.5) {
      o[i] = v + 1.0;
    } else {
      o[i] = v - 1.0;
    }
    acc = acc + v;
  }
  after {
    out = acc;
  }
}
)",
        Init(50), 4, /*speculation=*/false, /*threads_per_core=*/2);
}

TEST(E2eEdge, StoreToLoadForwardingAcrossCores) {
  // The stored value feeds a later load of the same element; forwarding
  // turns it into a queue transfer when the consumer lands elsewhere.
  Check(R"(
kernel fwd {
  param i64 n;
  array f64 a[64];
  array f64 o[64];
  array f64 p[64];
  loop i = 0 .. n {
    a[i] = o[i] * 2.0 + 1.0;
    p[i] = a[i] * a[i] - o[i];
  }
}
)",
        Init(50), 4);
}

}  // namespace
}  // namespace fgpar::harness
