// Unit tests for the distributed sweep coordinator's deterministic core:
// the lease table (grants, steals, revocation, crash-budget quarantine),
// the fgpar-dist-v1 codec, and the Coordinator report/reply state machine
// — all driven with scripted time, no sockets.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/lease.hpp"
#include "dist/protocol.hpp"
#include "harness/checkpoint.hpp"
#include "support/error.hpp"

namespace {

using namespace fgpar;
using dist::CoordinatorReply;
using dist::Grant;
using dist::LeaseGrant;
using dist::LeaseTable;
using dist::WorkerReport;

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

LeaseTable::Config SmallGrid(std::size_t points, std::size_t slice) {
  LeaseTable::Config config;
  config.total_points = points;
  config.slice_points = slice;
  config.lease_ms = 1000;
  config.crash_budget = 2;
  return config;
}

// ---- lease table ----------------------------------------------------------

TEST(LeaseTable, GrantsPendingPointsInIndexOrderWithMonotonicIds) {
  LeaseTable table(SmallGrid(10, 4));
  const LeaseGrant first = table.Acquire("w0", 0);
  EXPECT_EQ(first.lease_id, 1u);
  EXPECT_EQ(first.points, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_FALSE(first.stolen);
  const LeaseGrant second = table.Acquire("w1", 0);
  EXPECT_EQ(second.lease_id, 2u);
  EXPECT_EQ(second.points, (std::vector<std::size_t>{4, 5, 6, 7}));
  const LeaseGrant third = table.Acquire("w0", 0);
  EXPECT_EQ(third.points, (std::vector<std::size_t>{8, 9}));
  EXPECT_EQ(table.pending_count(), 0u);
}

TEST(LeaseTable, IdleWorkerStealsTheTailOfTheLargestLease) {
  LeaseTable table(SmallGrid(8, 8));
  const LeaseGrant all = table.Acquire("slow", 0);
  ASSERT_EQ(all.points.size(), 8u);
  // Queue dry: the next worker steals the tail half of the biggest lease.
  const LeaseGrant stolen = table.Acquire("fast", 10);
  EXPECT_TRUE(stolen.stolen);
  EXPECT_EQ(stolen.points, (std::vector<std::size_t>{4, 5, 6, 7}));
  // The victim no longer owns what was taken; the thief does.
  EXPECT_FALSE(table.LeaseOwns(all.lease_id, 4));
  EXPECT_TRUE(table.LeaseOwns(all.lease_id, 0));
  EXPECT_TRUE(table.LeaseOwns(stolen.lease_id, 4));
}

TEST(LeaseTable, NeverStealsDownToAnEmptyVictim) {
  LeaseTable table(SmallGrid(2, 2));
  const LeaseGrant all = table.Acquire("w0", 0);
  ASSERT_EQ(all.points.size(), 2u);
  // Stealing half of 2 leaves 1 — allowed.
  const LeaseGrant steal1 = table.Acquire("w1", 0);
  EXPECT_EQ(steal1.points.size(), 1u);
  // A 1-point lease is not worth stealing from; the next idler waits.
  const LeaseGrant steal2 = table.Acquire("w2", 0);
  EXPECT_EQ(steal2.lease_id, 0u);
  EXPECT_TRUE(steal2.points.empty());
}

TEST(LeaseTable, MissedHeartbeatRequeuesUnfinishedPointsInIndexOrder) {
  LeaseTable table(SmallGrid(4, 4));
  const LeaseGrant grant = table.Acquire("w0", 0);
  table.Complete(2);  // one point done before the worker dies
  EXPECT_EQ(table.RevokeExpired(999), 0u);  // deadline not yet passed
  EXPECT_EQ(table.RevokeExpired(1001), 1u);
  EXPECT_FALSE(table.Renew(grant.lease_id, 1002));  // lease is gone
  // The unfinished points come back, in index order, minus the completed.
  const LeaseGrant regrant = table.Acquire("w1", 1002);
  EXPECT_EQ(regrant.points, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(LeaseTable, RenewExtendsTheDeadline) {
  LeaseTable table(SmallGrid(2, 2));
  const LeaseGrant grant = table.Acquire("w0", 0);
  EXPECT_TRUE(table.Renew(grant.lease_id, 900));   // deadline -> 1900
  EXPECT_EQ(table.RevokeExpired(1800), 0u);
  EXPECT_EQ(table.RevokeExpired(1901), 1u);
}

TEST(LeaseTable, CrashBudgetQuarantinesThePoisonedPointOnly) {
  LeaseTable table(SmallGrid(3, 3));  // crash_budget = 2
  // Two workers in a row die while computing point 1.
  for (int round = 0; round < 2; ++round) {
    const LeaseGrant grant =
        table.Acquire("w" + std::to_string(round), 0);
    ASSERT_FALSE(grant.points.empty());
    table.SetInProgress(grant.lease_id, 1);
    EXPECT_TRUE(table.RevokeLease(grant.lease_id));
  }
  ASSERT_EQ(table.quarantined().size(), 1u);
  EXPECT_EQ(table.quarantined().begin()->first, 1u);
  EXPECT_NE(table.quarantined().begin()->second.find("crash budget"),
            std::string::npos);
  // The surviving points are still handed out — minus the poisoned one.
  const LeaseGrant next = table.Acquire("w9", 0);
  EXPECT_EQ(next.points, (std::vector<std::size_t>{0, 2}));
  table.Complete(0);
  table.Complete(2);
  EXPECT_TRUE(table.Done());  // quarantined counts as resolved
}

TEST(LeaseTable, CompletionIsFirstCommittedWinsAndClearsCrashCounts) {
  LeaseTable table(SmallGrid(2, 2));
  const LeaseGrant grant = table.Acquire("w0", 0);
  // One crash attributed to point 0...
  table.SetInProgress(grant.lease_id, 0);
  EXPECT_TRUE(table.RevokeLease(grant.lease_id));
  // ...but it completes on the retry: the crash count must be erased.
  const LeaseGrant again = table.Acquire("w1", 0);
  EXPECT_TRUE(table.Complete(0));
  EXPECT_FALSE(table.Complete(0));  // duplicate commit: benign, discarded
  table.SetInProgress(again.lease_id, 1);
  EXPECT_TRUE(table.RevokeLease(again.lease_id));
  // Point 0 is committed, so only point 1 carries a crash now.
  EXPECT_TRUE(table.quarantined().empty());
  const LeaseGrant last = table.Acquire("w2", 0);
  EXPECT_EQ(last.points, (std::vector<std::size_t>{1}));
}

TEST(LeaseTable, CompletingTheLastPointErasesTheLease) {
  LeaseTable table(SmallGrid(1, 1));
  const LeaseGrant grant = table.Acquire("w0", 0);
  EXPECT_TRUE(table.Complete(0));
  EXPECT_FALSE(table.Renew(grant.lease_id, 1));  // nothing left to renew
  EXPECT_TRUE(table.Done());
}

TEST(LeaseTable, AdaptiveSlicingShrinksGrantsForExpensivePoints) {
  LeaseTable::Config config = SmallGrid(32, 8);
  config.target_slice_ms = 1000;  // aim a fresh grant at ~1s of work
  LeaseTable table(config);

  // No observations yet: the configured slice size.
  EXPECT_EQ(table.FreshSlicePoints(), 8u);
  EXPECT_EQ(table.Acquire("w0", 0).points.size(), 8u);

  // Expensive points (500 ms each): grants shrink to target/cost = 2.
  table.RecordPointCost(500.0);
  EXPECT_EQ(table.cost_samples(), 1u);
  EXPECT_EQ(table.point_cost_ewma(), 500.0);  // first sample seeds exactly
  EXPECT_EQ(table.FreshSlicePoints(), 2u);
  EXPECT_EQ(table.Acquire("w1", 0).points.size(), 2u);

  // Pathologically slow points clamp to 1, never 0.
  table.RecordPointCost(1e9);
  EXPECT_EQ(table.FreshSlicePoints(), 1u);

  // A run of cheap points pulls the EWMA back down; the grant grows but
  // never past slice_points.
  for (int i = 0; i < 64; ++i) {
    table.RecordPointCost(1.0);
  }
  EXPECT_EQ(table.FreshSlicePoints(), 8u);
}

TEST(LeaseTable, AdaptiveSlicingIsDeterministicInTheCompletionSequence) {
  LeaseTable::Config config = SmallGrid(16, 8);
  config.target_slice_ms = 400;
  const std::vector<double> costs = {120.0, 80.0, 310.0, 55.0, 200.0};
  // Same observation sequence, twice, from scratch: identical EWMA and
  // identical grant sizes at every step.
  std::vector<double> ewma;
  std::vector<std::size_t> slices;
  for (int run = 0; run < 2; ++run) {
    LeaseTable table(config);
    std::vector<double> run_ewma;
    std::vector<std::size_t> run_slices;
    for (const double cost : costs) {
      table.RecordPointCost(cost);
      run_ewma.push_back(table.point_cost_ewma());
      run_slices.push_back(table.FreshSlicePoints());
    }
    if (run == 0) {
      ewma = run_ewma;
      slices = run_slices;
    } else {
      EXPECT_EQ(run_ewma, ewma);      // bitwise-equal doubles
      EXPECT_EQ(run_slices, slices);
    }
  }
}

TEST(LeaseTable, AdaptiveSlicingIgnoresUnmeasuredAndDisabledStaysFixed) {
  LeaseTable::Config config = SmallGrid(16, 4);
  config.target_slice_ms = 1000;
  LeaseTable table(config);
  table.RecordPointCost(0.0);    // old worker: no timing field
  table.RecordPointCost(-5.0);   // clock nonsense
  EXPECT_EQ(table.cost_samples(), 0u);
  EXPECT_EQ(table.FreshSlicePoints(), 4u);

  // target_slice_ms = 0 (the default): costs are recorded for telemetry
  // but grants never adapt.
  LeaseTable fixed(SmallGrid(16, 4));
  fixed.RecordPointCost(100000.0);
  EXPECT_EQ(fixed.cost_samples(), 1u);
  EXPECT_EQ(fixed.FreshSlicePoints(), 4u);
  EXPECT_EQ(fixed.Acquire("w0", 0).points.size(), 4u);
}

// ---- fgpar-dist-v1 codec --------------------------------------------------

TEST(DistProtocol, ReportRoundTripsIncludingBinaryPayloads) {
  WorkerReport report;
  report.worker = "w3.p1234";
  report.fingerprint = 0xDEADBEEFCAFE0123ull;
  report.lease_id = 7;
  report.has_in_progress = true;
  report.in_progress = 42;
  report.want_work = true;
  dist::CompletedPoint done;
  done.index = 5;
  done.payload = std::string("\x00\x1f\xffraw bytes", 12);
  done.wall_ms = 123.5;
  report.completed.push_back(done);
  dist::FailedPoint failed;
  failed.index = 9;
  failed.message = "machine check: bad address \"quoted\"";
  failed.repro_bundle = "repro_fig12_point9";
  report.failed.push_back(failed);

  const WorkerReport back = dist::ParseReport(dist::EncodeReport(report));
  EXPECT_EQ(back.worker, report.worker);
  EXPECT_EQ(back.fingerprint, report.fingerprint);
  EXPECT_EQ(back.lease_id, 7u);
  EXPECT_TRUE(back.has_in_progress);
  EXPECT_EQ(back.in_progress, 42u);
  EXPECT_TRUE(back.want_work);
  ASSERT_EQ(back.completed.size(), 1u);
  EXPECT_EQ(back.completed[0].index, 5u);
  EXPECT_EQ(back.completed[0].payload, done.payload);
  EXPECT_EQ(back.completed[0].wall_ms, 123.5);
  ASSERT_EQ(back.failed.size(), 1u);
  EXPECT_EQ(back.failed[0].message, failed.message);
  EXPECT_EQ(back.failed[0].repro_bundle, failed.repro_bundle);
}

TEST(DistProtocol, ReplyRoundTripsEveryGrantKind) {
  for (const Grant grant : {Grant::kLease, Grant::kWait, Grant::kDone}) {
    CoordinatorReply reply;
    reply.grant = grant;
    reply.lease_id = 3;
    reply.points = {4, 5, 6};
    reply.owned = {4, 6};
    reply.lease_revoked = grant == Grant::kWait;
    reply.lease_ms = 10'000;
    reply.heartbeat_ms = 2'000;
    reply.retry_ms = 200;
    const CoordinatorReply back = dist::ParseReply(dist::EncodeReply(reply));
    EXPECT_EQ(back.code, 200);
    EXPECT_EQ(back.grant, grant) << dist::GrantName(grant);
    EXPECT_EQ(back.points, reply.points);
    EXPECT_EQ(back.owned, reply.owned);
    EXPECT_EQ(back.lease_revoked, reply.lease_revoked);
    EXPECT_EQ(back.lease_ms, 10'000u);
  }
}

TEST(DistProtocol, ParseRejectsGarbageAndWrongSchema) {
  EXPECT_THROW((void)dist::ParseReport("not json at all"), Error);
  EXPECT_THROW((void)dist::ParseReport("{}"), Error);
  EXPECT_THROW(
      (void)dist::ParseReport(
          R"({"schema":"fgpar-dist-v99","type":"report","worker":"w"})"),
      Error);
  EXPECT_THROW((void)dist::ParseReply("{\"schema\":\"fgpar-dist-v1\"}"),
               Error);
  // A reply parsed as a report (and vice versa) must not pass.
  CoordinatorReply reply;
  EXPECT_THROW((void)dist::ParseReport(dist::EncodeReply(reply)), Error);
  WorkerReport report;
  report.worker = "w";
  EXPECT_THROW((void)dist::ParseReply(dist::EncodeReport(report)), Error);
}

// ---- coordinator state machine --------------------------------------------

dist::Coordinator::Config CoordConfig(const std::string& journal) {
  dist::Coordinator::Config config;
  config.name = "unit";
  config.labels = {"p0", "p1", "p2", "p3"};
  config.checkpoint_path = journal;
  config.slice_points = 2;
  config.lease_ms = 1000;
  config.heartbeat_ms = 100;
  config.crash_budget = 2;
  return config;
}

WorkerReport Hello(const dist::Coordinator& coordinator,
                   const std::string& worker) {
  WorkerReport report;
  report.worker = worker;
  report.fingerprint = coordinator.fingerprint();
  report.want_work = true;
  return report;
}

TEST(Coordinator, FingerprintMismatchIsAStructured400) {
  dist::Coordinator coordinator(CoordConfig(""));
  WorkerReport report = Hello(coordinator, "w0");
  report.fingerprint ^= 1;  // stale binary / wrong coordinator
  const CoordinatorReply reply = coordinator.Apply(report, 0);
  EXPECT_EQ(reply.code, 400);
  EXPECT_NE(reply.error.find("fingerprint"), std::string::npos);
}

TEST(Coordinator, FullSweepThroughReportsJournalsEveryCommit) {
  const std::string journal = TempPath("coord_unit_journal");
  std::remove(journal.c_str());
  dist::Coordinator coordinator(CoordConfig(journal));

  // Hello: a slice_points-sized lease, plus the advertised timings.
  CoordinatorReply reply = coordinator.Apply(Hello(coordinator, "w0"), 0);
  ASSERT_EQ(reply.grant, Grant::kLease);
  EXPECT_EQ(reply.points, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(reply.owned, reply.points);  // a grant is owned immediately
  EXPECT_EQ(reply.lease_ms, 1000u);
  EXPECT_EQ(reply.heartbeat_ms, 100u);

  // Flush both points, ask for more: commits land before lease handling.
  WorkerReport flush = Hello(coordinator, "w0");
  flush.lease_id = reply.lease_id;
  for (const std::size_t index : {0u, 1u}) {
    dist::CompletedPoint point;
    point.index = index;
    point.payload = "payload-" + std::to_string(index);
    flush.completed.push_back(point);
  }
  reply = coordinator.Apply(flush, 50);
  ASSERT_EQ(reply.grant, Grant::kLease);
  EXPECT_EQ(reply.points, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(coordinator.points().size(), 2u);

  // Every commit is already durable in the coordinator's own journal.
  const harness::SweepCheckpoint loaded = harness::SweepCheckpoint::LoadOrCreate(
      journal, "unit", coordinator.fingerprint());
  EXPECT_EQ(loaded.CompletedCount(), 2u);

  // Finish; the reply flips to kDone and Done() holds.
  WorkerReport last = Hello(coordinator, "w0");
  last.lease_id = reply.lease_id;
  for (const std::size_t index : {2u, 3u}) {
    dist::CompletedPoint point;
    point.index = index;
    point.payload = "payload-" + std::to_string(index);
    last.completed.push_back(point);
  }
  reply = coordinator.Apply(last, 90);
  EXPECT_EQ(reply.grant, Grant::kDone);
  EXPECT_TRUE(coordinator.Done());
  EXPECT_TRUE(coordinator.failures().empty());
  std::remove(journal.c_str());
}

TEST(Coordinator, DuplicateCompletionsAreAcceptedEvenFromRevokedLeases) {
  dist::Coordinator coordinator(CoordConfig(""));
  const CoordinatorReply lease = coordinator.Apply(Hello(coordinator, "w0"), 0);
  ASSERT_EQ(lease.grant, Grant::kLease);
  // The worker goes silent past its deadline; the ticker revokes it.
  EXPECT_EQ(coordinator.RevokeExpired(2000), 1u);

  // Its late flush still arrives: the completions are committed (the work
  // is real), but the reply tells the worker its lease is gone.
  WorkerReport late;
  late.worker = "w0";
  late.fingerprint = coordinator.fingerprint();
  late.lease_id = lease.lease_id;
  dist::CompletedPoint point;
  point.index = 0;
  point.payload = "payload-0";
  late.completed.push_back(point);
  const CoordinatorReply reply = coordinator.Apply(late, 2001);
  EXPECT_TRUE(reply.lease_revoked);
  EXPECT_EQ(coordinator.points().count(0), 1u);

  // A second commit of the same point is the benign duplicate path.
  const CoordinatorReply again = coordinator.Apply(late, 2002);
  EXPECT_EQ(again.code, 200);
  EXPECT_EQ(coordinator.duplicate_commits(), 1u);
}

TEST(Coordinator, ReportedWallTimesShrinkTheNextGrant) {
  dist::Coordinator::Config config = CoordConfig("");
  config.target_slice_ms = 100;  // ~100 ms of work per fresh lease
  dist::Coordinator coordinator(config);

  CoordinatorReply reply = coordinator.Apply(Hello(coordinator, "w0"), 0);
  ASSERT_EQ(reply.grant, Grant::kLease);
  EXPECT_EQ(reply.points.size(), 2u);  // no observations yet: slice_points

  // Both points took 100 ms each: the EWMA says a 2-point slice costs
  // twice the target, so the next grant is a single point.
  WorkerReport flush = Hello(coordinator, "w0");
  flush.lease_id = reply.lease_id;
  for (const std::size_t index : {0u, 1u}) {
    dist::CompletedPoint point;
    point.index = index;
    point.payload = "payload-" + std::to_string(index);
    point.wall_ms = 100.0;
    flush.completed.push_back(point);
  }
  reply = coordinator.Apply(flush, 10);
  ASSERT_EQ(reply.grant, Grant::kLease);
  EXPECT_EQ(reply.points, (std::vector<std::size_t>{2}));
  EXPECT_EQ(coordinator.leases().cost_samples(), 2u);

  // A duplicate commit of an already-committed point is discarded and
  // must not feed the EWMA either.
  WorkerReport duplicate = Hello(coordinator, "w1");
  dist::CompletedPoint again;
  again.index = 0;
  again.payload = "payload-0";
  again.wall_ms = 100000.0;
  duplicate.completed.push_back(again);
  duplicate.want_work = false;
  coordinator.Apply(duplicate, 20);
  EXPECT_EQ(coordinator.duplicate_commits(), 1u);
  EXPECT_EQ(coordinator.leases().cost_samples(), 2u);
}

TEST(Coordinator, ReportedFailuresCarryTheWorkerStoryIntoFailures) {
  dist::Coordinator coordinator(CoordConfig(""));
  const CoordinatorReply lease = coordinator.Apply(Hello(coordinator, "w0"), 0);
  WorkerReport report;
  report.worker = "w0";
  report.fingerprint = coordinator.fingerprint();
  report.lease_id = lease.lease_id;
  dist::FailedPoint failed;
  failed.index = 1;
  failed.message = "machine check: division by zero";
  failed.repro_bundle = "repro_unit_point1";
  report.failed.push_back(failed);
  (void)coordinator.Apply(report, 10);

  const std::vector<dist::Coordinator::FailureInfo> failures =
      coordinator.failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 1u);
  EXPECT_EQ(failures[0].message, "machine check: division by zero");
  EXPECT_EQ(failures[0].repro_bundle, "repro_unit_point1");
}

TEST(Coordinator, AdoptPointsResumesFromAMergedFrontier) {
  dist::Coordinator coordinator(CoordConfig(""));
  coordinator.AdoptPoints({{0, "a"}, {2, "c"}, {99, "ignored-out-of-range"}});
  EXPECT_EQ(coordinator.points().size(), 2u);
  const CoordinatorReply reply = coordinator.Apply(Hello(coordinator, "w0"), 0);
  ASSERT_EQ(reply.grant, Grant::kLease);
  EXPECT_EQ(reply.points, (std::vector<std::size_t>{1, 3}));
}

TEST(Coordinator, StealShrinksTheVictimsOwnedSetInItsNextReply) {
  dist::Coordinator::Config config = CoordConfig("");
  config.slice_points = 4;  // one lease grabs the whole grid
  dist::Coordinator coordinator(config);
  const CoordinatorReply all = coordinator.Apply(Hello(coordinator, "w0"), 0);
  ASSERT_EQ(all.points.size(), 4u);
  const CoordinatorReply stolen = coordinator.Apply(Hello(coordinator, "w1"), 1);
  ASSERT_EQ(stolen.grant, Grant::kLease);
  EXPECT_EQ(stolen.points, (std::vector<std::size_t>{2, 3}));

  // The victim's next heartbeat sees its shrunken ownership and skips the
  // stolen tail.
  WorkerReport beat;
  beat.worker = "w0";
  beat.fingerprint = coordinator.fingerprint();
  beat.lease_id = all.lease_id;
  const CoordinatorReply view = coordinator.Apply(beat, 2);
  EXPECT_FALSE(view.lease_revoked);
  EXPECT_EQ(view.owned, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
